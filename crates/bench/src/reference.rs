//! The pre-`Evaluator` partitioning implementation, frozen as a
//! benchmark baseline.
//!
//! This module is a faithful copy of the seed `codesign-partition`
//! evaluator and search algorithms from before the incremental
//! [`Evaluator`](codesign_partition::eval::Evaluator) landed: every
//! candidate partition is cloned and re-evaluated from scratch, each
//! evaluation re-derives the schedule order and scans the *full* edge
//! list per task. It exists so `benches/partition.rs` and the
//! `bench-partition` binary can report honest before/after numbers for
//! the incremental rewrite — do not "optimize" it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use codesign_ir::task::{TaskGraph, TaskId};
use codesign_partition::algorithms::{AnnealingSchedule, PartitionResult};
use codesign_partition::error::PartitionError;
use codesign_partition::eval::{EvalConfig, Evaluation};
use codesign_partition::{Partition, Side};

/// Seed-era `evaluate`: list-schedules from scratch, scanning the full
/// edge list for every task's incoming dependences.
///
/// # Errors
///
/// Returns [`PartitionError::SizeMismatch`] if the partition does not
/// cover the graph, and propagates graph validation errors.
pub fn evaluate(
    graph: &TaskGraph,
    partition: &Partition,
    config: &EvalConfig<'_>,
) -> Result<Evaluation, PartitionError> {
    if partition.len() != graph.len() {
        return Err(PartitionError::SizeMismatch {
            partition: partition.len(),
            graph: graph.len(),
        });
    }
    let order = schedule_order(graph)?;
    let hw_contexts = config.hw_contexts.max(1);

    let mut finish = vec![0u64; graph.len()];
    let mut cpu_free = 0u64;
    let mut hw_free = vec![0u64; hw_contexts];
    let mut cross_bytes = 0u64;
    let mut comm_cycles = 0u64;
    let mut busy = Vec::new(); // (start, end, side) for overlap accounting

    for t in order {
        let side = partition.side(t);
        let mut data_ready = 0u64;
        for e in graph.edges().iter().filter(|e| e.dst == t) {
            let mut ready = finish[e.src.index()];
            if partition.side(e.src) != side {
                let cycles = config.comm.transfer_cycles(e.bytes);
                ready += cycles;
                comm_cycles += cycles;
                cross_bytes += e.bytes;
            }
            data_ready = data_ready.max(ready);
        }
        let duration = match side {
            Side::Sw => graph.task(t).sw_cycles(),
            Side::Hw => graph.task(t).hw_cycles(),
        };
        let start = match side {
            Side::Sw => {
                let s = data_ready.max(cpu_free);
                cpu_free = s + duration;
                s
            }
            Side::Hw => {
                let (ctx, &free) = hw_free
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &f)| f)
                    .expect("hw_contexts >= 1");
                let s = data_ready.max(free);
                hw_free[ctx] = s + duration;
                s
            }
        };
        finish[t.index()] = start + duration;
        busy.push((start, start + duration, side));
    }

    let makespan = finish.iter().copied().max().unwrap_or(0);
    let hw_tasks: Vec<TaskId> = partition.hw_tasks().collect();
    let hw_area = config.area_model.area_of(graph, &hw_tasks);
    let overlap = overlap_fraction(&busy, makespan);
    let meets_deadline = config.objective.deadline.is_none_or(|d| makespan <= d);

    // --- Scalarization -------------------------------------------------
    let obj = &config.objective;
    let n = graph.len().max(1) as f64;
    let all_sw_time = graph.total_sw_cycles().max(1) as f64;
    let all_ids: Vec<TaskId> = graph.ids().collect();
    let all_hw_area = config.area_model.area_of(graph, &all_ids).max(1e-9);
    let total_bytes: u64 = graph.edges().iter().map(|e| e.bytes).sum();

    let norm_time = makespan as f64 / all_sw_time;
    let norm_area = hw_area / all_hw_area;
    let norm_comm = if total_bytes == 0 {
        0.0
    } else {
        cross_bytes as f64 / total_bytes as f64
    };
    let mod_penalty: f64 = hw_tasks
        .iter()
        .map(|&t| graph.task(t).modifiability())
        .sum::<f64>()
        / n;
    let nature_penalty: f64 = graph
        .iter()
        .filter(|&(id, _)| partition.side(id) == Side::Sw)
        .map(|(_, t)| t.parallelism())
        .sum::<f64>()
        / n;
    let lost_concurrency = 1.0 - overlap;

    let mut cost = obj.w_time * norm_time
        + obj.w_area * norm_area
        + obj.w_comm * norm_comm
        + obj.w_modifiability * mod_penalty
        + obj.w_nature * nature_penalty
        + obj.w_concurrency * lost_concurrency;
    if let Some(d) = obj.deadline {
        if makespan > d {
            cost += obj.deadline_penalty * (makespan - d) as f64 / d.max(1) as f64;
        }
    }

    Ok(Evaluation {
        makespan,
        hw_area,
        cross_bytes,
        comm_cycles,
        overlap,
        meets_deadline,
        cost,
    })
}

/// Seed-era successor query: a full edge-list scan per call. The current
/// `TaskGraph::successors` answers from the cached CSR index, which did
/// not exist in the seed — using it here would flatter the baseline.
fn seed_successors(graph: &TaskGraph, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
    graph
        .edges()
        .iter()
        .filter(move |e| e.src == id)
        .map(|e| e.dst)
}

/// Seed-era topological order (LIFO Kahn over per-edge indegree counts),
/// recomputed from the raw edge list on every call.
fn seed_topological_order(graph: &TaskGraph) -> Result<Vec<TaskId>, PartitionError> {
    // Delegate the cycle check to the graph, then rebuild the order the
    // seed way so the baseline pays the seed's costs.
    let n = graph.len();
    let mut indegree = vec![0usize; n];
    for e in graph.edges() {
        indegree[e.dst.index()] += 1;
    }
    let mut ready: Vec<TaskId> = graph.ids().filter(|t| indegree[t.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(id) = ready.pop() {
        order.push(id);
        for s in seed_successors(graph, id) {
            indegree[s.index()] -= 1;
            if indegree[s.index()] == 0 {
                ready.push(s);
            }
        }
    }
    if order.len() != n {
        // Same outcome the seed produced on cyclic graphs.
        let _ = graph.topological_order()?;
    }
    Ok(order)
}

/// Seed-era bottom levels: one edge-list scan per task.
fn seed_bottom_levels(
    graph: &TaskGraph,
    cost: impl Fn(TaskId, &codesign_ir::task::Task) -> u64,
) -> Result<Vec<u64>, PartitionError> {
    let order = seed_topological_order(graph)?;
    let mut level = vec![0u64; graph.len()];
    for &id in order.iter().rev() {
        let tail = seed_successors(graph, id)
            .map(|s| level[s.index()])
            .max()
            .unwrap_or(0);
        level[id.index()] = tail + cost(id, graph.task(id));
    }
    Ok(level)
}

/// Topological order sorted by bottom level (longest path first), the
/// usual list-scheduling priority — recomputed on every evaluation.
fn schedule_order(graph: &TaskGraph) -> Result<Vec<TaskId>, PartitionError> {
    let levels = seed_bottom_levels(graph, |_, t| t.sw_cycles())?;
    let mut result = Vec::with_capacity(graph.len());
    let mut placed = vec![false; graph.len()];
    let mut indegree: Vec<usize> = (0..graph.len())
        .map(|i| {
            let id = TaskId::from_index(i);
            graph.edges().iter().filter(|e| e.dst == id).count()
        })
        .collect();
    let mut ready: Vec<TaskId> = graph.ids().filter(|t| indegree[t.index()] == 0).collect();
    while !ready.is_empty() {
        // Highest bottom level first.
        ready.sort_by_key(|&t| std::cmp::Reverse(levels[t.index()]));
        let t = ready.remove(0);
        if placed[t.index()] {
            continue;
        }
        placed[t.index()] = true;
        result.push(t);
        for s in seed_successors(graph, t) {
            indegree[s.index()] -= 1;
            if indegree[s.index()] == 0 {
                ready.push(s);
            }
        }
    }
    Ok(result)
}

fn overlap_fraction(busy: &[(u64, u64, Side)], makespan: u64) -> f64 {
    if makespan == 0 {
        return 0.0;
    }
    // Sweep: count cycles where both a SW and an HW interval are active.
    let mut events: Vec<(u64, i32, Side)> = Vec::with_capacity(busy.len() * 2);
    for &(s, e, side) in busy {
        events.push((s, 1, side));
        events.push((e, -1, side));
    }
    events.sort_by_key(|&(t, d, _)| (t, d));
    let (mut sw, mut hw) = (0i32, 0i32);
    let mut both = 0u64;
    let mut last = 0u64;
    for (t, d, side) in events {
        if sw > 0 && hw > 0 {
            both += t - last;
        }
        last = t;
        match side {
            Side::Sw => sw += d,
            Side::Hw => hw += d,
        }
    }
    both as f64 / makespan as f64
}

/// Seed-era software-first greedy descent (clone + full re-evaluation
/// per candidate move).
///
/// # Errors
///
/// Propagates evaluation failures.
pub fn sw_first(graph: &TaskGraph, config: &EvalConfig<'_>) -> PartitionResult {
    steepest_descent(graph, config, Partition::all_sw(graph.len()))
}

/// Seed-era hardware-first greedy descent.
///
/// # Errors
///
/// Propagates evaluation failures.
pub fn hw_first(graph: &TaskGraph, config: &EvalConfig<'_>) -> PartitionResult {
    steepest_descent(graph, config, Partition::all_hw(graph.len()))
}

fn steepest_descent(
    graph: &TaskGraph,
    config: &EvalConfig<'_>,
    start: Partition,
) -> PartitionResult {
    let mut current = start;
    let mut current_eval = evaluate(graph, &current, config)?;
    loop {
        let mut best: Option<(TaskId, Evaluation)> = None;
        for t in graph.ids() {
            let mut candidate = current.clone();
            candidate.flip(t);
            let e = evaluate(graph, &candidate, config)?;
            if e.cost < current_eval.cost && best.as_ref().is_none_or(|(_, b)| e.cost < b.cost) {
                best = Some((t, e));
            }
        }
        match best {
            Some((t, e)) => {
                current.flip(t);
                current_eval = e;
            }
            None => return Ok((current, current_eval)),
        }
    }
}

/// Seed-era Kernighan–Lin pass improvement: every candidate flip clones
/// the working partition and re-evaluates it from scratch.
///
/// # Errors
///
/// Propagates evaluation failures.
pub fn kernighan_lin(graph: &TaskGraph, config: &EvalConfig<'_>) -> PartitionResult {
    let n = graph.len();
    let mut best = Partition::all_sw(n);
    let mut best_eval = evaluate(graph, &best, config)?;
    loop {
        // One pass.
        let mut working = best.clone();
        let mut locked = vec![false; n];
        let mut trace: Vec<(TaskId, Evaluation)> = Vec::with_capacity(n);
        for _ in 0..n {
            let mut step: Option<(TaskId, Evaluation)> = None;
            for t in graph.ids().filter(|t| !locked[t.index()]) {
                let mut candidate = working.clone();
                candidate.flip(t);
                let e = evaluate(graph, &candidate, config)?;
                if step.as_ref().is_none_or(|(_, s)| e.cost < s.cost) {
                    step = Some((t, e));
                }
            }
            let (t, e) = step.expect("unlocked tasks remain");
            locked[t.index()] = true;
            working.flip(t);
            trace.push((t, e));
        }
        // Roll back to the best prefix of the pass.
        let best_prefix = trace
            .iter()
            .enumerate()
            .min_by(|(_, (_, a)), (_, (_, b))| a.cost.partial_cmp(&b.cost).expect("finite costs"))
            .map(|(i, _)| i);
        let Some(i) = best_prefix else {
            return Ok((best, best_eval));
        };
        let (_, prefix_eval) = &trace[i];
        if prefix_eval.cost + 1e-12 < best_eval.cost {
            let mut improved = best.clone();
            for (t, _) in &trace[..=i] {
                improved.flip(*t);
            }
            best = improved;
            best_eval = prefix_eval.clone();
        } else {
            return Ok((best, best_eval));
        }
    }
}

/// Seed-era simulated annealing (clone + full re-evaluation per move).
///
/// # Errors
///
/// Propagates evaluation failures.
pub fn simulated_annealing(
    graph: &TaskGraph,
    config: &EvalConfig<'_>,
    schedule: &AnnealingSchedule,
    seed: u64,
) -> PartitionResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = graph.len();
    let mut current = Partition::all_sw(n);
    let mut current_eval = evaluate(graph, &current, config)?;
    let mut best = current.clone();
    let mut best_eval = current_eval.clone();
    let mut temperature = schedule.t_start;
    for _ in 0..schedule.epochs {
        for _ in 0..schedule.moves_per_epoch {
            let t = TaskId::from_index(rng.gen_range(0..n));
            let mut candidate = current.clone();
            candidate.flip(t);
            let e = evaluate(graph, &candidate, config)?;
            let delta = e.cost - current_eval.cost;
            let accept = delta <= 0.0 || rng.gen_bool((-delta / temperature).exp().min(1.0));
            if accept {
                current = candidate;
                current_eval = e;
                if current_eval.cost < best_eval.cost {
                    best = current.clone();
                    best_eval = current_eval.clone();
                }
            }
        }
        temperature *= schedule.cooling;
    }
    Ok((best, best_eval))
}

/// Seed-era GCLP constructive mapping plus descent polish.
///
/// # Errors
///
/// Propagates evaluation failures.
pub fn gclp(graph: &TaskGraph, config: &EvalConfig<'_>) -> PartitionResult {
    let n = graph.len();
    let levels = seed_bottom_levels(graph, |_, t| t.sw_cycles())?;
    let mut order: Vec<TaskId> = graph.ids().collect();
    order.sort_by_key(|&t| std::cmp::Reverse(levels[t.index()]));

    // The criticality reference: the deadline if given, otherwise the
    // midpoint between the all-HW and all-SW makespans.
    let all_sw = evaluate(graph, &Partition::all_sw(n), config)?;
    let all_hw = evaluate(graph, &Partition::all_hw(n), config)?;
    let reference = config
        .objective
        .deadline
        .unwrap_or((all_sw.makespan + all_hw.makespan) / 2)
        .max(1);

    let mut partition = Partition::all_sw(n);
    for t in order {
        let projected = evaluate(graph, &partition, config)?;
        let global_criticality = projected.makespan as f64 / reference as f64;
        let task = graph.task(t);
        // Local phase: extremity nodes override the global objective.
        let side = if task.parallelism() > 0.85 {
            Side::Hw
        } else if task.modifiability() > 0.85 {
            Side::Sw
        } else if global_criticality > 1.0 {
            // Time-critical phase: take the side with the shorter makespan.
            let mut hw_try = partition.clone();
            if hw_try.side(t) == Side::Sw {
                hw_try.flip(t);
            }
            let hw_eval = evaluate(graph, &hw_try, config)?;
            if hw_eval.makespan < projected.makespan {
                Side::Hw
            } else {
                Side::Sw
            }
        } else {
            // Area phase: software is free.
            Side::Sw
        };
        if partition.side(t) != side {
            partition.flip(t);
        }
    }
    steepest_descent(graph, config, partition)
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_ir::workload::tgff::{random_task_graph, TgffConfig};
    use codesign_partition::area::NaiveArea;
    use codesign_partition::cost::Objective;

    static NAIVE: NaiveArea = NaiveArea;

    /// The frozen baseline and the incremental evaluator must agree
    /// bit-for-bit, otherwise the benchmark compares different work.
    #[test]
    fn reference_matches_current_implementation() {
        for seed in [1, 7, 42] {
            let g = random_task_graph(&TgffConfig {
                tasks: 24,
                seed,
                ..TgffConfig::default()
            });
            let config = EvalConfig::new(
                Objective::performance_driven(g.total_sw_cycles() / 3),
                &NAIVE,
            );
            for (i, id) in [
                Partition::all_sw(g.len()),
                Partition::all_hw(g.len()),
                Partition::from_sides(
                    g.ids()
                        .map(|t| {
                            if t.index() % 3 == 0 {
                                Side::Hw
                            } else {
                                Side::Sw
                            }
                        })
                        .collect(),
                ),
            ]
            .into_iter()
            .enumerate()
            {
                assert_eq!(
                    evaluate(&g, &id, &config).unwrap(),
                    codesign_partition::eval::evaluate(&g, &id, &config).unwrap(),
                    "seed {seed} partition {i}"
                );
            }
            let (p_ref, e_ref) = kernighan_lin(&g, &config).unwrap();
            let (p_new, e_new) =
                codesign_partition::algorithms::kernighan_lin(&g, &config).unwrap();
            assert_eq!(p_ref, p_new, "seed {seed}: KL diverged");
            assert_eq!(e_ref, e_new, "seed {seed}: KL evaluation diverged");
        }
    }
}
