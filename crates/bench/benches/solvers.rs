//! Criterion benchmark for experiment E5 (paper Figure 5): runtimes of
//! the three multiprocessor co-synthesis solvers across task-graph
//! sizes.
//!
//! Expected shape: the exact branch-and-bound (SOS-style ILP) grows
//! exponentially with graph size while the bin-packing and
//! sensitivity-driven heuristics stay polynomial — the classic
//! optimality/runtime crossover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use codesign_ir::task::TaskGraph;
use codesign_ir::workload::tgff::{random_task_graph, TgffConfig};
use codesign_synth::multiproc::{
    bin_packing, branch_and_bound, sensitivity_driven, MultiprocConfig,
};

fn graph(tasks: usize) -> (TaskGraph, MultiprocConfig) {
    let g = random_task_graph(&TgffConfig {
        tasks,
        seed: 0xE5,
        sw_cycles: (2_000, 10_000),
        ..TgffConfig::default()
    });
    let mut cfg = MultiprocConfig::new(g.total_sw_cycles() / 3);
    cfg.max_instances = 2;
    (g, cfg)
}

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_exact_branch_and_bound");
    group.sample_size(10);
    for tasks in [4usize, 6, 8] {
        let (g, cfg) = graph(tasks);
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &tasks, |b, _| {
            b.iter(|| branch_and_bound(&g, &cfg).expect("feasible"));
        });
    }
    group.finish();
}

fn bench_heuristics(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_heuristics");
    for tasks in [8usize, 16, 32] {
        let (g, cfg) = graph(tasks);
        group.bench_with_input(BenchmarkId::new("bin_packing", tasks), &tasks, |b, _| {
            b.iter(|| bin_packing(&g, &cfg).expect("feasible"));
        });
        group.bench_with_input(BenchmarkId::new("sensitivity", tasks), &tasks, |b, _| {
            b.iter(|| sensitivity_driven(&g, &cfg).expect("feasible"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact, bench_heuristics);
criterion_main!(benches);
