//! Criterion benchmarks for the remaining experiments and substrates:
//!
//! * E6 — ASIP pattern mining and selection (`codesign-isa::asip`);
//! * E7 — static vs dynamic FPGA repartitioning;
//! * E8 — partitioning algorithms over a characterized task graph;
//! * E9 — multi-threaded co-processor placement search;
//! * substrate throughput: behavioral synthesis per kernel and
//!   event-driven gate simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use codesign_hls::{synthesize, Constraints};
use codesign_ir::workload::kernels;
use codesign_ir::workload::tgff::{
    random_process_network, random_task_graph, NetworkConfig, TgffConfig,
};
use codesign_isa::asip::AsipExtension;
use codesign_partition::algorithms::{hw_first, kernighan_lin, sw_first};
use codesign_partition::area::NaiveArea;
use codesign_partition::cost::Objective;
use codesign_partition::eval::EvalConfig;
use codesign_partition::reconfig::{run_dynamic, run_static, Phase};
use codesign_rtl::fpga::{Bitstream, FpgaFabric};
use codesign_synth::mthread::{comm_aware, compute_only, MthreadConfig};

fn bench_e6_asip_selection(c: &mut Criterion) {
    let suite = [kernels::fir(8), kernels::dct8(), kernels::horner(6)];
    let refs: Vec<&codesign_ir::cdfg::Cdfg> = suite.iter().collect();
    let mut group = c.benchmark_group("e6_asip_selection");
    for budget in [700u32, 5_600] {
        group.bench_with_input(
            BenchmarkId::from_parameter(budget),
            &budget,
            |b, &budget| {
                b.iter(|| AsipExtension::select(&refs, budget));
            },
        );
    }
    group.finish();
}

fn bench_e7_reconfig(c: &mut Criterion) {
    let phases: Vec<Phase> = (0..16)
        .map(|i| Phase {
            unit: Bitstream {
                name: format!("u{}", i % 4),
                luts: 300,
                latency: 5,
            },
            sw_cycles: 80,
            invocations: 64,
        })
        .collect();
    let mut group = c.benchmark_group("e7_reconfiguration");
    group.bench_function("static", |b| {
        b.iter(|| {
            let mut fab = FpgaFabric::new(1, 512, 30);
            run_static(&phases, &mut fab).expect("runs")
        });
    });
    group.bench_function("dynamic", |b| {
        b.iter(|| {
            let mut fab = FpgaFabric::new(1, 512, 30);
            run_dynamic(&phases, &mut fab).expect("runs")
        });
    });
    group.finish();
}

fn bench_e8_partitioning(c: &mut Criterion) {
    let g = random_task_graph(&TgffConfig {
        tasks: 14,
        seed: 0xE8,
        ..TgffConfig::default()
    });
    let naive = NaiveArea;
    let deadline = g.total_sw_cycles() / 3;
    let cfg = EvalConfig::new(Objective::performance_driven(deadline), &naive);
    let mut group = c.benchmark_group("e8_partitioning_algorithms");
    group.bench_function("sw_first", |b| {
        b.iter(|| sw_first(&g, &cfg).expect("partitions"));
    });
    group.bench_function("hw_first", |b| {
        b.iter(|| hw_first(&g, &cfg).expect("partitions"));
    });
    group.bench_function("kernighan_lin", |b| {
        b.iter(|| kernighan_lin(&g, &cfg).expect("partitions"));
    });
    group.finish();
}

fn bench_e9_mthread(c: &mut Criterion) {
    let net = random_process_network(&NetworkConfig {
        processes: 7,
        seed: 0xE9,
        ..NetworkConfig::default()
    });
    let cfg = MthreadConfig::default();
    let mut group = c.benchmark_group("e9_mthread_placement");
    group.bench_function("comm_aware", |b| {
        b.iter(|| comm_aware(&net, &cfg).expect("places"));
    });
    group.bench_function("compute_only", |b| {
        b.iter(|| compute_only(&net, &cfg).expect("places"));
    });
    group.finish();
}

fn bench_substrate_hls(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_hls_synthesize");
    for kernel in [kernels::fir(8), kernels::dct8(), kernels::crc32_byte()] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kernel.name().to_string()),
            &kernel,
            |b, k| {
                b.iter(|| synthesize(k, &Constraints::default()).expect("synthesizes"));
            },
        );
    }
    group.finish();
}

fn bench_substrate_gatesim(c: &mut Criterion) {
    use codesign_rtl::netlist::Netlist;
    use codesign_rtl::sim::Simulator;
    // A 32-bit ripple adder churned with changing operands.
    let mut n = Netlist::new("adder32");
    let a: Vec<_> = (0..32).map(|i| n.add_input(format!("a{i}"))).collect();
    let b_pins: Vec<_> = (0..32).map(|i| n.add_input(format!("b{i}"))).collect();
    let cin = n.add_input("cin");
    let _ = n.ripple_adder(&a, &b_pins, cin).expect("builds");
    c.bench_function("substrate_gate_sim_adder32", |bch| {
        let mut sim = Simulator::new(&n).expect("builds");
        let mut x = 0u64;
        bch.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            sim.set_bus(&a, x & 0xFFFF_FFFF);
            sim.set_bus(&b_pins, (x >> 32) & 0xFFFF_FFFF);
            sim.settle().expect("settles");
            sim.events_processed()
        });
    });
}

criterion_group!(
    benches,
    bench_e6_asip_selection,
    bench_e7_reconfig,
    bench_e8_partitioning,
    bench_e9_mthread,
    bench_substrate_hls,
    bench_substrate_gatesim
);
criterion_main!(benches);
