//! Criterion benchmark for the incremental partition evaluator: the five
//! search algorithms across TGFF graph sizes, plus a head-to-head of the
//! incremental Kernighan–Lin against the frozen seed implementation
//! (`codesign_bench::reference`).
//!
//! Expected shape: every algorithm scales far better than the seed's
//! clone-and-re-evaluate search because candidate flips only replay the
//! schedule suffix behind the flipped task; the KL before/after pair
//! makes the speedup directly visible (the acceptance gate is ≥5× at 64
//! tasks, checked by the `bench-partition` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use codesign_bench::reference;
use codesign_ir::task::TaskGraph;
use codesign_ir::workload::tgff::{random_task_graph, TgffConfig};
use codesign_partition::algorithms::{
    gclp, hw_first, kernighan_lin, simulated_annealing, sw_first, AnnealingSchedule,
};
use codesign_partition::area::NaiveArea;
use codesign_partition::cost::Objective;
use codesign_partition::eval::EvalConfig;

static NAIVE: NaiveArea = NaiveArea;

fn graph(tasks: usize) -> TaskGraph {
    random_task_graph(&TgffConfig {
        tasks,
        seed: 0xDAC,
        ..TgffConfig::default()
    })
}

fn config(g: &TaskGraph) -> EvalConfig<'static> {
    EvalConfig::new(
        Objective::performance_driven(g.total_sw_cycles() / 3),
        &NAIVE,
    )
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_algorithms");
    group.sample_size(10);
    for tasks in [16usize, 64, 256] {
        let g = graph(tasks);
        let cfg = config(&g);
        let schedule = AnnealingSchedule::default();
        group.bench_with_input(BenchmarkId::new("sw_first", tasks), &tasks, |b, _| {
            b.iter(|| sw_first(&g, &cfg).expect("runs"));
        });
        group.bench_with_input(BenchmarkId::new("hw_first", tasks), &tasks, |b, _| {
            b.iter(|| hw_first(&g, &cfg).expect("runs"));
        });
        group.bench_with_input(BenchmarkId::new("kernighan_lin", tasks), &tasks, |b, _| {
            b.iter(|| kernighan_lin(&g, &cfg).expect("runs"));
        });
        group.bench_with_input(BenchmarkId::new("gclp", tasks), &tasks, |b, _| {
            b.iter(|| gclp(&g, &cfg).expect("runs"));
        });
        group.bench_with_input(
            BenchmarkId::new("simulated_annealing", tasks),
            &tasks,
            |b, _| {
                b.iter(|| simulated_annealing(&g, &cfg, &schedule, 7).expect("runs"));
            },
        );
    }
    group.finish();
}

fn bench_kl_before_after(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_kl_before_after");
    group.sample_size(10);
    for tasks in [16usize, 64] {
        let g = graph(tasks);
        let cfg = config(&g);
        group.bench_with_input(BenchmarkId::new("seed", tasks), &tasks, |b, _| {
            b.iter(|| reference::kernighan_lin(&g, &cfg).expect("runs"));
        });
        group.bench_with_input(BenchmarkId::new("incremental", tasks), &tasks, |b, _| {
            b.iter(|| kernighan_lin(&g, &cfg).expect("runs"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_kl_before_after);
criterion_main!(benches);
