//! Criterion benchmark for experiment E10 (Vahid & Gajski \[18\]):
//! incremental sharing-aware hardware estimation vs full recomputation,
//! as a function of hardware-set size.
//!
//! Expected shape: the incremental move probe (remove + query + add) is
//! near-constant in set size; recomputation is linear — which is what
//! makes cost feedback viable inside a partitioning inner loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use codesign_hls::estimate::{AreaModel, HwRequirement, SharedAreaEstimator};

fn requirement(i: usize) -> HwRequirement {
    HwRequirement {
        fu_counts: [i % 7 + 1, i % 3, i % 2, i % 5],
        registers: (i % 11 + 1) as u32,
        states: i % 13 + 2,
        ops: i % 17 + 3,
    }
}

fn bench_incremental(c: &mut Criterion) {
    let model = AreaModel::default();
    let mut group = c.benchmark_group("e10_incremental_move_probe");
    for n in [16usize, 128, 1024] {
        let reqs: Vec<HwRequirement> = (0..n).map(requirement).collect();
        let mut est = SharedAreaEstimator::new(model.clone());
        for r in &reqs {
            est.add(r);
        }
        let mut k = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let r = &reqs[k % n];
                k += 1;
                est.remove(r);
                let a = est.area();
                est.add(r);
                a
            });
        });
    }
    group.finish();
}

fn bench_recompute(c: &mut Criterion) {
    let model = AreaModel::default();
    let mut group = c.benchmark_group("e10_full_recompute");
    for n in [16usize, 128, 1024] {
        let reqs: Vec<HwRequirement> = (0..n).map(requirement).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| SharedAreaEstimator::recompute(&model, reqs.iter()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_incremental, bench_recompute);
criterion_main!(benches);
