//! Criterion benchmark for experiment E3 (paper Figure 3): wall-clock
//! cost of co-simulating the same producer/consumer system at each
//! interface-abstraction level, plus the coordinator-quantum ablation.
//!
//! Expected shape: pin ≫ register > driver ≈ message, spanning orders of
//! magnitude — the paper's "computationally expensive" vs "very
//! efficient computationally".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use codesign_sim::engine::{Coordinator, SimEngine};
use codesign_sim::ladder::{run_level, AbstractionLevel, LadderConfig};
use codesign_sim::SimError;

fn bench_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_abstraction_levels");
    let cfg = LadderConfig::default();
    for level in AbstractionLevel::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(level), &level, |b, &level| {
            b.iter(|| run_level(level, &cfg).expect("level simulates"));
        });
    }
    group.finish();
}

fn bench_message_size_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_register_level_message_size");
    for bytes in [16u64, 256, 1024] {
        let cfg = LadderConfig {
            message_bytes: bytes,
            ..LadderConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(bytes), &cfg, |b, cfg| {
            b.iter(|| run_level(AbstractionLevel::Register, cfg).expect("simulates"));
        });
    }
    group.finish();
}

/// A trivially-advancing engine, so the benchmark isolates the pure
/// coordination overhead of the conservative quantum protocol.
#[derive(Debug)]
struct IdleEngine {
    time: u64,
    horizon: u64,
}

impl SimEngine for IdleEngine {
    fn name(&self) -> &str {
        "idle"
    }
    fn local_time(&self) -> u64 {
        self.time
    }
    fn advance_to(&mut self, t: u64) -> Result<(), SimError> {
        self.time = t.min(self.horizon);
        Ok(())
    }
    fn is_done(&self) -> bool {
        self.time >= self.horizon
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

fn bench_quantum_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_coordinator_quantum");
    for quantum in [1u64, 16, 256] {
        group.bench_with_input(
            BenchmarkId::from_parameter(quantum),
            &quantum,
            |b, &quantum| {
                b.iter(|| {
                    let mut coord = Coordinator::new(quantum);
                    for _ in 0..4 {
                        coord.add_engine(Box::new(IdleEngine {
                            time: 0,
                            horizon: 100_000,
                        }));
                    }
                    coord.run(10_000_000).expect("finishes")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_levels,
    bench_message_size_sweep,
    bench_quantum_ablation
);
criterion_main!(benches);
