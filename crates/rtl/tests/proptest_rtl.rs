//! Property-based tests for the hardware substrate: the event-driven
//! simulator must agree with a direct combinational evaluation on random
//! feed-forward netlists, and the bus/FSMD invariants must hold for
//! arbitrary stimulus.

use codesign_rtl::bus::{BusTiming, Ram, SystemBus};
use codesign_rtl::netlist::{GateKind, NetId, Netlist};
use codesign_rtl::sim::Simulator;
use proptest::prelude::*;

const GATES: [GateKind; 8] = [
    GateKind::And,
    GateKind::Or,
    GateKind::Nand,
    GateKind::Nor,
    GateKind::Xor,
    GateKind::Xnor,
    GateKind::Not,
    GateKind::Buf,
];

/// A random feed-forward netlist: every gate reads earlier nets only, so
/// a single topological pass is a correct reference evaluator.
#[derive(Debug, Clone)]
struct RandomNetlist {
    netlist: Netlist,
    inputs: Vec<NetId>,
    gate_inputs: Vec<(GateKind, Vec<NetId>, NetId)>,
}

fn arb_netlist() -> impl Strategy<Value = RandomNetlist> {
    let script = prop::collection::vec((0usize..8, any::<u64>(), any::<u64>(), 1u64..4), 1..40);
    (2usize..6, script).prop_map(|(n_inputs, script)| {
        let mut n = Netlist::new("prop");
        let inputs: Vec<NetId> = (0..n_inputs)
            .map(|i| n.add_input(format!("i{i}")))
            .collect();
        let mut nets = inputs.clone();
        let mut gate_inputs = Vec::new();
        for (gi, (kind_idx, a, b, delay)) in script.into_iter().enumerate() {
            let kind = GATES[kind_idx];
            let pick = |s: u64| nets[(s % nets.len() as u64) as usize];
            let ins: Vec<NetId> = match kind {
                GateKind::Not | GateKind::Buf => vec![pick(a)],
                _ => vec![pick(a), pick(b)],
            };
            let out = n.add_net(format!("g{gi}"));
            n.add_gate(kind, &ins, out, delay).expect("valid gate");
            gate_inputs.push((kind, ins, out));
            nets.push(out);
        }
        RandomNetlist {
            netlist: n,
            inputs,
            gate_inputs,
        }
    })
}

fn reference_eval(rn: &RandomNetlist, stimulus: u64) -> Vec<bool> {
    let mut values = vec![false; rn.netlist.net_count()];
    for (i, input) in rn.inputs.iter().enumerate() {
        values[input.index()] = (stimulus >> i) & 1 == 1;
    }
    for (kind, ins, out) in &rn.gate_inputs {
        let in_vals: Vec<bool> = ins.iter().map(|n| values[n.index()]).collect();
        values[out.index()] = kind.eval(&in_vals);
    }
    values
}

proptest! {
    /// After settling, every net equals the direct topological
    /// evaluation, for any stimulus sequence.
    #[test]
    fn event_simulation_matches_direct_evaluation(
        rn in arb_netlist(),
        stimuli in prop::collection::vec(any::<u64>(), 1..8),
    ) {
        let mut sim = Simulator::new(&rn.netlist).expect("builds");
        for stimulus in stimuli {
            for (i, input) in rn.inputs.iter().enumerate() {
                sim.set_input(*input, (stimulus >> i) & 1 == 1);
            }
            sim.settle().expect("feed-forward logic settles");
            let want = reference_eval(&rn, stimulus);
            for (_, _, out) in &rn.gate_inputs {
                prop_assert_eq!(sim.value(*out), want[out.index()]);
            }
        }
    }

    /// Re-applying the same stimulus is free: no new value-change events.
    #[test]
    fn idempotent_stimulus_costs_nothing(rn in arb_netlist(), stimulus in any::<u64>()) {
        let mut sim = Simulator::new(&rn.netlist).expect("builds");
        for (i, input) in rn.inputs.iter().enumerate() {
            sim.set_input(*input, (stimulus >> i) & 1 == 1);
        }
        sim.settle().expect("settles");
        let before = sim.events_processed();
        for (i, input) in rn.inputs.iter().enumerate() {
            sim.set_input(*input, (stimulus >> i) & 1 == 1);
        }
        sim.settle().expect("settles");
        prop_assert_eq!(sim.events_processed(), before);
    }

    /// RAM over the bus behaves like memory: the last write to each
    /// word-aligned address wins.
    #[test]
    fn bus_ram_is_last_write_wins(
        writes in prop::collection::vec((0u32..64, any::<u32>()), 1..40),
    ) {
        let mut bus = SystemBus::new(BusTiming::default());
        bus.map(0x0, 0x100, Box::new(Ram::new("ram", 0x100))).expect("maps");
        let mut model = std::collections::BTreeMap::new();
        for (word, value) in writes {
            bus.write(word * 4, value).expect("in range");
            model.insert(word, value);
        }
        for (word, value) in model {
            let (got, _) = bus.read(word * 4).expect("in range");
            prop_assert_eq!(got, value);
        }
    }

    /// Bus statistics exactly count transactions.
    #[test]
    fn bus_stats_count_transactions(reads in 0u64..20, writes in 0u64..20) {
        let mut bus = SystemBus::new(BusTiming::default());
        bus.map(0x0, 0x100, Box::new(Ram::new("ram", 0x100))).expect("maps");
        for i in 0..writes {
            bus.write(((i * 4) % 0x100) as u32, i as u32).expect("ok");
        }
        for i in 0..reads {
            bus.read(((i * 4) % 0x100) as u32).expect("ok");
        }
        let s = bus.stats();
        prop_assert_eq!(s.reads, reads);
        prop_assert_eq!(s.writes, writes);
        let per = BusTiming::default().transaction_cycles();
        prop_assert_eq!(s.busy_cycles, (reads + writes) * per);
    }
}
