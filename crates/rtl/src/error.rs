//! Error types for netlist construction and simulation.

use std::error::Error;
use std::fmt;

/// Errors produced while building or simulating hardware models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RtlError {
    /// A gate or flip-flop references a net that does not exist.
    UnknownNet {
        /// The out-of-range net index.
        index: usize,
    },
    /// A gate was declared with the wrong number of inputs for its kind.
    GateArity {
        /// Gate kind name.
        kind: &'static str,
        /// Inputs required.
        expected: usize,
        /// Inputs supplied.
        actual: usize,
    },
    /// Two drivers contend for the same net.
    MultipleDrivers {
        /// The doubly-driven net index.
        net: usize,
    },
    /// Combinational logic failed to settle (a zero-delay loop).
    Oscillation {
        /// Simulation time at which the oscillation was detected.
        time: u64,
    },
    /// An FSMD referenced a state, register, or port out of range.
    FsmdBounds {
        /// What was out of range (`"state"`, `"register"`, ...).
        what: &'static str,
        /// The out-of-range index.
        index: usize,
    },
    /// An FSMD ran longer than the supplied cycle budget without
    /// asserting `done`.
    FsmdTimeout {
        /// Cycles executed before giving up.
        cycles: u64,
    },
    /// A bus access hit an address no slave claims.
    BusFault {
        /// The unclaimed address.
        addr: u32,
    },
    /// A device could not be mapped on the bus: its address range
    /// overlaps an existing mapping or wraps the 32-bit address space.
    MapOverlap {
        /// Name of the device being mapped.
        device: String,
        /// Requested base address.
        base: u32,
        /// Requested range size in bytes.
        size: u32,
        /// What the range collided with.
        conflict: String,
    },
    /// The FPGA fabric cannot satisfy a request (out of LUTs, unknown
    /// bitstream, region busy).
    Fpga {
        /// Human-readable reason.
        reason: String,
    },
    /// A serialized state blob could not be decoded (truncated bytes,
    /// a version/shape mismatch, or a checkpoint restored into a
    /// structurally different model).
    State {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::UnknownNet { index } => write!(f, "reference to unknown net {index}"),
            RtlError::GateArity {
                kind,
                expected,
                actual,
            } => write!(f, "{kind} gate takes {expected} inputs, got {actual}"),
            RtlError::MultipleDrivers { net } => write!(f, "net {net} has multiple drivers"),
            RtlError::Oscillation { time } => {
                write!(f, "combinational logic oscillates at time {time}")
            }
            RtlError::FsmdBounds { what, index } => {
                write!(f, "fsmd {what} index {index} out of range")
            }
            RtlError::FsmdTimeout { cycles } => {
                write!(f, "fsmd did not assert done within {cycles} cycles")
            }
            RtlError::BusFault { addr } => write!(f, "bus fault at address {addr:#010x}"),
            RtlError::MapOverlap {
                device,
                base,
                size,
                conflict,
            } => write!(
                f,
                "cannot map {device} at [{base:#010x}, {:#010x}): {conflict}",
                u64::from(*base) + u64::from(*size)
            ),
            RtlError::Fpga { reason } => write!(f, "fpga: {reason}"),
            RtlError::State { reason } => write!(f, "state: {reason}"),
        }
    }
}

impl Error for RtlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert_eq!(
            RtlError::BusFault { addr: 0x10 }.to_string(),
            "bus fault at address 0x00000010"
        );
        assert_eq!(
            RtlError::Oscillation { time: 7 }.to_string(),
            "combinational logic oscillates at time 7"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RtlError>();
    }
}
