//! Gate-level netlists.
//!
//! A [`Netlist`] is a flat structural description: named single-bit nets,
//! combinational [`Gate`]s with propagation delays, and D flip-flops. It
//! is the representation in which interface synthesis (`codesign-synth`)
//! emits "glue logic" (paper Figure 4) and in which gate counts — the
//! *implementation cost* of Section 3.3 — are measured.

use serde::{Deserialize, Serialize};

use crate::error::RtlError;

/// Identifier of a net within one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Returns the dense index of this net.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Combinational gate kinds.
///
/// `And`/`Or`/`Nand`/`Nor` accept two or more inputs; `Xor`/`Xnor` exactly
/// two; `Not`/`Buf` exactly one; `Mux2` exactly three (`[sel, d0, d1]`,
/// output `d1` when `sel` is high).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// Logical and.
    And,
    /// Logical or.
    Or,
    /// Negated and.
    Nand,
    /// Negated or.
    Nor,
    /// Exclusive or (2 inputs).
    Xor,
    /// Negated exclusive or (2 inputs).
    Xnor,
    /// Inverter (1 input).
    Not,
    /// Buffer (1 input).
    Buf,
    /// 2:1 multiplexer (`[sel, d0, d1]`).
    Mux2,
}

impl GateKind {
    fn name(self) -> &'static str {
        match self {
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Nand => "nand",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Not => "not",
            GateKind::Buf => "buf",
            GateKind::Mux2 => "mux2",
        }
    }

    fn arity_ok(self, n: usize) -> bool {
        match self {
            GateKind::Not | GateKind::Buf => n == 1,
            GateKind::Xor | GateKind::Xnor => n == 2,
            GateKind::Mux2 => n == 3,
            _ => n >= 2,
        }
    }

    /// Evaluates the gate function over its input values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` has an arity this kind does not accept; arity is
    /// validated at construction by [`Netlist::add_gate`].
    #[must_use]
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert!(self.arity_ok(inputs.len()), "bad arity for {}", self.name());
        match self {
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Nand => !inputs.iter().all(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Xor => inputs[0] ^ inputs[1],
            GateKind::Xnor => !(inputs[0] ^ inputs[1]),
            GateKind::Not => !inputs[0],
            GateKind::Buf => inputs[0],
            GateKind::Mux2 => {
                if inputs[0] {
                    inputs[2]
                } else {
                    inputs[1]
                }
            }
        }
    }

    /// Area of one instance in NAND2-gate equivalents.
    #[must_use]
    pub fn gate_equivalents(self, inputs: usize) -> u64 {
        let base = match self {
            GateKind::Not | GateKind::Buf => 1,
            GateKind::Xor | GateKind::Xnor | GateKind::Mux2 => 3,
            _ => 2,
        };
        base + (inputs.saturating_sub(2) as u64)
    }
}

/// A combinational gate instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gate {
    /// Gate function.
    pub kind: GateKind,
    /// Input nets, in positional order.
    pub inputs: Vec<NetId>,
    /// Output net.
    pub output: NetId,
    /// Propagation delay in simulation time units.
    pub delay: u64,
}

/// A D flip-flop, clocked implicitly by [`crate::sim::Simulator::clock_cycle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dff {
    /// Data input net.
    pub d: NetId,
    /// Output net.
    pub q: NetId,
    /// Power-on value of `q`.
    pub init: bool,
}

/// A flat gate-level netlist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    net_names: Vec<String>,
    inputs: Vec<NetId>,
    gates: Vec<Gate>,
    dffs: Vec<Dff>,
    driven: Vec<bool>,
}

impl Netlist {
    /// Creates an empty netlist.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            net_names: Vec::new(),
            inputs: Vec::new(),
            gates: Vec::new(),
            dffs: Vec::new(),
            driven: Vec::new(),
        }
    }

    /// Netlist name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares an internal net.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let id = NetId(self.net_names.len() as u32);
        self.net_names.push(name.into());
        self.driven.push(false);
        id
    }

    /// Declares a primary input net (driven from outside the netlist).
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.add_net(name);
        self.driven[id.index()] = true;
        self.inputs.push(id);
        id
    }

    /// Adds a combinational gate.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::GateArity`] for an input count the kind does not
    /// accept, [`RtlError::UnknownNet`] for dangling nets, and
    /// [`RtlError::MultipleDrivers`] if `output` already has a driver.
    pub fn add_gate(
        &mut self,
        kind: GateKind,
        inputs: &[NetId],
        output: NetId,
        delay: u64,
    ) -> Result<(), RtlError> {
        if !kind.arity_ok(inputs.len()) {
            let expected = match kind {
                GateKind::Not | GateKind::Buf => 1,
                GateKind::Xor | GateKind::Xnor => 2,
                GateKind::Mux2 => 3,
                _ => 2,
            };
            return Err(RtlError::GateArity {
                kind: kind.name(),
                expected,
                actual: inputs.len(),
            });
        }
        for &n in inputs.iter().chain(std::iter::once(&output)) {
            if n.index() >= self.net_names.len() {
                return Err(RtlError::UnknownNet { index: n.index() });
            }
        }
        self.claim(output)?;
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
            delay,
        });
        Ok(())
    }

    /// Adds a D flip-flop with the given power-on value.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnknownNet`] for dangling nets and
    /// [`RtlError::MultipleDrivers`] if `q` already has a driver.
    pub fn add_dff(&mut self, d: NetId, q: NetId, init: bool) -> Result<(), RtlError> {
        for n in [d, q] {
            if n.index() >= self.net_names.len() {
                return Err(RtlError::UnknownNet { index: n.index() });
            }
        }
        self.claim(q)?;
        self.dffs.push(Dff { d, q, init });
        Ok(())
    }

    fn claim(&mut self, net: NetId) -> Result<(), RtlError> {
        if self.driven[net.index()] {
            return Err(RtlError::MultipleDrivers { net: net.index() });
        }
        self.driven[net.index()] = true;
        Ok(())
    }

    /// Number of nets.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// Name of a net.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    #[must_use]
    pub fn net_name(&self, id: NetId) -> &str {
        &self.net_names[id.index()]
    }

    /// Looks up a net id by name (first match).
    #[must_use]
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.net_names
            .iter()
            .position(|n| n == name)
            .map(|i| NetId(i as u32))
    }

    /// Primary input nets.
    #[must_use]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// All gates.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// All flip-flops.
    #[must_use]
    pub fn dffs(&self) -> &[Dff] {
        &self.dffs
    }

    /// Number of combinational gates.
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Total area in NAND2-gate equivalents (gates plus 6 per flip-flop).
    #[must_use]
    pub fn gate_equivalents(&self) -> u64 {
        let comb: u64 = self
            .gates
            .iter()
            .map(|g| g.kind.gate_equivalents(g.inputs.len()))
            .sum();
        comb + 6 * self.dffs.len() as u64
    }

    /// Appends gates computing `out = 1` iff the bus `bits` (LSB first)
    /// equals `value` — the address-decode structure of interface glue
    /// logic. Returns the output net.
    ///
    /// # Errors
    ///
    /// Propagates construction errors (dangling nets).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    pub fn equals_const(&mut self, bits: &[NetId], value: u64) -> Result<NetId, RtlError> {
        assert!(!bits.is_empty(), "equals_const needs at least one bit");
        let mut terms = Vec::with_capacity(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if (value >> i) & 1 == 1 {
                terms.push(b);
            } else {
                let inv = self.add_net(format!("eq_inv{i}"));
                self.add_gate(GateKind::Not, &[b], inv, 1)?;
                terms.push(inv);
            }
        }
        if terms.len() == 1 {
            let out = self.add_net("eq_out");
            self.add_gate(GateKind::Buf, &[terms[0]], out, 1)?;
            return Ok(out);
        }
        let out = self.add_net("eq_out");
        self.add_gate(GateKind::And, &terms, out, 1)?;
        Ok(out)
    }

    /// Appends a full adder over `(a, b, cin)`; returns `(sum, cout)`.
    ///
    /// # Errors
    ///
    /// Propagates construction errors (dangling nets).
    pub fn full_adder(
        &mut self,
        a: NetId,
        b: NetId,
        cin: NetId,
    ) -> Result<(NetId, NetId), RtlError> {
        let axb = self.add_net("fa_axb");
        self.add_gate(GateKind::Xor, &[a, b], axb, 1)?;
        let sum = self.add_net("fa_sum");
        self.add_gate(GateKind::Xor, &[axb, cin], sum, 1)?;
        let t1 = self.add_net("fa_t1");
        self.add_gate(GateKind::And, &[a, b], t1, 1)?;
        let t2 = self.add_net("fa_t2");
        self.add_gate(GateKind::And, &[axb, cin], t2, 1)?;
        let cout = self.add_net("fa_cout");
        self.add_gate(GateKind::Or, &[t1, t2], cout, 1)?;
        Ok((sum, cout))
    }

    /// Appends a ripple-carry adder over equal-width buses `a` and `b`
    /// (LSB first) with carry-in `cin`; returns `(sum_bits, carry_out)`.
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` differ in width or are empty.
    pub fn ripple_adder(
        &mut self,
        a: &[NetId],
        b: &[NetId],
        cin: NetId,
    ) -> Result<(Vec<NetId>, NetId), RtlError> {
        assert_eq!(a.len(), b.len(), "operand widths must match");
        assert!(!a.is_empty(), "adder width must be positive");
        let mut carry = cin;
        let mut sum = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let (s, c) = self.full_adder(x, y, carry)?;
            sum.push(s);
            carry = c;
        }
        Ok((sum, carry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_eval_truth_tables() {
        assert!(GateKind::And.eval(&[true, true]));
        assert!(!GateKind::And.eval(&[true, false]));
        assert!(GateKind::Or.eval(&[false, true]));
        assert!(GateKind::Nand.eval(&[true, false]));
        assert!(!GateKind::Nor.eval(&[false, true]));
        assert!(GateKind::Xor.eval(&[true, false]));
        assert!(GateKind::Xnor.eval(&[true, true]));
        assert!(GateKind::Not.eval(&[false]));
        assert!(GateKind::Buf.eval(&[true]));
        assert!(GateKind::Mux2.eval(&[false, true, false]));
        assert!(GateKind::Mux2.eval(&[true, false, true]));
    }

    #[test]
    fn nary_and_works() {
        assert!(GateKind::And.eval(&[true, true, true, true]));
        assert!(!GateKind::And.eval(&[true, true, false, true]));
    }

    #[test]
    fn arity_enforced() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let o = n.add_net("o");
        assert!(matches!(
            n.add_gate(GateKind::Not, &[a, a], o, 1),
            Err(RtlError::GateArity { .. })
        ));
        assert!(matches!(
            n.add_gate(GateKind::And, &[a], o, 1),
            Err(RtlError::GateArity { .. })
        ));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let o = n.add_net("o");
        n.add_gate(GateKind::Buf, &[a], o, 1).unwrap();
        assert_eq!(
            n.add_gate(GateKind::Not, &[a], o, 1),
            Err(RtlError::MultipleDrivers { net: o.index() })
        );
    }

    #[test]
    fn driving_an_input_rejected() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        assert!(matches!(
            n.add_gate(GateKind::Buf, &[a], b, 1),
            Err(RtlError::MultipleDrivers { .. })
        ));
    }

    #[test]
    fn dangling_net_rejected() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        assert!(matches!(
            n.add_gate(GateKind::Buf, &[a], NetId(42), 1),
            Err(RtlError::UnknownNet { .. })
        ));
    }

    #[test]
    fn gate_equivalents_accumulate() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let o1 = n.add_net("o1");
        let o2 = n.add_net("o2");
        let q = n.add_net("q");
        n.add_gate(GateKind::And, &[a, b], o1, 1).unwrap();
        n.add_gate(GateKind::Xor, &[a, b], o2, 1).unwrap();
        n.add_dff(o1, q, false).unwrap();
        assert_eq!(n.gate_equivalents(), 2 + 3 + 6);
    }

    #[test]
    fn net_lookup_by_name() {
        let mut n = Netlist::new("t");
        let a = n.add_input("alpha");
        assert_eq!(n.net_by_name("alpha"), Some(a));
        assert_eq!(n.net_by_name("beta"), None);
        assert_eq!(n.net_name(a), "alpha");
    }
}
