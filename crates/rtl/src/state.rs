//! A hand-rolled little-endian byte codec for model state.
//!
//! Time-travel checkpointing (the `codesign-replay` crate) needs every
//! simulation model to serialize its *mutable* state into a flat byte
//! string and restore from it bit-exactly. The vendored `serde` is a
//! no-op stand-in, so the codec is explicit: a [`StateWriter`] appends
//! fixed-width little-endian fields and length-prefixed sequences, and
//! a [`StateReader`] consumes them in the same order, failing with a
//! typed [`RtlError::State`] on truncation or shape mismatch rather
//! than panicking.
//!
//! Conventions, shared by every `save_state`/`restore_state` pair in
//! the workspace:
//!
//! * integers are little-endian and fixed-width (`u64` for lengths);
//! * sequences are a `u64` length followed by the elements;
//! * nested/opaque blobs are length-prefixed byte strings
//!   ([`StateWriter::bytes`]), so containers can skip or delegate
//!   without knowing inner layouts;
//! * maps are written in sorted key order, so identical logical state
//!   always produces identical bytes (checkpoint dedup and divergence
//!   comparison both hash the bytes);
//! * *static structure* (programs, netlists, mappings, configs) is
//!   never serialized — a checkpoint restores into a freshly rebuilt
//!   model of identical structure, and restore methods verify shape
//!   (element counts) where cheap.

use crate::error::RtlError;

/// Appends state fields to a growing byte vector.
#[derive(Debug, Default)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        StateWriter::default()
    }

    /// Finishes, yielding the serialized bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Appends a sequence length (callers then write the elements).
    pub fn seq(&mut self, len: usize) {
        self.usize(len);
    }
}

/// Consumes state fields from a byte slice, in writer order.
#[derive(Debug)]
pub struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// A reader over `buf`, positioned at the start.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        StateReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails with [`RtlError::State`] unless every byte was consumed —
    /// a trailing-garbage check for top-level restores.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::State`] if bytes remain.
    pub fn finish(&self) -> Result<(), RtlError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(RtlError::State {
                reason: format!("{} trailing bytes after restore", self.remaining()),
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], RtlError> {
        if self.remaining() < n {
            return Err(RtlError::State {
                reason: format!("truncated state: need {n} bytes, have {}", self.remaining()),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::State`] on truncation.
    pub fn u8(&mut self) -> Result<u8, RtlError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool` (one byte; anything nonzero is `true`).
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::State`] on truncation.
    pub fn bool(&mut self) -> Result<bool, RtlError> {
        Ok(self.u8()? != 0)
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::State`] on truncation.
    pub fn u32(&mut self) -> Result<u32, RtlError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::State`] on truncation.
    pub fn u64(&mut self) -> Result<u64, RtlError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::State`] on truncation.
    pub fn i64(&mut self) -> Result<i64, RtlError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a `usize` (stored as `u64`); fails if it cannot fit.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::State`] on truncation or overflow.
    pub fn usize(&mut self) -> Result<usize, RtlError> {
        usize::try_from(self.u64()?).map_err(|_| RtlError::State {
            reason: "length does not fit in usize".into(),
        })
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::State`] on truncation.
    pub fn bytes(&mut self) -> Result<&'a [u8], RtlError> {
        let n = self.usize()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::State`] on truncation or invalid UTF-8.
    pub fn str(&mut self) -> Result<&'a str, RtlError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| RtlError::State {
            reason: "string field is not UTF-8".into(),
        })
    }

    /// Reads a sequence length, verifying it against `expect` when the
    /// restoring model knows its structural size (shape check).
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::State`] on truncation or length mismatch.
    pub fn seq(&mut self, expect: Option<usize>) -> Result<usize, RtlError> {
        let n = self.usize()?;
        if let Some(e) = expect {
            if n != e {
                return Err(RtlError::State {
                    reason: format!("sequence length {n} does not match structure ({e})"),
                });
            }
        }
        Ok(n)
    }
}

/// FNV-1a over a byte slice — the workspace's standard content hash,
/// used for checkpoint page identity and divergence digests.
#[must_use]
pub fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_field_kind() {
        let mut w = StateWriter::new();
        w.u8(7);
        w.bool(true);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.i64(-42);
        w.usize(3);
        w.bytes(b"abc");
        w.str("hello");
        w.seq(2);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.usize().unwrap(), 3);
        assert_eq!(r.bytes().unwrap(), b"abc");
        assert_eq!(r.str().unwrap(), "hello");
        assert_eq!(r.seq(Some(2)).unwrap(), 2);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_and_trailing_bytes_are_typed_errors() {
        let mut w = StateWriter::new();
        w.u64(1);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes[..4]);
        assert!(matches!(r.u64(), Err(RtlError::State { .. })));
        let mut r = StateReader::new(&bytes);
        r.u32().unwrap();
        assert!(matches!(r.finish(), Err(RtlError::State { .. })));
    }

    #[test]
    fn shape_mismatch_is_caught() {
        let mut w = StateWriter::new();
        w.seq(5);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        let err = r.seq(Some(4)).unwrap_err();
        assert!(matches!(err, RtlError::State { .. }), "{err}");
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a_bytes(b"a"), fnv1a_bytes(b"b"));
    }
}
