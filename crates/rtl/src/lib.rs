//! # codesign-rtl
//!
//! The hardware simulation substrate for the mixed hardware/software
//! co-design framework (Adams & Thomas, DAC 1996).
//!
//! The paper's lowest interface-abstraction level models HW/SW interaction
//! as "the activity on the pins of a CPU or the wires of a bus"
//! (Section 3.1, Figure 3, citing Becker et al. \[4\], who couple software
//! to a Verilog simulator). That requires an HDL-style simulation kernel;
//! this crate provides one, built from scratch:
//!
//! * [`netlist`] — gate-level netlists (combinational gates plus D
//!   flip-flops) with per-gate propagation delays, and builder helpers for
//!   the arithmetic/decode structures interface synthesis emits.
//! * [`sim`] — a discrete-event simulator with delta cycles, oscillation
//!   detection, and event-count statistics (the "computationally
//!   expensive" currency of pin-level co-simulation).
//! * [`fsmd`] — word-level finite-state-machine-with-datapath models, the
//!   output of behavioral synthesis (`codesign-hls`), executed
//!   cycle-accurately with a start/done handshake so they can serve as
//!   bus-attached co-processors.
//! * [`bus`] — a pin-accurate system bus with memory-mapped slaves
//!   (memory, UART, timer, GPIO, co-processor ports) and interrupt lines,
//!   the physical boundary of the paper's Type II systems.
//! * [`fpga`] — a field-programmable region model (LUT budget +
//!   reconfiguration latency), for the "instruction-set metamorphosis"
//!   systems of Section 4.4 where "the HW/SW partition need not be static
//!   and could be adapted on the fly".
//!
//! ## Example
//!
//! ```
//! use codesign_rtl::netlist::{GateKind, Netlist};
//! use codesign_rtl::sim::Simulator;
//!
//! # fn main() -> Result<(), codesign_rtl::RtlError> {
//! // A half adder: sum = a ^ b, carry = a & b.
//! let mut n = Netlist::new("half_adder");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let sum = n.add_net("sum");
//! let carry = n.add_net("carry");
//! n.add_gate(GateKind::Xor, &[a, b], sum, 1)?;
//! n.add_gate(GateKind::And, &[a, b], carry, 1)?;
//!
//! let mut sim = Simulator::new(&n)?;
//! sim.set_input(a, true);
//! sim.set_input(b, true);
//! sim.settle()?;
//! assert!(!sim.value(sum));
//! assert!(sim.value(carry));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bus;
pub mod error;
pub mod fpga;
pub mod fsmd;
pub mod netlist;
pub mod sim;
pub mod state;

pub use error::RtlError;
