//! Discrete-event simulation of gate-level netlists.
//!
//! The kernel follows HDL semantics: a value change on a net schedules
//! every gate in its fanout; a gate whose newly computed output differs
//! from the net's current value schedules a change `delay` time units
//! later. Zero-delay changes are processed as *delta cycles* within the
//! same timestamp, with an iteration limit that detects combinational
//! loops. Flip-flops are clocked by [`Simulator::clock_cycle`], which
//! samples every `d` input and then applies the `q` updates atomically —
//! the standard two-phase synchronous discipline.
//!
//! The simulator keeps an event counter ([`Simulator::events_processed`]):
//! pin-level co-simulation cost is measured in processed events, which is
//! the "computationally expensive" currency the paper attributes to
//! modeling "activity on the pins" (Section 3.1).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::error::RtlError;
use crate::netlist::{NetId, Netlist};
use crate::state::{StateReader, StateWriter};

/// Maximum delta iterations per timestamp before declaring oscillation.
const DELTA_LIMIT: usize = 1_000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    time: u64,
    seq: u64,
    net: NetId,
    value: bool,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// An event-driven simulator owning a snapshot of a [`Netlist`].
///
/// Gate outputs follow *inertial delay* semantics: when a gate
/// re-evaluates, pending transitions of its output scheduled at or after
/// the new transition's time are cancelled, so a glitch narrower than
/// the gate delay is swallowed while wider pulses propagate.
#[derive(Debug)]
pub struct Simulator {
    netlist: Netlist,
    values: Vec<bool>,
    /// net index -> indices of gates with that net as an input
    fanout: Vec<Vec<usize>>,
    queue: BinaryHeap<Reverse<Event>>,
    /// per net: in-flight transitions `(time, seq, value)` sorted by time
    pending: Vec<Vec<(u64, u64, bool)>>,
    /// per event seq: cancelled by a later re-evaluation
    stale: Vec<bool>,
    time: u64,
    seq: u64,
    events: u64,
    /// recorded value changes `(time, net, value)` when tracing
    trace: Option<Vec<(u64, NetId, bool)>>,
}

impl Simulator {
    /// Creates a simulator for the given netlist. Flip-flop outputs start
    /// at their declared `init` values; all other nets start low.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnknownNet`] if the netlist is internally
    /// inconsistent (cannot happen for netlists built through the public
    /// [`Netlist`] API).
    pub fn new(netlist: &Netlist) -> Result<Self, RtlError> {
        let n = netlist.net_count();
        let mut fanout: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (gi, gate) in netlist.gates().iter().enumerate() {
            for input in &gate.inputs {
                if input.index() >= n {
                    return Err(RtlError::UnknownNet {
                        index: input.index(),
                    });
                }
                fanout[input.index()].push(gi);
            }
        }
        let mut values = vec![false; n];
        for dff in netlist.dffs() {
            values[dff.q.index()] = dff.init;
        }
        let mut sim = Simulator {
            netlist: netlist.clone(),
            values,
            fanout,
            queue: BinaryHeap::new(),
            pending: vec![Vec::new(); n],
            stale: Vec::new(),
            time: 0,
            seq: 0,
            events: 0,
            trace: None,
        };
        // Evaluate all gates once so outputs become consistent with the
        // initial input values as soon as the caller settles or runs.
        for gi in 0..sim.netlist.gates().len() {
            sim.schedule_gate(gi);
        }
        Ok(sim)
    }

    /// Current simulation time.
    #[must_use]
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Total value-change events processed since construction.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Time of the event-queue head — the earliest queued transition, if
    /// any. The head may be a cancelled (stale) transition, in which case
    /// this is an earlier-or-equal lower bound on the true next activity;
    /// either way nothing can happen strictly before the returned time,
    /// which is exactly what a conservative co-simulation lookahead hint
    /// needs. `None` means the netlist is fully quiescent.
    #[must_use]
    pub fn next_event_time(&self) -> Option<u64> {
        self.queue.peek().map(|&Reverse(ev)| ev.time)
    }

    /// Current value of a net.
    ///
    /// # Panics
    ///
    /// Panics if `net` does not belong to the simulated netlist.
    #[must_use]
    pub fn value(&self, net: NetId) -> bool {
        self.values[net.index()]
    }

    /// Reads a bus of nets (LSB first) as an integer.
    #[must_use]
    pub fn bus_value(&self, bits: &[NetId]) -> u64 {
        bits.iter()
            .enumerate()
            .map(|(i, &b)| u64::from(self.value(b)) << i)
            .sum()
    }

    /// Drives a primary input at the current time.
    pub fn set_input(&mut self, net: NetId, value: bool) {
        self.schedule(self.time, net, value);
    }

    /// Drives a bus of primary inputs (LSB first) from an integer.
    pub fn set_bus(&mut self, bits: &[NetId], value: u64) {
        for (i, &b) in bits.iter().enumerate() {
            self.set_input(b, (value >> i) & 1 == 1);
        }
    }

    /// Schedules a transition with inertial-delay cancellation: pending
    /// transitions of `net` at or after `time` are cancelled first, and
    /// the new transition is only queued if it changes the value the net
    /// would otherwise hold at `time`.
    fn schedule(&mut self, time: u64, net: NetId, value: bool) {
        let pend = &mut self.pending[net.index()];
        while pend.last().is_some_and(|&(t, _, _)| t >= time) {
            let (_, seq, _) = pend.pop().expect("just checked");
            self.stale[seq as usize] = true;
        }
        let projected = pend.last().map_or(self.values[net.index()], |&(_, _, v)| v);
        if value == projected {
            return;
        }
        let ev = Event {
            time,
            seq: self.seq,
            net,
            value,
        };
        self.seq += 1;
        self.stale.push(false);
        pend.push((time, ev.seq, value));
        self.queue.push(Reverse(ev));
    }

    fn schedule_gate(&mut self, gi: usize) {
        let gate = &self.netlist.gates()[gi];
        let ins: Vec<bool> = gate.inputs.iter().map(|n| self.values[n.index()]).collect();
        let out = gate.kind.eval(&ins);
        let (t, net) = (self.time + gate.delay, gate.output);
        self.schedule(t, net, out);
    }

    /// Processes events until the queue is empty, advancing time as
    /// needed. This settles all combinational activity.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::Oscillation`] if a zero-delay loop prevents the
    /// logic from settling.
    pub fn settle(&mut self) -> Result<(), RtlError> {
        while let Some(&Reverse(ev)) = self.queue.peek() {
            self.time = self.time.max(ev.time);
            self.process_timestamp()?;
        }
        Ok(())
    }

    /// Runs for `duration` time units (processing every event scheduled in
    /// the window), leaving later events pending.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::Oscillation`] if a zero-delay loop prevents the
    /// logic from settling.
    pub fn run_for(&mut self, duration: u64) -> Result<(), RtlError> {
        let deadline = self.time + duration;
        while let Some(&Reverse(ev)) = self.queue.peek() {
            if ev.time > deadline {
                break;
            }
            self.time = ev.time;
            self.process_timestamp()?;
        }
        self.time = deadline;
        Ok(())
    }

    /// Processes all events at the current earliest timestamp, including
    /// delta iterations caused by zero-delay gates.
    fn process_timestamp(&mut self) -> Result<(), RtlError> {
        let Some(&Reverse(first)) = self.queue.peek() else {
            return Ok(());
        };
        let now = first.time;
        self.time = now;
        let mut deltas = 0usize;
        loop {
            let mut changed: Vec<NetId> = Vec::new();
            while let Some(&Reverse(ev)) = self.queue.peek() {
                if ev.time != now {
                    break;
                }
                let Reverse(ev) = self.queue.pop().expect("peeked");
                if self.stale[ev.seq as usize] {
                    continue;
                }
                let pend = &mut self.pending[ev.net.index()];
                if let Some(pos) = pend.iter().position(|&(_, s, _)| s == ev.seq) {
                    pend.remove(pos);
                }
                if self.values[ev.net.index()] != ev.value {
                    self.values[ev.net.index()] = ev.value;
                    self.events += 1;
                    if let Some(trace) = &mut self.trace {
                        trace.push((now, ev.net, ev.value));
                    }
                    changed.push(ev.net);
                }
            }
            if changed.is_empty() {
                return Ok(());
            }
            deltas += 1;
            if deltas > DELTA_LIMIT {
                return Err(RtlError::Oscillation { time: now });
            }
            let mut gates: Vec<usize> = changed
                .iter()
                .flat_map(|n| self.fanout[n.index()].iter().copied())
                .collect();
            gates.sort_unstable();
            gates.dedup();
            for gi in gates {
                self.schedule_gate(gi);
            }
            // Zero-delay outputs landed back at `now`; loop to absorb them.
            match self.queue.peek() {
                Some(&Reverse(ev)) if ev.time == now => {}
                _ => return Ok(()),
            }
        }
    }

    /// Serializes the mutable simulation state: time, counters, net
    /// values, and the in-flight (non-cancelled) transitions. Static
    /// structure (the netlist, fanout) is not written; a checkpoint
    /// restores into a simulator built from the same netlist. Cancelled
    /// (stale) events are dropped — they are behavioral no-ops — so
    /// identical logical state always serializes to identical bytes.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.u64(self.time);
        w.u64(self.seq);
        w.u64(self.events);
        w.seq(self.values.len());
        for &v in &self.values {
            w.bool(v);
        }
        w.seq(self.pending.len());
        for pend in &self.pending {
            w.seq(pend.len());
            for &(t, seq, v) in pend {
                w.u64(t);
                w.u64(seq);
                w.bool(v);
            }
        }
    }

    /// Restores state captured by [`Simulator::save_state`] into a
    /// simulator over the same netlist. The event queue is rebuilt from
    /// the live transitions; original sequence numbers are preserved so
    /// tie-breaking (and therefore every future event ordering) matches
    /// the uninterrupted run exactly.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::State`] on truncated bytes or a net-count
    /// mismatch (checkpoint from a structurally different netlist).
    pub fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), RtlError> {
        let time = r.u64()?;
        let seq = r.u64()?;
        let events = r.u64()?;
        let n = r.seq(Some(self.values.len()))?;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(r.bool()?);
        }
        let pn = r.seq(Some(self.pending.len()))?;
        let mut pending: Vec<Vec<(u64, u64, bool)>> = Vec::with_capacity(pn);
        for _ in 0..pn {
            let k = r.seq(None)?;
            let mut pend = Vec::with_capacity(k);
            for _ in 0..k {
                pend.push((r.u64()?, r.u64()?, r.bool()?));
            }
            pending.push(pend);
        }
        self.time = time;
        self.seq = seq;
        self.events = events;
        self.values = values;
        // Every live transition was queued once; stale slots belong to
        // dropped (cancelled) events and stay marked.
        self.stale = vec![true; usize::try_from(seq).unwrap_or(usize::MAX)];
        self.queue = BinaryHeap::new();
        self.pending = pending;
        for (ni, pend) in self.pending.iter().enumerate() {
            for &(t, s, v) in pend {
                self.stale[s as usize] = false;
                self.queue.push(Reverse(Event {
                    time: t,
                    seq: s,
                    net: NetId(ni as u32),
                    value: v,
                }));
            }
        }
        Ok(())
    }

    /// Starts recording value changes for [`Simulator::write_vcd`].
    /// Changes before this call are not recorded; call immediately after
    /// construction for a complete waveform.
    pub fn enable_tracing(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// Writes the recorded waveform as a Value Change Dump (IEEE 1364
    /// `$var wire` format), readable by GTKWave and friends.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    ///
    /// # Panics
    ///
    /// Panics if tracing was never enabled.
    pub fn write_vcd<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        let trace = self
            .trace
            .as_ref()
            .expect("call enable_tracing() before write_vcd()");
        // Identifier codes: base-94 over the printable ASCII range.
        fn code(mut i: usize) -> String {
            let mut s = String::new();
            loop {
                s.push((b'!' + (i % 94) as u8) as char);
                i /= 94;
                if i == 0 {
                    break;
                }
            }
            s
        }
        writeln!(w, "$timescale 1ns $end")?;
        writeln!(w, "$scope module {} $end", self.netlist.name())?;
        for i in 0..self.netlist.net_count() {
            let name = self.netlist.net_name(NetId(i as u32)).replace(' ', "_");
            writeln!(w, "$var wire 1 {} {name} $end", code(i))?;
        }
        writeln!(w, "$upscope $end")?;
        writeln!(w, "$enddefinitions $end")?;
        // Initial values: everything that never changed holds its current
        // value; reconstruct t=0 values by rewinding the trace.
        let mut initial = self.values.clone();
        for &(_, net, value) in trace.iter().rev() {
            initial[net.index()] = !value;
        }
        writeln!(w, "#0")?;
        writeln!(w, "$dumpvars")?;
        for (i, &v) in initial.iter().enumerate() {
            writeln!(w, "{}{}", u8::from(v), code(i))?;
        }
        writeln!(w, "$end")?;
        let mut last_time = 0;
        for &(t, net, value) in trace {
            if t != last_time {
                writeln!(w, "#{t}")?;
                last_time = t;
            }
            writeln!(w, "{}{}", u8::from(value), code(net.index()))?;
        }
        Ok(())
    }

    /// Executes one synchronous clock cycle: samples every flip-flop's `d`
    /// input, advances time by `period`, applies the sampled values to the
    /// `q` outputs, and settles the resulting combinational activity.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::Oscillation`] if combinational logic cannot
    /// settle within the cycle.
    pub fn clock_cycle(&mut self, period: u64) -> Result<(), RtlError> {
        // Everything still in flight this cycle must settle first.
        self.run_for(period)?;
        let sampled: Vec<(NetId, bool)> = self
            .netlist
            .dffs()
            .iter()
            .map(|dff| (dff.q, self.values[dff.d.index()]))
            .collect();
        for (q, v) in sampled {
            self.schedule(self.time, q, v);
        }
        self.settle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::GateKind;

    #[test]
    fn full_adder_truth_table() {
        let mut n = Netlist::new("fa");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let (sum, cout) = n.full_adder(a, b, c).unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        for bits in 0..8u8 {
            let (x, y, z) = (bits & 1 == 1, bits & 2 == 2, bits & 4 == 4);
            sim.set_input(a, x);
            sim.set_input(b, y);
            sim.set_input(c, z);
            sim.settle().unwrap();
            let total = u8::from(x) + u8::from(y) + u8::from(z);
            assert_eq!(sim.value(sum), total & 1 == 1, "sum for {bits:03b}");
            assert_eq!(sim.value(cout), total >= 2, "cout for {bits:03b}");
        }
    }

    #[test]
    fn next_event_time_tracks_queue_head() {
        let mut n = Netlist::new("inv");
        let a = n.add_input("a");
        let q = n.add_net("q");
        n.add_gate(GateKind::Not, &[a], q, 3).unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.next_event_time(), None, "quiescent after settle");
        let t0 = sim.time();
        sim.set_input(a, true);
        assert_eq!(sim.next_event_time(), Some(t0), "input edge queued now");
        // Absorb the input edge; the inverter's response is one gate delay
        // out and nothing can happen before it — a valid conservative
        // lookahead hint.
        sim.run_for(0).unwrap();
        assert_eq!(sim.next_event_time(), Some(t0 + 3));
        sim.settle().unwrap();
        assert!(!sim.value(q));
        assert_eq!(sim.next_event_time(), None);
    }

    #[test]
    fn ripple_adder_adds() {
        let mut n = Netlist::new("add8");
        let a: Vec<_> = (0..8).map(|i| n.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..8).map(|i| n.add_input(format!("b{i}"))).collect();
        let zero = n.add_input("cin");
        let (sum, cout) = n.ripple_adder(&a, &b, zero).unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        for (x, y) in [(3u64, 4u64), (200, 100), (255, 1), (0, 0), (127, 128)] {
            sim.set_bus(&a, x);
            sim.set_bus(&b, y);
            sim.settle().unwrap();
            let total = x + y;
            assert_eq!(sim.bus_value(&sum), total & 0xff, "{x}+{y}");
            assert_eq!(sim.value(cout), total > 0xff, "carry {x}+{y}");
        }
    }

    #[test]
    fn equals_const_decodes() {
        let mut n = Netlist::new("dec");
        let bits: Vec<_> = (0..4).map(|i| n.add_input(format!("a{i}"))).collect();
        let hit = n.equals_const(&bits, 0b1010).unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        for v in 0..16u64 {
            sim.set_bus(&bits, v);
            sim.settle().unwrap();
            assert_eq!(sim.value(hit), v == 0b1010, "value {v}");
        }
    }

    #[test]
    fn dff_delays_by_one_cycle() {
        let mut n = Netlist::new("reg");
        let d = n.add_input("d");
        let q = n.add_net("q");
        n.add_dff(d, q, false).unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input(d, true);
        sim.settle().unwrap();
        assert!(!sim.value(q), "q unchanged before clock");
        sim.clock_cycle(10).unwrap();
        assert!(sim.value(q), "q captured d after clock");
        sim.set_input(d, false);
        sim.clock_cycle(10).unwrap();
        assert!(!sim.value(q));
    }

    #[test]
    fn toggle_flop_divides_by_two() {
        // q feeds back through an inverter: classic divide-by-two.
        let mut n = Netlist::new("tff");
        let q = n.add_net("q");
        let nq = n.add_net("nq");
        n.add_gate(GateKind::Not, &[q], nq, 1).unwrap();
        n.add_dff(nq, q, false).unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        let mut values = Vec::new();
        for _ in 0..4 {
            sim.clock_cycle(10).unwrap();
            values.push(sim.value(q));
        }
        assert_eq!(values, vec![true, false, true, false]);
    }

    #[test]
    fn zero_delay_loop_oscillates() {
        // A zero-delay inverter feeding itself can never settle.
        let mut n = Netlist::new("osc");
        let x = n.add_net("x");
        let y = n.add_net("y");
        n.add_gate(GateKind::Not, &[x], y, 0).unwrap();
        n.add_gate(GateKind::Buf, &[y], x, 0).unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        assert!(matches!(sim.settle(), Err(RtlError::Oscillation { .. })));
    }

    #[test]
    fn delayed_loop_is_a_ring_oscillator_not_an_error() {
        // With nonzero delay the loop oscillates in *time*, which is legal;
        // run_for should advance through several periods.
        let mut n = Netlist::new("ring");
        let x = n.add_net("x");
        let y = n.add_net("y");
        n.add_gate(GateKind::Not, &[x], y, 5).unwrap();
        n.add_gate(GateKind::Buf, &[y], x, 5).unwrap();
        let mut sim = Simulator::new(&n).unwrap_or_else(|e| panic!("{e}"));
        // new() settles only same-time deltas; future events remain.
        sim.run_for(100).unwrap();
        assert!(sim.events_processed() > 10, "ring keeps toggling");
    }

    #[test]
    fn event_count_tracks_activity() {
        let mut n = Netlist::new("chain");
        let a = n.add_input("a");
        let mut prev = a;
        for i in 0..10 {
            let next = n.add_net(format!("n{i}"));
            n.add_gate(GateKind::Not, &[prev], next, 1).unwrap();
            prev = next;
        }
        let mut sim = Simulator::new(&n).unwrap();
        let before = sim.events_processed();
        sim.set_input(a, true);
        sim.settle().unwrap();
        // One event per stage of the inverter chain plus the input itself.
        assert!(sim.events_processed() - before >= 11);
    }

    #[test]
    fn glitch_propagation_costs_events() {
        // Unequal path delays to an XOR create a glitch: more events than
        // a steady-state evaluation would need.
        let mut n = Netlist::new("glitch");
        let a = n.add_input("a");
        let slow1 = n.add_net("s1");
        let slow2 = n.add_net("s2");
        n.add_gate(GateKind::Buf, &[a], slow1, 3).unwrap();
        n.add_gate(GateKind::Buf, &[slow1], slow2, 3).unwrap();
        let out = n.add_net("out");
        n.add_gate(GateKind::Xor, &[a, slow2], out, 1).unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input(a, true);
        sim.settle().unwrap();
        // Final value: a ^ a = 0, but the glitch pulsed out high then low.
        assert!(!sim.value(out));
        assert!(sim.events_processed() >= 5);
    }

    #[test]
    fn vcd_dump_contains_header_and_changes() {
        let mut n = Netlist::new("half_adder");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let sum = n.add_net("sum");
        let carry = n.add_net("carry");
        n.add_gate(GateKind::Xor, &[a, b], sum, 1).unwrap();
        n.add_gate(GateKind::And, &[a, b], carry, 1).unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        sim.enable_tracing();
        sim.set_input(a, true);
        sim.settle().unwrap();
        sim.run_for(5).unwrap();
        sim.set_input(b, true);
        sim.settle().unwrap();

        let mut vcd = Vec::new();
        sim.write_vcd(&mut vcd).unwrap();
        let text = String::from_utf8(vcd).unwrap();
        assert!(text.contains("$timescale 1ns $end"));
        assert!(text.contains("$scope module half_adder $end"));
        assert!(text.contains("$var wire 1 ! a $end"));
        assert!(text.contains("$var wire 1 $ carry $end"));
        assert!(text.contains("$dumpvars"));
        // Timestamps strictly increase.
        let stamps: Vec<u64> = text
            .lines()
            .filter_map(|l| l.strip_prefix('#'))
            .map(|t| t.parse().unwrap())
            .collect();
        assert!(stamps.windows(2).all(|w| w[0] < w[1]), "{stamps:?}");
        // Replaying the dump reproduces the final simulator state.
        let mut values = std::collections::HashMap::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix('0') {
                if !rest.is_empty() && !line.starts_with("$") {
                    values.insert(rest.to_string(), false);
                }
            } else if let Some(rest) = line.strip_prefix('1') {
                if !rest.is_empty() {
                    values.insert(rest.to_string(), true);
                }
            }
        }
        assert_eq!(values.get("!"), Some(&true), "a high");
        assert_eq!(values.get("\""), Some(&true), "b high");
        assert_eq!(values.get("#"), Some(&false), "sum = a^b = 0");
        assert_eq!(values.get("$"), Some(&true), "carry = a&b = 1");
    }

    #[test]
    fn vcd_change_count_matches_event_count() {
        let mut n = Netlist::new("chain");
        let a = n.add_input("a");
        let mut prev = a;
        for i in 0..5 {
            let next = n.add_net(format!("n{i}"));
            n.add_gate(GateKind::Not, &[prev], next, 1).unwrap();
            prev = next;
        }
        let mut sim = Simulator::new(&n).unwrap();
        sim.settle().unwrap();
        sim.enable_tracing();
        let before = sim.events_processed();
        sim.set_input(a, true);
        sim.settle().unwrap();
        let changes = sim.events_processed() - before;
        let mut vcd = Vec::new();
        sim.write_vcd(&mut vcd).unwrap();
        let text = String::from_utf8(vcd).unwrap();
        // Count value-change lines after $end of dumpvars.
        let tail = text.split("$end").last().unwrap();
        let lines = tail
            .lines()
            .filter(|l| l.starts_with('0') || l.starts_with('1'))
            .count() as u64;
        assert_eq!(lines, changes);
    }
}
