//! Transaction-level system bus with memory-mapped slaves.
//!
//! The bus is the physical HW/SW boundary of the paper's Type II systems
//! (Figure 3 bottom): the processor issues register reads/writes and
//! receives interrupts; devices and co-processors sit behind an address
//! map. Every transaction reports its cost in bus cycles, so the
//! instruction-set simulator can account for communication overhead — the
//! Section 3.3 consideration that "favors partitions that localize
//! communication".
//!
//! `codesign-sim`'s pin-level engine expands each transaction into a
//! cycle-by-cycle req/ack pin protocol through the event-driven kernel;
//! this module is the behavioral reference those pins implement.

use codesign_trace::{Arg, Tracer, TrackId};

use crate::error::RtlError;
use crate::fsmd::{FsmdSim, FsmdStatus};
use crate::state::{StateReader, StateWriter};

/// A device mapped on the [`SystemBus`].
pub trait BusSlave: std::fmt::Debug {
    /// Device name, for address-map reports.
    fn name(&self) -> &str;
    /// Reads the 32-bit register at a byte offset within the device.
    fn read(&mut self, offset: u32) -> u32;
    /// Writes the 32-bit register at a byte offset within the device.
    fn write(&mut self, offset: u32, value: u32);
    /// Advances the device by one bus-clock cycle.
    fn tick(&mut self) {}
    /// Whether the device is requesting an interrupt.
    fn irq_pending(&self) -> bool {
        false
    }
    /// Extra wait states the device would insert on its next access.
    ///
    /// Only a pin-level physical layer ([`BusPhy`]) observes these;
    /// transaction-level simulation assumes the fixed [`BusTiming`] —
    /// which is precisely the timing error the abstraction-ladder
    /// experiment measures.
    fn wait_states(&self) -> u64 {
        0
    }
    /// The device as [`std::any::Any`], for typed inspection through
    /// [`SystemBus::device`] in test benches and harnesses.
    fn as_any(&self) -> &dyn std::any::Any;
    /// Mutable counterpart of [`BusSlave::as_any`], for typed test-bench
    /// stimulus through [`SystemBus::device_mut`] (e.g. injecting UART
    /// receive data or driving GPIO input pins).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
    /// Serializes the device's mutable state for checkpointing (see
    /// [`crate::state`]). The default writes nothing, which is correct
    /// only for stateless devices; every stateful slave must override
    /// this and [`BusSlave::restore_state`] as a matched pair, or
    /// restored runs will silently diverge from uninterrupted ones.
    fn save_state(&self, w: &mut StateWriter) {
        let _ = w;
    }
    /// Restores state captured by [`BusSlave::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::State`] on truncated or mismatched bytes.
    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), RtlError> {
        let _ = r;
        Ok(())
    }
}

/// A physical layer for the bus: when installed via
/// [`SystemBus::set_phy`], every transaction is realized by this layer
/// (e.g. as a cycle-by-cycle pin protocol through the event-driven gate
/// simulator), and its returned cycle count — including device wait
/// states — replaces the fixed [`BusTiming`] estimate.
pub trait BusPhy: std::fmt::Debug {
    /// Performs one transaction at the physical level and returns the bus
    /// cycles it took.
    fn transaction(&mut self, addr: u32, write: bool, value: u32, wait_states: u64) -> u64;
    /// Cumulative low-level simulation events processed by this layer.
    fn events(&self) -> u64;
    /// Serializes the layer's mutable state for checkpointing. Same
    /// contract as [`BusSlave::save_state`]: the default writes nothing
    /// and is correct only for stateless layers.
    fn save_state(&self, w: &mut StateWriter) {
        let _ = w;
    }
    /// Restores state captured by [`BusPhy::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::State`] on truncated or mismatched bytes.
    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), RtlError> {
        let _ = r;
        Ok(())
    }
}

/// Per-transaction timing of the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusTiming {
    /// Cycles for the address phase.
    pub addr_cycles: u64,
    /// Cycles for the data phase.
    pub data_cycles: u64,
    /// Extra wait states per transaction.
    pub wait_states: u64,
}

impl Default for BusTiming {
    fn default() -> Self {
        BusTiming {
            addr_cycles: 1,
            data_cycles: 1,
            wait_states: 1,
        }
    }
}

impl BusTiming {
    /// Cycles one transaction occupies the bus.
    #[must_use]
    pub fn transaction_cycles(&self) -> u64 {
        self.addr_cycles + self.data_cycles + self.wait_states
    }
}

/// Cumulative bus activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Completed read transactions.
    pub reads: u64,
    /// Completed write transactions.
    pub writes: u64,
    /// Total bus cycles consumed by transactions.
    pub busy_cycles: u64,
}

#[derive(Debug)]
struct Mapping {
    base: u32,
    size: u32,
    slave: Box<dyn BusSlave>,
    reads: u64,
    writes: u64,
    last_write_seq: u64,
}

/// Per-device access statistics, the bus-side architected observables a
/// conformance harness compares across abstraction levels: how often
/// each device was touched and *when* (in transaction order) it last
/// received a write — which is what makes per-channel completion order
/// measurable without instrumenting the software.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceAccess {
    /// Device name.
    pub name: String,
    /// Mapped base address.
    pub base: u32,
    /// Read transactions this device served.
    pub reads: u64,
    /// Write transactions this device served.
    pub writes: u64,
    /// Global transaction sequence number of the most recent write
    /// (1-based; 0 = never written).
    pub last_write_seq: u64,
}

/// The shared system bus: an address map over [`BusSlave`]s plus timing
/// and statistics.
#[derive(Debug)]
pub struct SystemBus {
    timing: BusTiming,
    mappings: Vec<Mapping>,
    stats: BusStats,
    write_seq: u64,
    phy: Option<Box<dyn BusPhy>>,
    tracer: Tracer,
    track: TrackId,
}

impl SystemBus {
    /// Creates an empty bus with the given timing.
    #[must_use]
    pub fn new(timing: BusTiming) -> Self {
        let tracer = Tracer::off();
        let track = tracer.track("bus");
        SystemBus {
            timing,
            mappings: Vec::new(),
            stats: BusStats::default(),
            write_seq: 0,
            phy: None,
            tracer,
            track,
        }
    }

    /// Attaches a tracer: each transaction becomes a span on the `label`
    /// track — timestamped in cumulative bus-busy cycles, with address,
    /// value, and device name as arguments — and accesses to a
    /// [`DrainFifo`] also emit its occupancy as a counter. Tracing is
    /// observational only; timing and results are identical either way.
    pub fn set_tracer(&mut self, tracer: &Tracer, label: &str) {
        self.tracer = tracer.clone();
        self.track = self.tracer.track(label);
    }

    fn trace_transaction(&self, name: &str, i: usize, addr: u32, value: u32, cycles: u64) {
        if !self.tracer.is_on() {
            return;
        }
        let start = self.stats.busy_cycles - cycles;
        self.tracer.span(
            self.track,
            name,
            start,
            cycles,
            &[
                ("addr", Arg::from(u64::from(addr))),
                ("value", Arg::from(u64::from(value))),
                ("device", Arg::from(self.mappings[i].slave.name())),
            ],
        );
        if let Some(fifo) = self.mappings[i].slave.as_any().downcast_ref::<DrainFifo>() {
            self.tracer.counter(
                self.track,
                "fifo_occupancy",
                self.stats.busy_cycles,
                fifo.occupancy() as u64,
            );
        }
    }

    /// Installs a physical layer; subsequent transactions are realized
    /// (and timed) by it instead of the fixed [`BusTiming`].
    pub fn set_phy(&mut self, phy: Box<dyn BusPhy>) {
        self.phy = Some(phy);
    }

    /// Low-level events processed by the installed physical layer, if
    /// any.
    #[must_use]
    pub fn phy_events(&self) -> u64 {
        self.phy.as_ref().map_or(0, |p| p.events())
    }

    /// The bus timing parameters.
    #[must_use]
    pub fn timing(&self) -> BusTiming {
        self.timing
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// Maps `slave` at `[base, base + size)`.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::MapOverlap`] naming both devices and ranges
    /// if the range overlaps an existing mapping, or if it wraps past
    /// the end of the 32-bit address space.
    pub fn map(&mut self, base: u32, size: u32, slave: Box<dyn BusSlave>) -> Result<(), RtlError> {
        let Some(end) = base.checked_add(size) else {
            return Err(RtlError::MapOverlap {
                device: slave.name().to_string(),
                base,
                size,
                conflict: "range wraps the 32-bit address space".to_string(),
            });
        };
        for m in &self.mappings {
            let m_end = m.base + m.size;
            if base < m_end && m.base < end {
                return Err(RtlError::MapOverlap {
                    device: slave.name().to_string(),
                    base,
                    size,
                    conflict: format!(
                        "overlaps {} at [{:#010x}, {m_end:#010x})",
                        m.slave.name(),
                        m.base
                    ),
                });
            }
        }
        self.mappings.push(Mapping {
            base,
            size,
            slave,
            reads: 0,
            writes: 0,
            last_write_seq: 0,
        });
        Ok(())
    }

    /// Typed access to the first mapped device of type `T`, for
    /// test-bench inspection (e.g. a UART's transmit log).
    #[must_use]
    pub fn device<T: 'static>(&self) -> Option<&T> {
        self.mappings
            .iter()
            .find_map(|m| m.slave.as_any().downcast_ref::<T>())
    }

    /// Mutable typed access to the first mapped device of type `T`, for
    /// test-bench stimulus.
    #[must_use]
    pub fn device_mut<T: 'static>(&mut self) -> Option<&mut T> {
        self.mappings
            .iter_mut()
            .find_map(|m| m.slave.as_any_mut().downcast_mut::<T>())
    }

    /// Typed access to the device mapped at exactly `base`, for
    /// harnesses with several devices of the same type (e.g. one FIFO
    /// per channel). Non-perturbing: unlike a bus [`SystemBus::read`],
    /// inspection through this accessor costs no transaction and leaves
    /// every statistic untouched.
    #[must_use]
    pub fn device_at<T: 'static>(&self, base: u32) -> Option<&T> {
        self.mappings
            .iter()
            .find(|m| m.base == base)
            .and_then(|m| m.slave.as_any().downcast_ref::<T>())
    }

    /// Mutable counterpart of [`SystemBus::device_at`], for per-device
    /// test-bench stimulus (e.g. preloading one specific UART).
    #[must_use]
    pub fn device_at_mut<T: 'static>(&mut self, base: u32) -> Option<&mut T> {
        self.mappings
            .iter_mut()
            .find(|m| m.base == base)
            .and_then(|m| m.slave.as_any_mut().downcast_mut::<T>())
    }

    /// Per-device access statistics in mapping order (see
    /// [`DeviceAccess`]). Non-perturbing, like [`SystemBus::device_at`].
    #[must_use]
    pub fn device_accesses(&self) -> Vec<DeviceAccess> {
        self.mappings
            .iter()
            .map(|m| DeviceAccess {
                name: m.slave.name().to_string(),
                base: m.base,
                reads: m.reads,
                writes: m.writes,
                last_write_seq: m.last_write_seq,
            })
            .collect()
    }

    /// The address map as `(name, base, size)` triples.
    #[must_use]
    pub fn address_map(&self) -> Vec<(String, u32, u32)> {
        self.mappings
            .iter()
            .map(|m| (m.slave.name().to_string(), m.base, m.size))
            .collect()
    }

    fn resolve(&mut self, addr: u32) -> Result<(usize, u32), RtlError> {
        for (i, m) in self.mappings.iter().enumerate() {
            if addr >= m.base && addr - m.base < m.size {
                return Ok((i, addr - m.base));
            }
        }
        Err(RtlError::BusFault { addr })
    }

    /// Performs a read transaction; returns the value and the cycles the
    /// transaction occupied the bus.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::BusFault`] if no slave claims `addr`.
    pub fn read(&mut self, addr: u32) -> Result<(u32, u64), RtlError> {
        let (i, off) = self.resolve(addr)?;
        let waits = self.mappings[i].slave.wait_states();
        let value = self.mappings[i].slave.read(off);
        let cycles = match self.phy.as_mut() {
            Some(phy) => phy.transaction(addr, false, value, waits),
            None => self.timing.transaction_cycles(),
        };
        self.stats.reads += 1;
        self.stats.busy_cycles += cycles;
        self.mappings[i].reads += 1;
        self.trace_transaction("read", i, addr, value, cycles);
        Ok((value, cycles))
    }

    /// Performs a write transaction; returns the cycles it occupied the
    /// bus.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::BusFault`] if no slave claims `addr`.
    pub fn write(&mut self, addr: u32, value: u32) -> Result<u64, RtlError> {
        let (i, off) = self.resolve(addr)?;
        let waits = self.mappings[i].slave.wait_states();
        self.mappings[i].slave.write(off, value);
        let cycles = match self.phy.as_mut() {
            Some(phy) => phy.transaction(addr, true, value, waits),
            None => self.timing.transaction_cycles(),
        };
        self.stats.writes += 1;
        self.stats.busy_cycles += cycles;
        self.write_seq += 1;
        self.mappings[i].writes += 1;
        self.mappings[i].last_write_seq = self.write_seq;
        self.trace_transaction("write", i, addr, value, cycles);
        Ok(cycles)
    }

    /// Advances every mapped device by `cycles` bus-clock cycles.
    pub fn tick(&mut self, cycles: u64) {
        for _ in 0..cycles {
            for m in &mut self.mappings {
                m.slave.tick();
            }
        }
    }

    /// Whether any device is requesting an interrupt.
    #[must_use]
    pub fn irq_pending(&self) -> bool {
        self.mappings.iter().any(|m| m.slave.irq_pending())
    }

    /// Serializes the bus's mutable state: transaction statistics,
    /// per-mapping access counters, every slave's state (as opaque
    /// length-prefixed blobs), and the physical layer's state if one is
    /// installed. The address map and timing are static and not
    /// written; a checkpoint restores into a bus rebuilt with identical
    /// mappings.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.u64(self.stats.reads);
        w.u64(self.stats.writes);
        w.u64(self.stats.busy_cycles);
        w.u64(self.write_seq);
        w.seq(self.mappings.len());
        for m in &self.mappings {
            w.u64(m.reads);
            w.u64(m.writes);
            w.u64(m.last_write_seq);
            let mut sw = StateWriter::new();
            m.slave.save_state(&mut sw);
            w.bytes(&sw.into_bytes());
        }
        let mut pw = StateWriter::new();
        if let Some(phy) = &self.phy {
            phy.save_state(&mut pw);
        }
        w.bytes(&pw.into_bytes());
    }

    /// Restores state captured by [`SystemBus::save_state`] into a bus
    /// with the same mappings (and the same phy installed, if any).
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::State`] on truncation or a mapping-count
    /// mismatch.
    pub fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), RtlError> {
        self.stats.reads = r.u64()?;
        self.stats.writes = r.u64()?;
        self.stats.busy_cycles = r.u64()?;
        self.write_seq = r.u64()?;
        let n = r.seq(Some(self.mappings.len()))?;
        for i in 0..n {
            self.mappings[i].reads = r.u64()?;
            self.mappings[i].writes = r.u64()?;
            self.mappings[i].last_write_seq = r.u64()?;
            let blob = r.bytes()?;
            let mut sr = StateReader::new(blob);
            self.mappings[i].slave.restore_state(&mut sr)?;
            sr.finish()?;
        }
        let blob = r.bytes()?;
        let mut pr = StateReader::new(blob);
        if let Some(phy) = &mut self.phy {
            phy.restore_state(&mut pr)?;
        }
        pr.finish()
    }
}

// ---------------------------------------------------------------------------
// Devices
// ---------------------------------------------------------------------------

/// Word-addressable RAM.
#[derive(Debug)]
pub struct Ram {
    name: String,
    words: Vec<u32>,
}

impl Ram {
    /// Creates a zeroed RAM of `size_bytes` (rounded up to a word).
    #[must_use]
    pub fn new(name: impl Into<String>, size_bytes: u32) -> Self {
        Ram {
            name: name.into(),
            words: vec![0; (size_bytes as usize).div_ceil(4)],
        }
    }

    /// Direct (non-bus) access for loaders and tests.
    #[must_use]
    pub fn peek(&self, offset: u32) -> u32 {
        self.words.get((offset / 4) as usize).copied().unwrap_or(0)
    }

    /// Direct (non-bus) mutation for loaders and tests.
    pub fn poke(&mut self, offset: u32, value: u32) {
        let idx = (offset / 4) as usize;
        if idx < self.words.len() {
            self.words[idx] = value;
        }
    }
}

impl BusSlave for Ram {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn read(&mut self, offset: u32) -> u32 {
        self.peek(offset)
    }

    fn write(&mut self, offset: u32, value: u32) {
        self.poke(offset, value);
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.seq(self.words.len());
        for &word in &self.words {
            w.u32(word);
        }
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), RtlError> {
        let n = r.seq(Some(self.words.len()))?;
        for i in 0..n {
            self.words[i] = r.u32()?;
        }
        Ok(())
    }
}

/// UART register offsets.
pub mod uart_regs {
    /// Write: transmit one byte (low 8 bits).
    pub const TX: u32 = 0x0;
    /// Read: bit 0 = tx ready (always), bit 1 = rx byte available,
    /// bit 2 = rx overrun (sticky; cleared by reading STATUS).
    pub const STATUS: u32 = 0x4;
    /// Read: pop the next received byte.
    pub const RX: u32 = 0x8;
    /// Read/write: bit 0 enables the rx interrupt.
    pub const IRQ_ENABLE: u32 = 0xC;
}

/// A simple UART: transmitted bytes accumulate in a log; received bytes
/// are injected by the test bench via [`Uart::inject_rx`] into a
/// bounded receive FIFO ([`Uart::RX_CAPACITY`] bytes). Bytes arriving
/// into a full FIFO are lost and latch the sticky overrun bit in
/// STATUS, like a real UART's overrun error flag.
#[derive(Debug, Default)]
pub struct Uart {
    tx_log: Vec<u8>,
    rx_queue: std::collections::VecDeque<u8>,
    irq_enable: bool,
    overrun: bool,
}

impl Uart {
    /// Receive-FIFO depth in bytes; arrivals beyond this are dropped.
    pub const RX_CAPACITY: usize = 16;

    /// Creates an idle UART.
    #[must_use]
    pub fn new() -> Self {
        Uart::default()
    }

    /// Everything transmitted so far.
    #[must_use]
    pub fn transmitted(&self) -> &[u8] {
        &self.tx_log
    }

    /// Injects a byte into the receive queue (as if it arrived on the
    /// line). A byte arriving into a full FIFO is dropped and latches
    /// the sticky overrun flag.
    pub fn inject_rx(&mut self, byte: u8) {
        if self.rx_queue.len() >= Self::RX_CAPACITY {
            self.overrun = true;
        } else {
            self.rx_queue.push_back(byte);
        }
    }

    /// Whether receive bytes have been lost to a full FIFO since the
    /// last STATUS read.
    #[must_use]
    pub fn overrun(&self) -> bool {
        self.overrun
    }
}

impl BusSlave for Uart {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        "uart"
    }

    fn read(&mut self, offset: u32) -> u32 {
        match offset {
            uart_regs::STATUS => {
                let status = 1
                    | (u32::from(!self.rx_queue.is_empty()) << 1)
                    | (u32::from(self.overrun) << 2);
                self.overrun = false; // read-to-clear, like a real LSR
                status
            }
            uart_regs::RX => self.rx_queue.pop_front().map_or(0, u32::from),
            uart_regs::IRQ_ENABLE => u32::from(self.irq_enable),
            _ => 0,
        }
    }

    fn write(&mut self, offset: u32, value: u32) {
        match offset {
            uart_regs::TX => self.tx_log.push((value & 0xff) as u8),
            uart_regs::IRQ_ENABLE => self.irq_enable = value & 1 == 1,
            _ => {}
        }
    }

    fn irq_pending(&self) -> bool {
        self.irq_enable && !self.rx_queue.is_empty()
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.bytes(&self.tx_log);
        w.seq(self.rx_queue.len());
        for &b in &self.rx_queue {
            w.u8(b);
        }
        w.bool(self.irq_enable);
        w.bool(self.overrun);
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), RtlError> {
        self.tx_log = r.bytes()?.to_vec();
        let n = r.seq(None)?;
        self.rx_queue.clear();
        for _ in 0..n {
            self.rx_queue.push_back(r.u8()?);
        }
        self.irq_enable = r.bool()?;
        self.overrun = r.bool()?;
        Ok(())
    }
}

/// Timer register offsets.
pub mod timer_regs {
    /// Read/write: reload value in bus cycles.
    pub const LOAD: u32 = 0x0;
    /// Read: current countdown value.
    pub const VALUE: u32 = 0x4;
    /// Read/write: bit 0 enable, bit 1 irq enable, bit 2 auto-reload.
    pub const CTRL: u32 = 0x8;
    /// Write: any value acknowledges (clears) a pending interrupt.
    pub const ACK: u32 = 0xC;
}

/// A countdown timer raising an interrupt at zero.
#[derive(Debug, Default)]
pub struct Timer {
    load: u32,
    value: u32,
    enabled: bool,
    irq_enable: bool,
    auto_reload: bool,
    irq: bool,
}

impl Timer {
    /// Creates a stopped timer.
    #[must_use]
    pub fn new() -> Self {
        Timer::default()
    }
}

impl BusSlave for Timer {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        "timer"
    }

    fn read(&mut self, offset: u32) -> u32 {
        match offset {
            timer_regs::LOAD => self.load,
            timer_regs::VALUE => self.value,
            timer_regs::CTRL => {
                u32::from(self.enabled)
                    | (u32::from(self.irq_enable) << 1)
                    | (u32::from(self.auto_reload) << 2)
            }
            _ => 0,
        }
    }

    fn write(&mut self, offset: u32, value: u32) {
        match offset {
            timer_regs::LOAD => {
                self.load = value;
                self.value = value;
            }
            timer_regs::CTRL => {
                self.enabled = value & 1 == 1;
                self.irq_enable = value & 2 == 2;
                self.auto_reload = value & 4 == 4;
            }
            timer_regs::ACK => self.irq = false,
            _ => {}
        }
    }

    fn tick(&mut self) {
        if self.enabled && self.value > 0 {
            self.value -= 1;
            if self.value == 0 {
                self.irq = true;
                if self.auto_reload {
                    self.value = self.load;
                }
            }
        }
    }

    fn irq_pending(&self) -> bool {
        self.irq_enable && self.irq
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.u32(self.load);
        w.u32(self.value);
        w.bool(self.enabled);
        w.bool(self.irq_enable);
        w.bool(self.auto_reload);
        w.bool(self.irq);
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), RtlError> {
        self.load = r.u32()?;
        self.value = r.u32()?;
        self.enabled = r.bool()?;
        self.irq_enable = r.bool()?;
        self.auto_reload = r.bool()?;
        self.irq = r.bool()?;
        Ok(())
    }
}

/// GPIO register offsets.
pub mod gpio_regs {
    /// Read/write: output pin latch.
    pub const OUT: u32 = 0x0;
    /// Read: input pin state.
    pub const IN: u32 = 0x4;
}

/// A 32-pin general-purpose I/O block.
#[derive(Debug, Default)]
pub struct Gpio {
    out: u32,
    pins_in: u32,
}

impl Gpio {
    /// Creates a GPIO block with all pins low.
    #[must_use]
    pub fn new() -> Self {
        Gpio::default()
    }

    /// Drives the external input pins (test bench side).
    pub fn set_pins(&mut self, pins: u32) {
        self.pins_in = pins;
    }

    /// The current output latch (test bench side).
    #[must_use]
    pub fn out_pins(&self) -> u32 {
        self.out
    }
}

impl BusSlave for Gpio {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        "gpio"
    }

    fn read(&mut self, offset: u32) -> u32 {
        match offset {
            gpio_regs::OUT => self.out,
            gpio_regs::IN => self.pins_in,
            _ => 0,
        }
    }

    fn write(&mut self, offset: u32, value: u32) {
        if offset == gpio_regs::OUT {
            self.out = value;
        }
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.u32(self.out);
        w.u32(self.pins_in);
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), RtlError> {
        self.out = r.u32()?;
        self.pins_in = r.u32()?;
        Ok(())
    }
}

/// Co-processor port register offsets.
pub mod coproc_regs {
    /// Write: operand registers start here, one 32-bit word each.
    pub const INPUT_BASE: u32 = 0x000;
    /// Write: any value starts the FSMD on the latched operands.
    pub const START: u32 = 0x100;
    /// Read: bit 0 = done.
    pub const STATUS: u32 = 0x104;
    /// Read/write: bit 0 enables the done interrupt.
    pub const IRQ_ENABLE: u32 = 0x108;
    /// Read: result registers start here, one 32-bit word each.
    pub const OUTPUT_BASE: u32 = 0x200;
}

/// A memory-mapped co-processor: an [`FsmdSim`] behind operand/result
/// registers and a start/done handshake — the paper's Figure 8
/// "instruction set processor with a custom co-processor" attachment.
///
/// Operands are 32-bit on the bus and sign-extended into the 64-bit
/// datapath; results are truncated to 32 bits.
#[derive(Debug)]
pub struct CoprocessorPort {
    sim: FsmdSim,
    operands: Vec<i64>,
    irq_enable: bool,
    started: bool,
}

impl CoprocessorPort {
    /// Wraps a synthesized FSMD as a bus device.
    #[must_use]
    pub fn new(sim: FsmdSim) -> Self {
        let n = sim.fsmd().input_count() as usize;
        CoprocessorPort {
            sim,
            operands: vec![0; n],
            irq_enable: false,
            started: false,
        }
    }

    /// Access to the wrapped simulator (e.g. for cycle counts).
    #[must_use]
    pub fn sim(&self) -> &FsmdSim {
        &self.sim
    }
}

impl BusSlave for CoprocessorPort {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        "coproc"
    }

    fn read(&mut self, offset: u32) -> u32 {
        match offset {
            coproc_regs::STATUS => u32::from(self.started && self.sim.status() == FsmdStatus::Done),
            coproc_regs::IRQ_ENABLE => u32::from(self.irq_enable),
            o if o >= coproc_regs::OUTPUT_BASE => {
                let idx = ((o - coproc_regs::OUTPUT_BASE) / 4) as usize;
                self.sim.outputs().get(idx).map_or(0, |&v| v as u32)
            }
            o if o < coproc_regs::START => {
                let idx = (o / 4) as usize;
                self.operands.get(idx).map_or(0, |&v| v as u32)
            }
            _ => 0,
        }
    }

    fn write(&mut self, offset: u32, value: u32) {
        match offset {
            coproc_regs::START => {
                self.sim.start(&self.operands.clone());
                self.started = true;
            }
            coproc_regs::IRQ_ENABLE => self.irq_enable = value & 1 == 1,
            o if o < coproc_regs::START => {
                let idx = (o / 4) as usize;
                if idx < self.operands.len() {
                    self.operands[idx] = i64::from(value as i32);
                }
            }
            _ => {}
        }
    }

    fn tick(&mut self) {
        self.sim.tick();
    }

    fn irq_pending(&self) -> bool {
        self.irq_enable && self.started && self.sim.status() == FsmdStatus::Done
    }

    fn save_state(&self, w: &mut StateWriter) {
        self.sim.save_state(w);
        w.seq(self.operands.len());
        for &v in &self.operands {
            w.i64(v);
        }
        w.bool(self.irq_enable);
        w.bool(self.started);
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), RtlError> {
        self.sim.restore_state(r)?;
        let n = r.seq(Some(self.operands.len()))?;
        for i in 0..n {
            self.operands[i] = r.i64()?;
        }
        self.irq_enable = r.bool()?;
        self.started = r.bool()?;
        Ok(())
    }
}

/// FIFO register offsets.
pub mod fifo_regs {
    /// Write: push one word. Read: pop one word.
    pub const DATA: u32 = 0x0;
    /// Read: current occupancy in words.
    pub const COUNT: u32 = 0x4;
}

/// A hardware FIFO that drains itself: a consumer engine pops one word
/// every `drain_period` cycles. Its wait states grow with occupancy, so
/// pin-level simulation sees congestion that transaction-level
/// simulation's fixed timing cannot.
#[derive(Debug)]
pub struct DrainFifo {
    queue: std::collections::VecDeque<u32>,
    capacity: usize,
    drain_period: u64,
    countdown: u64,
    drained: u64,
}

impl DrainFifo {
    /// Creates a FIFO of `capacity` words draining one word every
    /// `drain_period` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `drain_period == 0`.
    #[must_use]
    pub fn new(capacity: usize, drain_period: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(drain_period > 0, "drain period must be positive");
        DrainFifo {
            queue: std::collections::VecDeque::new(),
            capacity,
            drain_period,
            countdown: drain_period,
            drained: 0,
        }
    }

    /// Words consumed by the drain engine so far.
    #[must_use]
    pub fn drained(&self) -> u64 {
        self.drained
    }

    /// Current occupancy in words.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.queue.len()
    }

    /// Exact cycles until the FIFO finishes draining its current
    /// contents, assuming no further pushes: the in-flight countdown to
    /// the next pop plus one full period per remaining word.
    ///
    /// This is the tail-drain model the abstraction ladder uses after
    /// the producer halts. The naive `occupancy * drain_period` estimate
    /// ignores the countdown already elapsed toward the next pop, and so
    /// overestimates the tail by up to `drain_period - 1` cycles — a
    /// divergence the conformance harness caught against tick-level
    /// ground truth.
    #[must_use]
    pub fn cycles_to_drain(&self) -> u64 {
        match self.queue.len() {
            0 => 0,
            n => self.countdown + (n as u64 - 1) * self.drain_period,
        }
    }
}

impl BusSlave for DrainFifo {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        "fifo"
    }

    fn read(&mut self, offset: u32) -> u32 {
        match offset {
            fifo_regs::DATA => self.queue.pop_front().unwrap_or(0),
            fifo_regs::COUNT => self.queue.len() as u32,
            _ => 0,
        }
    }

    fn write(&mut self, offset: u32, value: u32) {
        if offset == fifo_regs::DATA && self.queue.len() < self.capacity {
            self.queue.push_back(value);
        }
    }

    fn tick(&mut self) {
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = self.drain_period;
            if self.queue.pop_front().is_some() {
                self.drained += 1;
            }
        }
    }

    fn wait_states(&self) -> u64 {
        // Congestion-dependent ready delay.
        let fill = self.queue.len() * 4 / self.capacity.max(1);
        match fill {
            0 | 1 => 0,
            2 => 1,
            _ => 3,
        }
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.seq(self.queue.len());
        for &word in &self.queue {
            w.u32(word);
        }
        w.u64(self.countdown);
        w.u64(self.drained);
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), RtlError> {
        let n = r.seq(None)?;
        self.queue.clear();
        for _ in 0..n {
            self.queue.push_back(r.u32()?);
        }
        self.countdown = r.u64()?;
        self.drained = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsmd::{Fsmd, MicroOp, Next, Operand, RegId, State};
    use codesign_ir::cdfg::OpKind;

    fn bus_with_ram() -> SystemBus {
        let mut bus = SystemBus::new(BusTiming::default());
        bus.map(0x0000, 0x1000, Box::new(Ram::new("ram", 0x1000)))
            .unwrap();
        bus
    }

    #[test]
    fn ram_read_write_roundtrip() {
        let mut bus = bus_with_ram();
        bus.write(0x10, 0xDEADBEEF).unwrap();
        let (v, cycles) = bus.read(0x10).unwrap();
        assert_eq!(v, 0xDEADBEEF);
        assert_eq!(cycles, BusTiming::default().transaction_cycles());
    }

    #[test]
    fn unmapped_address_faults() {
        let mut bus = bus_with_ram();
        assert_eq!(
            bus.read(0x9999_0000),
            Err(RtlError::BusFault { addr: 0x9999_0000 })
        );
    }

    #[test]
    fn overlapping_mapping_rejected() {
        let mut bus = bus_with_ram();
        let err = bus
            .map(0x0800, 0x1000, Box::new(Ram::new("ram2", 16)))
            .unwrap_err();
        // The error names both devices and both ranges — enough to fix
        // the address map without a debugger.
        assert_eq!(
            err,
            RtlError::MapOverlap {
                device: "ram2".to_string(),
                base: 0x0800,
                size: 0x1000,
                conflict: "overlaps ram at [0x00000000, 0x00001000)".to_string(),
            }
        );
        assert_eq!(
            err.to_string(),
            "cannot map ram2 at [0x00000800, 0x00001800): \
             overlaps ram at [0x00000000, 0x00001000)"
        );
        // Adjacent is fine.
        bus.map(0x1000, 0x100, Box::new(Ram::new("ram3", 16)))
            .unwrap();
    }

    #[test]
    fn wrapping_mapping_rejected() {
        let mut bus = SystemBus::new(BusTiming::default());
        let err = bus
            .map(0xFFFF_FF00, 0x1000, Box::new(Ram::new("high", 16)))
            .unwrap_err();
        assert!(matches!(err, RtlError::MapOverlap { .. }));
        assert!(err.to_string().contains("wraps"), "{err}");
    }

    #[test]
    fn stats_accumulate() {
        let mut bus = bus_with_ram();
        bus.write(0, 1).unwrap();
        bus.write(4, 2).unwrap();
        bus.read(0).unwrap();
        let s = bus.stats();
        assert_eq!((s.reads, s.writes), (1, 2));
        assert_eq!(s.busy_cycles, 3 * BusTiming::default().transaction_cycles());
    }

    #[test]
    fn uart_transmits_and_receives() {
        let mut bus = SystemBus::new(BusTiming::default());
        let mut uart = Uart::new();
        uart.inject_rx(b'!');
        bus.map(0x100, 0x10, Box::new(uart)).unwrap();

        bus.write(0x100 + uart_regs::TX, u32::from(b'h')).unwrap();
        bus.write(0x100 + uart_regs::TX, u32::from(b'i')).unwrap();
        let (status, _) = bus.read(0x100 + uart_regs::STATUS).unwrap();
        assert_eq!(status & 0b11, 0b11, "tx ready and rx available");
        let (rx, _) = bus.read(0x100 + uart_regs::RX).unwrap();
        assert_eq!(rx, u32::from(b'!'));
        let (status, _) = bus.read(0x100 + uart_regs::STATUS).unwrap();
        assert_eq!(status & 0b10, 0, "rx drained");
    }

    #[test]
    fn uart_irq_gated_by_enable() {
        let mut bus = SystemBus::new(BusTiming::default());
        let mut uart = Uart::new();
        uart.inject_rx(7);
        bus.map(0x0, 0x10, Box::new(uart)).unwrap();
        assert!(!bus.irq_pending(), "irq disabled by default");
        bus.write(uart_regs::IRQ_ENABLE, 1).unwrap();
        assert!(bus.irq_pending());
        bus.read(uart_regs::RX).unwrap();
        assert!(!bus.irq_pending(), "queue drained");
    }

    #[test]
    fn uart_rx_overflow_drops_bytes_and_latches_overrun() {
        let mut uart = Uart::new();
        for b in 0..=Uart::RX_CAPACITY {
            uart.inject_rx(b as u8);
        }
        assert!(uart.overrun(), "17th byte into a 16-deep FIFO is lost");
        let status = uart.read(uart_regs::STATUS);
        assert_eq!(status & 0b111, 0b111, "tx ready, rx avail, overrun");
        // Read-to-clear: the sticky bit reports once per read.
        assert_eq!(uart.read(uart_regs::STATUS) & 0b100, 0);
        // The FIFO kept the oldest RX_CAPACITY bytes intact.
        for b in 0..Uart::RX_CAPACITY {
            assert_eq!(uart.read(uart_regs::RX), b as u32);
        }
        assert_eq!(uart.read(uart_regs::STATUS) & 0b10, 0, "drained");
        // With space available again, injection resumes normally.
        uart.inject_rx(0xAB);
        assert_eq!(uart.read(uart_regs::RX), 0xAB);
        assert_eq!(uart.read(uart_regs::STATUS) & 0b100, 0, "no new overrun");
    }

    #[test]
    fn timer_counts_down_and_interrupts() {
        let mut bus = SystemBus::new(BusTiming::default());
        bus.map(0x0, 0x10, Box::new(Timer::new())).unwrap();
        bus.write(timer_regs::LOAD, 5).unwrap();
        bus.write(timer_regs::CTRL, 0b111).unwrap(); // enable, irq, reload
        bus.tick(4);
        assert!(!bus.irq_pending());
        bus.tick(1);
        assert!(bus.irq_pending());
        let (v, _) = bus.read(timer_regs::VALUE).unwrap();
        assert_eq!(v, 5, "auto reloaded");
        bus.write(timer_regs::ACK, 1).unwrap();
        assert!(!bus.irq_pending());
    }

    #[test]
    fn timer_zero_period_never_fires() {
        // LOAD = 0 is a configuration corner: the countdown has nothing
        // to count, so enabling the timer must not wedge it at "always
        // about to fire" or spin the IRQ line.
        let mut timer = Timer::new();
        timer.write(timer_regs::LOAD, 0);
        timer.write(timer_regs::CTRL, 0b111); // enable, irq, auto-reload
        for _ in 0..100 {
            timer.tick();
        }
        assert!(!timer.irq_pending(), "zero-period timer stays silent");
        assert_eq!(timer.read(timer_regs::VALUE), 0);
    }

    #[test]
    fn timer_ack_race_with_auto_reload_keeps_future_irqs() {
        // The classic ack race: software acknowledges the pending IRQ
        // while the auto-reloaded countdown is already running again. The
        // ack must clear only the *current* pending flag — the next
        // zero-crossing must still raise a fresh interrupt.
        let mut timer = Timer::new();
        timer.write(timer_regs::LOAD, 3);
        timer.write(timer_regs::CTRL, 0b111);
        for _ in 0..3 {
            timer.tick();
        }
        assert!(timer.irq_pending(), "first expiry");
        // Countdown reloaded and already past one cycle when the ack
        // lands.
        timer.tick();
        timer.write(timer_regs::ACK, 1);
        assert!(!timer.irq_pending(), "ack clears the pending flag");
        for _ in 0..2 {
            timer.tick();
        }
        assert!(timer.irq_pending(), "next expiry still fires");
    }

    #[test]
    fn timer_pending_irq_survives_until_acked() {
        // Without an ack, the flag stays latched across further ticks —
        // a level interrupt, not a pulse.
        let mut timer = Timer::new();
        timer.write(timer_regs::LOAD, 2);
        timer.write(timer_regs::CTRL, 0b111);
        for _ in 0..20 {
            timer.tick();
        }
        assert!(timer.irq_pending());
        timer.write(timer_regs::ACK, 0xFFFF);
        assert!(!timer.irq_pending());
    }

    #[test]
    fn gpio_latches_output() {
        let mut bus = SystemBus::new(BusTiming::default());
        let mut gpio = Gpio::new();
        gpio.set_pins(0xA5);
        bus.map(0x0, 0x10, Box::new(gpio)).unwrap();
        let (pins, _) = bus.read(gpio_regs::IN).unwrap();
        assert_eq!(pins, 0xA5);
        bus.write(gpio_regs::OUT, 0x3C).unwrap();
        let (out, _) = bus.read(gpio_regs::OUT).unwrap();
        assert_eq!(out, 0x3C);
    }

    fn adder_fsmd() -> FsmdSim {
        let mut f = Fsmd::new("adder", 1, 2, vec![RegId(0)]);
        f.add_state(State {
            ops: vec![MicroOp {
                dst: RegId(0),
                op: OpKind::Add,
                args: vec![Operand::Input(0), Operand::Input(1)],
            }],
            next: Next::Done,
        })
        .unwrap();
        FsmdSim::new(f).unwrap()
    }

    #[test]
    fn coprocessor_handshake_over_bus() {
        let mut bus = SystemBus::new(BusTiming::default());
        bus.map(0x8000, 0x1000, Box::new(CoprocessorPort::new(adder_fsmd())))
            .unwrap();
        // Write operands, start, poll, read result: the exact driver
        // sequence interface synthesis generates.
        bus.write(0x8000 + coproc_regs::INPUT_BASE, 33).unwrap();
        bus.write(0x8000 + coproc_regs::INPUT_BASE + 4, 9).unwrap();
        bus.write(0x8000 + coproc_regs::START, 1).unwrap();
        let (status, _) = bus.read(0x8000 + coproc_regs::STATUS).unwrap();
        assert_eq!(status, 0, "not done before any cycle elapses");
        bus.tick(1);
        let (status, _) = bus.read(0x8000 + coproc_regs::STATUS).unwrap();
        assert_eq!(status, 1);
        let (result, _) = bus.read(0x8000 + coproc_regs::OUTPUT_BASE).unwrap();
        assert_eq!(result, 42);
    }

    #[test]
    fn coprocessor_irq_on_done() {
        let mut bus = SystemBus::new(BusTiming::default());
        bus.map(0x0, 0x1000, Box::new(CoprocessorPort::new(adder_fsmd())))
            .unwrap();
        bus.write(coproc_regs::IRQ_ENABLE, 1).unwrap();
        assert!(!bus.irq_pending(), "not started yet");
        bus.write(coproc_regs::START, 1).unwrap();
        bus.tick(1);
        assert!(bus.irq_pending());
    }

    #[test]
    fn coprocessor_sign_extends_operands() {
        let mut bus = SystemBus::new(BusTiming::default());
        bus.map(0x0, 0x1000, Box::new(CoprocessorPort::new(adder_fsmd())))
            .unwrap();
        bus.write(coproc_regs::INPUT_BASE, (-5i32) as u32).unwrap();
        bus.write(coproc_regs::INPUT_BASE + 4, 3).unwrap();
        bus.write(coproc_regs::START, 1).unwrap();
        bus.tick(1);
        let (result, _) = bus.read(coproc_regs::OUTPUT_BASE).unwrap();
        assert_eq!(result as i32, -2);
    }

    #[test]
    fn address_map_reports_devices() {
        let mut bus = bus_with_ram();
        bus.map(0x2000, 0x10, Box::new(Uart::new())).unwrap();
        let map = bus.address_map();
        assert_eq!(map.len(), 2);
        assert_eq!(map[1], ("uart".to_string(), 0x2000, 0x10));
    }

    #[test]
    fn drain_fifo_consumes_over_time() {
        let mut bus = SystemBus::new(BusTiming::default());
        bus.map(0x0, 0x10, Box::new(DrainFifo::new(8, 10))).unwrap();
        for v in 0..4 {
            bus.write(fifo_regs::DATA, v).unwrap();
        }
        let (count, _) = bus.read(fifo_regs::COUNT).unwrap();
        assert_eq!(count, 4);
        bus.tick(40);
        let (count, _) = bus.read(fifo_regs::COUNT).unwrap();
        assert_eq!(count, 0);
    }

    #[test]
    fn drain_fifo_wait_states_grow_with_occupancy() {
        let mut fifo = DrainFifo::new(8, 1_000_000);
        assert_eq!(fifo.wait_states(), 0);
        for v in 0..8 {
            fifo.write(fifo_regs::DATA, v);
        }
        assert_eq!(fifo.wait_states(), 3);
    }

    #[test]
    fn drain_fifo_rejects_overflow_writes() {
        let mut fifo = DrainFifo::new(2, 1_000_000);
        for v in 0..5 {
            fifo.write(fifo_regs::DATA, v);
        }
        assert_eq!(fifo.occupancy(), 2);
    }

    #[test]
    fn cycles_to_drain_matches_tick_level_ground_truth() {
        // Regression (conformance harness): the tail-drain estimate must
        // equal the exact number of ticks until the FIFO empties, for
        // any in-flight countdown state — `occupancy * drain_period`
        // does not.
        for pre_ticks in 0..12u64 {
            let mut fifo = DrainFifo::new(8, 5);
            for v in 0..4 {
                fifo.write(fifo_regs::DATA, v);
            }
            for _ in 0..pre_ticks {
                fifo.tick();
            }
            let predicted = fifo.cycles_to_drain();
            let mut actual = 0u64;
            while fifo.occupancy() > 0 {
                fifo.tick();
                actual += 1;
            }
            assert_eq!(predicted, actual, "after {pre_ticks} pre-ticks");
        }
        assert_eq!(DrainFifo::new(4, 7).cycles_to_drain(), 0, "empty fifo");
    }

    #[test]
    fn device_accesses_track_counts_and_write_order() {
        let mut bus = SystemBus::new(BusTiming::default());
        bus.map(0x000, 0x100, Box::new(DrainFifo::new(8, 1_000)))
            .unwrap();
        bus.map(0x100, 0x100, Box::new(DrainFifo::new(8, 1_000)))
            .unwrap();
        // Write fifo B last, read fifo A twice.
        bus.write(fifo_regs::DATA, 1).unwrap();
        bus.write(0x100 + fifo_regs::DATA, 2).unwrap();
        bus.read(fifo_regs::COUNT).unwrap();
        bus.read(fifo_regs::COUNT).unwrap();
        let acc = bus.device_accesses();
        assert_eq!(acc.len(), 2);
        assert_eq!((acc[0].reads, acc[0].writes), (2, 1));
        assert_eq!((acc[1].reads, acc[1].writes), (0, 1));
        assert!(
            acc[1].last_write_seq > acc[0].last_write_seq,
            "fifo B written after fifo A"
        );
        // Inspection is non-perturbing.
        let again = bus.device_accesses();
        assert_eq!(acc, again);
        assert_eq!(bus.stats().reads, 2);
    }

    #[test]
    fn device_at_selects_by_base() {
        let mut bus = SystemBus::new(BusTiming::default());
        bus.map(0x000, 0x100, Box::new(DrainFifo::new(8, 1_000)))
            .unwrap();
        bus.map(0x100, 0x100, Box::new(DrainFifo::new(8, 1_000)))
            .unwrap();
        bus.write(0x100 + fifo_regs::DATA, 42).unwrap();
        assert_eq!(bus.device_at::<DrainFifo>(0x000).unwrap().occupancy(), 0);
        assert_eq!(bus.device_at::<DrainFifo>(0x100).unwrap().occupancy(), 1);
        assert!(bus.device_at::<DrainFifo>(0x200).is_none());
        bus.device_at_mut::<DrainFifo>(0x100).unwrap().tick();
    }

    #[test]
    fn traced_bus_behaves_identically() {
        let run = |tracer: Option<&Tracer>| {
            let mut bus = SystemBus::new(BusTiming::default());
            if let Some(t) = tracer {
                bus.set_tracer(t, "bus");
            }
            bus.map(0x0, 0x10, Box::new(DrainFifo::new(8, 10))).unwrap();
            for v in 0..4 {
                bus.write(fifo_regs::DATA, v).unwrap();
            }
            bus.tick(20);
            let (count, _) = bus.read(fifo_regs::COUNT).unwrap();
            (count, bus.stats())
        };
        let plain = run(None);
        let tracer = Tracer::on();
        let traced = run(Some(&tracer));
        assert_eq!(plain, traced);
        // 5 transactions, each a span; the 4 FIFO data writes and the
        // count read also emit an occupancy counter.
        assert_eq!(tracer.event_count(), 10);
        codesign_trace::validate_chrome_trace(&tracer.to_chrome_json()).unwrap();
    }

    #[derive(Debug)]
    struct CountingPhy {
        events: u64,
    }

    impl BusPhy for CountingPhy {
        fn transaction(&mut self, _addr: u32, _write: bool, _value: u32, waits: u64) -> u64 {
            self.events += 10;
            5 + waits
        }
        fn events(&self) -> u64 {
            self.events
        }
    }

    #[test]
    fn phy_overrides_transaction_timing() {
        let mut bus = SystemBus::new(BusTiming::default());
        bus.map(0x0, 0x10, Box::new(DrainFifo::new(4, 1_000_000)))
            .unwrap();
        bus.set_phy(Box::new(CountingPhy { events: 0 }));
        // Fill to trigger wait states visible only through the phy.
        for v in 0..3 {
            bus.write(fifo_regs::DATA, v).unwrap();
        }
        let cycles = bus.write(fifo_regs::DATA, 99).unwrap();
        assert!(cycles > 5, "wait states included: {cycles}");
        assert_eq!(bus.phy_events(), 40);
    }
}
