//! Finite-state-machine-with-datapath (FSMD) models.
//!
//! An [`Fsmd`] is the canonical product of behavioral synthesis: a
//! controller (the state table) driving a datapath (registers and
//! functional units executing register transfers). `codesign-hls` compiles
//! CDFG kernels into this form; [`FsmdSim`] executes it cycle-accurately
//! with a start/done handshake, so a synthesized co-processor can be
//! mounted on the system bus next to the instruction-set processor —
//! the paper's Type II configuration (Figure 8).
//!
//! Register-transfer semantics are synchronous: all micro-operations of a
//! state read the *old* register values and their writes become visible
//! together at the next clock edge.

use serde::{Deserialize, Serialize};

use codesign_ir::cdfg::OpKind;

use crate::error::RtlError;

/// Identifier of a datapath register within one [`Fsmd`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegId(pub u32);

impl RegId {
    /// Returns the dense index of this register.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a controller state within one [`Fsmd`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StateId(pub u32);

impl StateId {
    /// Returns the dense index of this state.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A micro-operation operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Operand {
    /// A datapath register.
    Reg(RegId),
    /// An immediate constant.
    Const(i64),
    /// An external input port, latched when the FSMD is started.
    Input(u16),
}

/// One register transfer: `dst <- op(args…)`, executed in a single state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroOp {
    /// Destination register.
    pub dst: RegId,
    /// Operation; must be a computational [`OpKind`] (not
    /// `Input`/`Const`/`Output`, which are represented by [`Operand`]s).
    pub op: OpKind,
    /// Operands, matching [`OpKind::arity`].
    pub args: Vec<Operand>,
}

/// Controller transition out of a state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Next {
    /// Fall through to the next state in index order.
    Step,
    /// Jump to a specific state.
    Goto(StateId),
    /// Two-way branch on a register being zero.
    BranchZero {
        /// Register tested against zero.
        reg: RegId,
        /// Target when the register is zero.
        then_state: StateId,
        /// Target otherwise.
        else_state: StateId,
    },
    /// Assert `done`; outputs are valid.
    Done,
}

/// One controller state: the register transfers it performs and where it
/// goes next.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct State {
    /// Register transfers executed in parallel in this state.
    pub ops: Vec<MicroOp>,
    /// Controller transition.
    pub next: Next,
}

/// A complete FSMD: controller state table plus datapath shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fsmd {
    name: String,
    registers: u32,
    inputs: u16,
    output_regs: Vec<RegId>,
    states: Vec<State>,
}

impl Fsmd {
    /// Creates an FSMD with the given datapath shape. States are appended
    /// with [`Fsmd::add_state`]; execution starts at state 0.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        registers: u32,
        inputs: u16,
        output_regs: Vec<RegId>,
    ) -> Self {
        Fsmd {
            name: name.into(),
            registers,
            inputs,
            output_regs,
            states: Vec::new(),
        }
    }

    /// FSMD name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of datapath registers.
    #[must_use]
    pub fn register_count(&self) -> u32 {
        self.registers
    }

    /// Number of input ports.
    #[must_use]
    pub fn input_count(&self) -> u16 {
        self.inputs
    }

    /// Registers presented as outputs when `done` is asserted.
    #[must_use]
    pub fn output_regs(&self) -> &[RegId] {
        &self.output_regs
    }

    /// Number of controller states.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// All states in index order.
    #[must_use]
    pub fn states(&self) -> &[State] {
        &self.states
    }

    /// Appends a state and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::FsmdBounds`] if a micro-op references a register
    /// or input out of range, or uses a non-computational [`OpKind`]
    /// (reported as an out-of-range `"opcode"`), or has the wrong operand
    /// count.
    pub fn add_state(&mut self, state: State) -> Result<StateId, RtlError> {
        for op in &state.ops {
            match op.op {
                OpKind::Input(_) | OpKind::Const(_) | OpKind::Output(_) => {
                    return Err(RtlError::FsmdBounds {
                        what: "opcode",
                        index: op.dst.index(),
                    })
                }
                _ => {}
            }
            if op.args.len() != op.op.arity() {
                return Err(RtlError::FsmdBounds {
                    what: "operand count",
                    index: op.args.len(),
                });
            }
            if op.dst.0 >= self.registers {
                return Err(RtlError::FsmdBounds {
                    what: "register",
                    index: op.dst.index(),
                });
            }
            for a in &op.args {
                match *a {
                    Operand::Reg(r) if r.0 >= self.registers => {
                        return Err(RtlError::FsmdBounds {
                            what: "register",
                            index: r.index(),
                        })
                    }
                    Operand::Input(i) if i >= self.inputs => {
                        return Err(RtlError::FsmdBounds {
                            what: "input",
                            index: i as usize,
                        })
                    }
                    _ => {}
                }
            }
        }
        let id = StateId(self.states.len() as u32);
        self.states.push(state);
        Ok(id)
    }

    /// Validates that every transition target exists and output registers
    /// are in range.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::FsmdBounds`] naming the offending reference.
    pub fn validate(&self) -> Result<(), RtlError> {
        for r in &self.output_regs {
            if r.0 >= self.registers {
                return Err(RtlError::FsmdBounds {
                    what: "register",
                    index: r.index(),
                });
            }
        }
        for (i, s) in self.states.iter().enumerate() {
            let targets: Vec<usize> = match s.next {
                Next::Step => vec![i + 1],
                Next::Goto(t) => vec![t.index()],
                Next::BranchZero {
                    then_state,
                    else_state,
                    reg,
                } => {
                    if reg.0 >= self.registers {
                        return Err(RtlError::FsmdBounds {
                            what: "register",
                            index: reg.index(),
                        });
                    }
                    vec![then_state.index(), else_state.index()]
                }
                Next::Done => vec![],
            };
            for t in targets {
                if t >= self.states.len() {
                    return Err(RtlError::FsmdBounds {
                        what: "state",
                        index: t,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Execution status of an [`FsmdSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsmdStatus {
    /// Waiting for [`FsmdSim::start`].
    Idle,
    /// Executing; `tick` advances one state per cycle.
    Running,
    /// `done` asserted; outputs valid.
    Done,
}

/// Cycle-accurate FSMD interpreter with a start/done handshake.
#[derive(Debug, Clone)]
pub struct FsmdSim {
    fsmd: Fsmd,
    regs: Vec<i64>,
    inputs: Vec<i64>,
    state: StateId,
    status: FsmdStatus,
    cycles: u64,
    /// Reusable write buffer for [`FsmdSim::tick`], so the per-cycle
    /// register-transfer staging does not allocate.
    scratch: Vec<(RegId, i64)>,
}

impl FsmdSim {
    /// Creates an idle simulator for a validated FSMD.
    ///
    /// # Errors
    ///
    /// Propagates [`Fsmd::validate`] failures.
    pub fn new(fsmd: Fsmd) -> Result<Self, RtlError> {
        fsmd.validate()?;
        let regs = vec![0; fsmd.register_count() as usize];
        let inputs = vec![0; fsmd.input_count() as usize];
        Ok(FsmdSim {
            fsmd,
            regs,
            inputs,
            state: StateId(0),
            status: FsmdStatus::Idle,
            cycles: 0,
            scratch: Vec::new(),
        })
    }

    /// The underlying FSMD.
    #[must_use]
    pub fn fsmd(&self) -> &Fsmd {
        &self.fsmd
    }

    /// Current status.
    #[must_use]
    pub fn status(&self) -> FsmdStatus {
        self.status
    }

    /// Cycles executed since the last [`FsmdSim::start`].
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The controller state about to execute (meaningful while running).
    #[must_use]
    pub fn current_state(&self) -> StateId {
        self.state
    }

    /// Current value of a datapath register (for controller/datapath
    /// co-verification and waveform-style debugging).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range for this FSMD.
    #[must_use]
    pub fn reg(&self, r: RegId) -> i64 {
        self.regs[r.index()]
    }

    /// Latches the inputs, clears the registers, and begins execution at
    /// state 0 on the next [`FsmdSim::tick`]. An FSMD with no states
    /// completes immediately.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not match the FSMD's input port count.
    pub fn start(&mut self, inputs: &[i64]) {
        assert_eq!(
            inputs.len(),
            self.fsmd.input_count() as usize,
            "input port count mismatch"
        );
        self.inputs.copy_from_slice(inputs);
        self.regs.fill(0);
        self.state = StateId(0);
        self.cycles = 0;
        self.status = if self.fsmd.state_count() == 0 {
            FsmdStatus::Done
        } else {
            FsmdStatus::Running
        };
    }

    /// Serializes the mutable execution state (registers, latched
    /// inputs, controller state, status, cycle count). The FSMD
    /// structure itself is static and not written.
    pub fn save_state(&self, w: &mut crate::state::StateWriter) {
        w.seq(self.regs.len());
        for &v in &self.regs {
            w.i64(v);
        }
        w.seq(self.inputs.len());
        for &v in &self.inputs {
            w.i64(v);
        }
        w.u32(self.state.0);
        w.u8(match self.status {
            FsmdStatus::Idle => 0,
            FsmdStatus::Running => 1,
            FsmdStatus::Done => 2,
        });
        w.u64(self.cycles);
    }

    /// Restores state captured by [`FsmdSim::save_state`] into a
    /// simulator over the same FSMD.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::State`] on truncation or a register/input
    /// count mismatch.
    pub fn restore_state(&mut self, r: &mut crate::state::StateReader<'_>) -> Result<(), RtlError> {
        let n = r.seq(Some(self.regs.len()))?;
        for i in 0..n {
            self.regs[i] = r.i64()?;
        }
        let n = r.seq(Some(self.inputs.len()))?;
        for i in 0..n {
            self.inputs[i] = r.i64()?;
        }
        self.state = StateId(r.u32()?);
        self.status = match r.u8()? {
            0 => FsmdStatus::Idle,
            1 => FsmdStatus::Running,
            2 => FsmdStatus::Done,
            other => {
                return Err(RtlError::State {
                    reason: format!("unknown fsmd status tag {other}"),
                })
            }
        };
        self.cycles = r.u64()?;
        Ok(())
    }

    fn read(&self, operand: Operand) -> i64 {
        match operand {
            Operand::Reg(r) => self.regs[r.index()],
            Operand::Const(c) => c,
            Operand::Input(i) => self.inputs[i as usize],
        }
    }

    /// Advances one clock cycle. Has no effect when idle or done.
    pub fn tick(&mut self) {
        if self.status != FsmdStatus::Running {
            return;
        }
        self.cycles += 1;
        // Take the scratch buffer so ops can read `self` while staging
        // into it; capacity is reused across ticks (no allocation on the
        // co-simulation hot path).
        let mut writes = std::mem::take(&mut self.scratch);
        writes.clear();
        let state = &self.fsmd.states[self.state.index()];
        // Synchronous register-transfer: reads see pre-edge values.
        writes.extend(state.ops.iter().map(|op| {
            let a = |k: usize| self.read(op.args[k]);
            let v = match op.op {
                OpKind::Add => a(0).wrapping_add(a(1)),
                OpKind::Sub => a(0).wrapping_sub(a(1)),
                OpKind::Mul => a(0).wrapping_mul(a(1)),
                // Hardware dividers do not trap: x/0 = 0, x%0 = x.
                OpKind::Div => a(0).checked_div(a(1)).unwrap_or(0),
                OpKind::Rem => {
                    let d = a(1);
                    if d == 0 {
                        a(0)
                    } else {
                        a(0).wrapping_rem(d)
                    }
                }
                OpKind::And => a(0) & a(1),
                OpKind::Or => a(0) | a(1),
                OpKind::Xor => a(0) ^ a(1),
                OpKind::Not => !a(0),
                OpKind::Neg => a(0).wrapping_neg(),
                OpKind::Shl => a(0).wrapping_shl((a(1) & 0x3f) as u32),
                OpKind::Shr => a(0).wrapping_shr((a(1) & 0x3f) as u32),
                OpKind::Lt => i64::from(a(0) < a(1)),
                OpKind::Le => i64::from(a(0) <= a(1)),
                OpKind::Eq => i64::from(a(0) == a(1)),
                OpKind::Ne => i64::from(a(0) != a(1)),
                OpKind::Select => {
                    if a(0) != 0 {
                        a(1)
                    } else {
                        a(2)
                    }
                }
                OpKind::Min => a(0).min(a(1)),
                OpKind::Max => a(0).max(a(1)),
                OpKind::Abs => a(0).wrapping_abs(),
                // Input/Const/Output are rejected by add_state;
                // OpKind is non-exhaustive, so future kinds also land
                // here until they get a datapath implementation.
                _ => unreachable!("structural opcode rejected by add_state"),
            };
            (op.dst, v)
        }));
        let next = state.next;
        for &(r, v) in &writes {
            self.regs[r.index()] = v;
        }
        self.scratch = writes;
        match next {
            Next::Step => {
                let n = self.state.index() + 1;
                if n >= self.fsmd.state_count() {
                    self.status = FsmdStatus::Done;
                } else {
                    self.state = StateId(n as u32);
                }
            }
            Next::Goto(t) => self.state = t,
            Next::BranchZero {
                reg,
                then_state,
                else_state,
            } => {
                self.state = if self.regs[reg.index()] == 0 {
                    then_state
                } else {
                    else_state
                };
            }
            Next::Done => self.status = FsmdStatus::Done,
        }
    }

    /// Batched clocking: ticks up to `max_ticks` cycles while running and
    /// returns the number actually executed (short only when `done` is
    /// reached). One call replaces a per-cycle check-then-tick loop on the
    /// co-simulation hot path; has no effect when idle or done.
    pub fn run_ticks(&mut self, max_ticks: u64) -> u64 {
        let mut n = 0;
        while n < max_ticks && self.status == FsmdStatus::Running {
            self.tick();
            n += 1;
        }
        n
    }

    /// Output values; meaningful once status is [`FsmdStatus::Done`].
    #[must_use]
    pub fn outputs(&self) -> Vec<i64> {
        self.fsmd
            .output_regs()
            .iter()
            .map(|r| self.regs[r.index()])
            .collect()
    }

    /// Convenience: starts on `inputs` and ticks until done.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::FsmdTimeout`] if `done` is not reached within
    /// `max_cycles`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not match the FSMD's input port count.
    pub fn run(&mut self, inputs: &[i64], max_cycles: u64) -> Result<Vec<i64>, RtlError> {
        self.start(inputs);
        self.run_ticks(max_cycles);
        if self.status == FsmdStatus::Running {
            return Err(RtlError::FsmdTimeout {
                cycles: self.cycles,
            });
        }
        Ok(self.outputs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FSMD computing out = (in0 + in1) * in2 over two states.
    fn mac_fsmd() -> Fsmd {
        let mut f = Fsmd::new("mac", 2, 3, vec![RegId(1)]);
        f.add_state(State {
            ops: vec![MicroOp {
                dst: RegId(0),
                op: OpKind::Add,
                args: vec![Operand::Input(0), Operand::Input(1)],
            }],
            next: Next::Step,
        })
        .unwrap();
        f.add_state(State {
            ops: vec![MicroOp {
                dst: RegId(1),
                op: OpKind::Mul,
                args: vec![Operand::Reg(RegId(0)), Operand::Input(2)],
            }],
            next: Next::Done,
        })
        .unwrap();
        f
    }

    #[test]
    fn mac_runs_in_two_cycles() {
        let mut sim = FsmdSim::new(mac_fsmd()).unwrap();
        let out = sim.run(&[3, 4, 5], 100).unwrap();
        assert_eq!(out, vec![35]);
        assert_eq!(sim.cycles(), 2);
        assert_eq!(sim.status(), FsmdStatus::Done);
    }

    #[test]
    fn restart_clears_state() {
        let mut sim = FsmdSim::new(mac_fsmd()).unwrap();
        sim.run(&[3, 4, 5], 100).unwrap();
        let out = sim.run(&[1, 1, 10], 100).unwrap();
        assert_eq!(out, vec![20]);
    }

    #[test]
    fn register_transfers_read_pre_edge_values() {
        // Swap r0 and r1 in one state; both must read old values.
        let mut f = Fsmd::new("swap", 2, 2, vec![RegId(0), RegId(1)]);
        f.add_state(State {
            ops: vec![
                MicroOp {
                    dst: RegId(0),
                    op: OpKind::Add,
                    args: vec![Operand::Input(0), Operand::Const(0)],
                },
                MicroOp {
                    dst: RegId(1),
                    op: OpKind::Add,
                    args: vec![Operand::Input(1), Operand::Const(0)],
                },
            ],
            next: Next::Step,
        })
        .unwrap();
        f.add_state(State {
            ops: vec![
                MicroOp {
                    dst: RegId(0),
                    op: OpKind::Add,
                    args: vec![Operand::Reg(RegId(1)), Operand::Const(0)],
                },
                MicroOp {
                    dst: RegId(1),
                    op: OpKind::Add,
                    args: vec![Operand::Reg(RegId(0)), Operand::Const(0)],
                },
            ],
            next: Next::Done,
        })
        .unwrap();
        let mut sim = FsmdSim::new(f).unwrap();
        assert_eq!(sim.run(&[7, 9], 10).unwrap(), vec![9, 7]);
    }

    #[test]
    fn branch_loop_counts_down() {
        // r0 = in0; while r0 != 0 { r1 += 2; r0 -= 1 }
        let mut f = Fsmd::new("loop", 2, 1, vec![RegId(1)]);
        f.add_state(State {
            ops: vec![MicroOp {
                dst: RegId(0),
                op: OpKind::Add,
                args: vec![Operand::Input(0), Operand::Const(0)],
            }],
            next: Next::Step,
        })
        .unwrap();
        f.add_state(State {
            ops: vec![],
            next: Next::BranchZero {
                reg: RegId(0),
                then_state: StateId(3),
                else_state: StateId(2),
            },
        })
        .unwrap();
        f.add_state(State {
            ops: vec![
                MicroOp {
                    dst: RegId(1),
                    op: OpKind::Add,
                    args: vec![Operand::Reg(RegId(1)), Operand::Const(2)],
                },
                MicroOp {
                    dst: RegId(0),
                    op: OpKind::Sub,
                    args: vec![Operand::Reg(RegId(0)), Operand::Const(1)],
                },
            ],
            next: Next::Goto(StateId(1)),
        })
        .unwrap();
        f.add_state(State {
            ops: vec![],
            next: Next::Done,
        })
        .unwrap();
        let mut sim = FsmdSim::new(f).unwrap();
        assert_eq!(sim.run(&[5], 1000).unwrap(), vec![10]);
    }

    #[test]
    fn timeout_detected() {
        let mut f = Fsmd::new("hang", 1, 0, vec![]);
        f.add_state(State {
            ops: vec![],
            next: Next::Goto(StateId(0)),
        })
        .unwrap();
        let mut sim = FsmdSim::new(f).unwrap();
        assert!(matches!(
            sim.run(&[], 50),
            Err(RtlError::FsmdTimeout { cycles: 50 })
        ));
    }

    #[test]
    fn bounds_validated() {
        let mut f = Fsmd::new("bad", 1, 1, vec![]);
        // Register out of range.
        assert!(f
            .add_state(State {
                ops: vec![MicroOp {
                    dst: RegId(5),
                    op: OpKind::Add,
                    args: vec![Operand::Const(0), Operand::Const(0)],
                }],
                next: Next::Done,
            })
            .is_err());
        // Input out of range.
        assert!(f
            .add_state(State {
                ops: vec![MicroOp {
                    dst: RegId(0),
                    op: OpKind::Add,
                    args: vec![Operand::Input(3), Operand::Const(0)],
                }],
                next: Next::Done,
            })
            .is_err());
        // Wrong operand count.
        assert!(f
            .add_state(State {
                ops: vec![MicroOp {
                    dst: RegId(0),
                    op: OpKind::Add,
                    args: vec![Operand::Const(0)],
                }],
                next: Next::Done,
            })
            .is_err());
        // Structural opcodes rejected.
        assert!(f
            .add_state(State {
                ops: vec![MicroOp {
                    dst: RegId(0),
                    op: OpKind::Const(3),
                    args: vec![],
                }],
                next: Next::Done,
            })
            .is_err());
    }

    #[test]
    fn dangling_goto_caught_by_validate() {
        let mut f = Fsmd::new("bad", 1, 0, vec![]);
        f.add_state(State {
            ops: vec![],
            next: Next::Goto(StateId(9)),
        })
        .unwrap();
        assert!(matches!(
            FsmdSim::new(f),
            Err(RtlError::FsmdBounds {
                what: "state",
                index: 9
            })
        ));
    }

    #[test]
    fn hardware_division_does_not_trap() {
        let mut f = Fsmd::new("div0", 1, 2, vec![RegId(0)]);
        f.add_state(State {
            ops: vec![MicroOp {
                dst: RegId(0),
                op: OpKind::Div,
                args: vec![Operand::Input(0), Operand::Input(1)],
            }],
            next: Next::Done,
        })
        .unwrap();
        let mut sim = FsmdSim::new(f).unwrap();
        assert_eq!(sim.run(&[10, 0], 10).unwrap(), vec![0]);
    }

    #[test]
    fn empty_fsmd_completes_immediately() {
        let f = Fsmd::new("empty", 0, 0, vec![]);
        let mut sim = FsmdSim::new(f).unwrap();
        sim.start(&[]);
        assert_eq!(sim.status(), FsmdStatus::Done);
        assert!(sim.outputs().is_empty());
    }
}
