//! Field-programmable fabric model for run-time reconfigurable
//! functional units.
//!
//! The paper's Section 4.4 observes that with "field programmable hardware
//! to implement the special-purpose functional units … the HW/SW partition
//! need not be static and could be adapted on the fly to suit a wide
//! variety of circumstances" (after Athanas & Silverman's instruction-set
//! metamorphosis). This module models the two quantities that decide when
//! that adaptation pays off: the **LUT budget** of each region and the
//! **reconfiguration latency**, proportional to the bitstream size.
//!
//! Timing is expressed in absolute cycle timestamps supplied by the
//! caller, so the model composes with any of the co-simulation engines.

use serde::{Deserialize, Serialize};

use crate::error::RtlError;

/// A configuration that can be loaded into a region: a named functional
/// unit with its area and per-invocation latency.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitstream {
    /// Functional-unit name (e.g. `"fir8"`).
    pub name: String,
    /// Area in LUTs; must fit the region.
    pub luts: u32,
    /// Latency of one invocation, in cycles.
    pub latency: u64,
}

/// Result of an [`FpgaFabric::invoke`]: when the unit could start and when
/// it finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Invocation {
    /// Cycle at which the region was available (after any in-progress
    /// reconfiguration).
    pub started_at: u64,
    /// Cycle at which the result is ready.
    pub finished_at: u64,
}

#[derive(Debug, Clone)]
struct Region {
    loaded: Option<Bitstream>,
    ready_at: u64,
}

/// Cumulative fabric statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FpgaStats {
    /// Completed reconfigurations.
    pub reconfigurations: u64,
    /// Total cycles spent reconfiguring.
    pub reconfig_cycles: u64,
    /// Completed invocations.
    pub invocations: u64,
}

/// A fabric of identical reconfigurable regions.
#[derive(Debug, Clone)]
pub struct FpgaFabric {
    luts_per_region: u32,
    reconfig_cycles_per_lut: u64,
    regions: Vec<Region>,
    stats: FpgaStats,
}

impl FpgaFabric {
    /// Creates a fabric of `regions` regions, each `luts_per_region` LUTs,
    /// with reconfiguration costing `reconfig_cycles_per_lut` cycles per
    /// LUT of the incoming bitstream.
    ///
    /// # Panics
    ///
    /// Panics if `regions == 0`.
    #[must_use]
    pub fn new(regions: usize, luts_per_region: u32, reconfig_cycles_per_lut: u64) -> Self {
        assert!(regions > 0, "fabric needs at least one region");
        FpgaFabric {
            luts_per_region,
            reconfig_cycles_per_lut,
            regions: vec![
                Region {
                    loaded: None,
                    ready_at: 0,
                };
                regions
            ],
            stats: FpgaStats::default(),
        }
    }

    /// Number of regions.
    #[must_use]
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// LUT capacity of each region.
    #[must_use]
    pub fn luts_per_region(&self) -> u32 {
        self.luts_per_region
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> FpgaStats {
        self.stats
    }

    /// The reconfiguration latency a bitstream of `luts` LUTs would incur.
    #[must_use]
    pub fn reconfig_latency(&self, luts: u32) -> u64 {
        u64::from(luts) * self.reconfig_cycles_per_lut
    }

    /// Name of the unit currently loaded in a region, if any.
    ///
    /// # Panics
    ///
    /// Panics if `region` is out of range.
    #[must_use]
    pub fn loaded(&self, region: usize) -> Option<&str> {
        self.regions[region]
            .loaded
            .as_ref()
            .map(|b| b.name.as_str())
    }

    /// Begins reconfiguring `region` with `bitstream` at cycle `now`;
    /// returns the cycle at which the region becomes usable. Loading the
    /// already-loaded unit is free and returns immediately.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::Fpga`] if the region index is out of range or
    /// the bitstream exceeds the region's LUT budget.
    pub fn load(&mut self, region: usize, bitstream: Bitstream, now: u64) -> Result<u64, RtlError> {
        if region >= self.regions.len() {
            return Err(RtlError::Fpga {
                reason: format!("region {region} out of range"),
            });
        }
        if bitstream.luts > self.luts_per_region {
            return Err(RtlError::Fpga {
                reason: format!(
                    "bitstream {} needs {} luts, region has {}",
                    bitstream.name, bitstream.luts, self.luts_per_region
                ),
            });
        }
        let r = &mut self.regions[region];
        if r.loaded.as_ref() == Some(&bitstream) {
            return Ok(now.max(r.ready_at));
        }
        let start = now.max(r.ready_at);
        let latency = u64::from(bitstream.luts) * self.reconfig_cycles_per_lut;
        r.ready_at = start + latency;
        r.loaded = Some(bitstream);
        self.stats.reconfigurations += 1;
        self.stats.reconfig_cycles += latency;
        Ok(r.ready_at)
    }

    /// Invokes the unit named `unit` in `region` at cycle `now`.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::Fpga`] if the region index is out of range or a
    /// different (or no) unit is loaded.
    pub fn invoke(&mut self, region: usize, unit: &str, now: u64) -> Result<Invocation, RtlError> {
        if region >= self.regions.len() {
            return Err(RtlError::Fpga {
                reason: format!("region {region} out of range"),
            });
        }
        let r = &mut self.regions[region];
        let Some(loaded) = &r.loaded else {
            return Err(RtlError::Fpga {
                reason: format!("region {region} is empty"),
            });
        };
        if loaded.name != unit {
            return Err(RtlError::Fpga {
                reason: format!("region {region} holds {}, not {unit}", loaded.name),
            });
        }
        let started_at = now.max(r.ready_at);
        let finished_at = started_at + loaded.latency;
        r.ready_at = finished_at;
        self.stats.invocations += 1;
        Ok(Invocation {
            started_at,
            finished_at,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fir() -> Bitstream {
        Bitstream {
            name: "fir8".to_string(),
            luts: 100,
            latency: 4,
        }
    }

    fn dct() -> Bitstream {
        Bitstream {
            name: "dct8".to_string(),
            luts: 200,
            latency: 6,
        }
    }

    #[test]
    fn load_then_invoke() {
        let mut fab = FpgaFabric::new(1, 512, 10);
        let ready = fab.load(0, fir(), 0).unwrap();
        assert_eq!(ready, 1000, "100 luts * 10 cycles");
        let inv = fab.invoke(0, "fir8", 0).unwrap();
        assert_eq!(inv.started_at, 1000, "waits for reconfiguration");
        assert_eq!(inv.finished_at, 1004);
    }

    #[test]
    fn invocations_serialize_within_region() {
        let mut fab = FpgaFabric::new(1, 512, 0);
        fab.load(0, fir(), 0).unwrap();
        let a = fab.invoke(0, "fir8", 0).unwrap();
        let b = fab.invoke(0, "fir8", 0).unwrap();
        assert_eq!(a.finished_at, 4);
        assert_eq!(b.started_at, 4, "second call queues behind the first");
    }

    #[test]
    fn reload_same_unit_is_free() {
        let mut fab = FpgaFabric::new(1, 512, 10);
        fab.load(0, fir(), 0).unwrap();
        let ready = fab.load(0, fir(), 2000).unwrap();
        assert_eq!(ready, 2000);
        assert_eq!(fab.stats().reconfigurations, 1);
    }

    #[test]
    fn swapping_units_costs_reconfiguration() {
        let mut fab = FpgaFabric::new(1, 512, 10);
        fab.load(0, fir(), 0).unwrap();
        let ready = fab.load(0, dct(), 1000).unwrap();
        assert_eq!(ready, 1000 + 2000);
        assert_eq!(fab.loaded(0), Some("dct8"));
        assert!(matches!(
            fab.invoke(0, "fir8", 5000),
            Err(RtlError::Fpga { .. })
        ));
    }

    #[test]
    fn oversized_bitstream_rejected() {
        let mut fab = FpgaFabric::new(1, 64, 1);
        assert!(matches!(fab.load(0, fir(), 0), Err(RtlError::Fpga { .. })));
    }

    #[test]
    fn empty_region_cannot_be_invoked() {
        let mut fab = FpgaFabric::new(2, 512, 1);
        assert!(matches!(
            fab.invoke(1, "fir8", 0),
            Err(RtlError::Fpga { .. })
        ));
        assert!(matches!(
            fab.invoke(7, "fir8", 0),
            Err(RtlError::Fpga { .. })
        ));
    }

    #[test]
    fn regions_are_independent() {
        let mut fab = FpgaFabric::new(2, 512, 10);
        fab.load(0, fir(), 0).unwrap();
        fab.load(1, dct(), 0).unwrap();
        let a = fab.invoke(0, "fir8", 1000).unwrap();
        let b = fab.invoke(1, "dct8", 2000).unwrap();
        assert_eq!(a.started_at, 1000);
        assert_eq!(b.started_at, 2000);
        assert_eq!(fab.stats().invocations, 2);
    }

    #[test]
    fn stats_track_reconfig_cost() {
        let mut fab = FpgaFabric::new(1, 512, 5);
        fab.load(0, fir(), 0).unwrap();
        fab.load(0, dct(), 0).unwrap();
        let s = fab.stats();
        assert_eq!(s.reconfigurations, 2);
        assert_eq!(s.reconfig_cycles, 100 * 5 + 200 * 5);
    }
}
