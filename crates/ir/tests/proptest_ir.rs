//! Property-based tests for the IR invariants.

use codesign_ir::cdfg::{Cdfg, FuClass, OpKind};
use codesign_ir::opt::optimize;
use codesign_ir::workload::sysgen::{random_system, SysConfig, MAX_IRQ_BYTES};
use codesign_ir::workload::tgff::{
    random_process_network, random_task_graph, NetworkConfig, TgffConfig,
};
use proptest::prelude::*;

/// Strategy: a random executable CDFG built from a script of operations,
/// each selecting operands among previously created values.
fn arb_cdfg() -> impl Strategy<Value = Cdfg> {
    let op_choices =
        prop::collection::vec((0u8..12, any::<u64>(), any::<u64>(), -64i64..64), 1..40);
    (1usize..6, op_choices).prop_map(|(inputs, script)| {
        let mut g = Cdfg::new("prop");
        let mut vals = Vec::new();
        for _ in 0..inputs {
            vals.push(g.input());
        }
        for (which, a, b, c) in script {
            let pick = |seed: u64| vals[(seed % vals.len() as u64) as usize];
            let (x, y) = (pick(a), pick(b));
            let id = match which {
                0 => g.op(OpKind::Add, &[x, y]),
                1 => g.op(OpKind::Sub, &[x, y]),
                2 => g.op(OpKind::Mul, &[x, y]),
                3 => g.op(OpKind::And, &[x, y]),
                4 => g.op(OpKind::Or, &[x, y]),
                5 => g.op(OpKind::Xor, &[x, y]),
                6 => g.op(OpKind::Shl, &[x, y]),
                7 => g.op(OpKind::Shr, &[x, y]),
                8 => g.op(OpKind::Min, &[x, y]),
                9 => g.op(OpKind::Max, &[x, y]),
                10 => g.op(OpKind::Abs, &[x]),
                _ => Ok(g.constant(c)),
            }
            .expect("script ops are structurally valid");
            vals.push(id);
        }
        let last = *vals.last().expect("at least one value");
        g.output(last).expect("valid output");
        g
    })
}

proptest! {
    #[test]
    fn cdfg_evaluation_is_total_and_deterministic(g in arb_cdfg(), seed in any::<i64>()) {
        let inputs: Vec<i64> = (0..g.input_count())
            .map(|i| seed.wrapping_mul(31).wrapping_add(i as i64))
            .collect();
        // No Div/Rem in the strategy, so evaluation never faults.
        let a = g.evaluate(&inputs).expect("total");
        let b = g.evaluate(&inputs).expect("total");
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), g.output_count());
    }

    #[test]
    fn optimizer_preserves_semantics_and_never_grows(g in arb_cdfg(), seed in any::<i64>()) {
        let (opt, stats) = optimize(&g).expect("optimizes");
        prop_assert!(stats.ops_after <= stats.ops_before);
        prop_assert_eq!(opt.input_count(), g.input_count());
        prop_assert_eq!(opt.output_count(), g.output_count());
        let inputs: Vec<i64> = (0..g.input_count())
            .map(|i| seed.wrapping_mul(97).wrapping_add(i as i64 * 13))
            .collect();
        prop_assert_eq!(
            opt.evaluate(&inputs).expect("total"),
            g.evaluate(&inputs).expect("total")
        );
        // Idempotence: a second pass is a no-op.
        let (again, s2) = optimize(&opt).expect("optimizes");
        prop_assert_eq!(again, opt);
        prop_assert_eq!(s2.folded + s2.merged, 0);
    }

    #[test]
    fn cdfg_depth_bounded_by_resource_ops(g in arb_cdfg()) {
        let depth = g.depth(|k| u64::from(k.fu_class() != FuClass::Free));
        prop_assert!(depth as usize <= g.resource_op_count());
    }

    #[test]
    fn cdfg_class_histogram_sums_to_resource_ops(g in arb_cdfg()) {
        let hist = g.class_histogram();
        prop_assert_eq!(hist.iter().sum::<usize>(), g.resource_op_count());
    }

    #[test]
    fn random_task_graphs_always_validate(
        tasks in 1usize..60,
        width in 1usize..8,
        edge_prob in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let g = random_task_graph(&TgffConfig {
            tasks,
            width,
            edge_prob,
            seed,
            ..TgffConfig::default()
        });
        prop_assert_eq!(g.len(), tasks);
        prop_assert!(g.validate().is_ok());
    }

    #[test]
    fn critical_path_bounded_by_serial_time(tasks in 1usize..60, seed in any::<u64>()) {
        let g = random_task_graph(&TgffConfig { tasks, seed, ..TgffConfig::default() });
        let cp = g.critical_path(|_, t| t.sw_cycles()).expect("acyclic");
        prop_assert!(cp <= g.total_sw_cycles());
        // The critical path equals the maximum bottom level.
        let bl = g.bottom_levels(|_, t| t.sw_cycles()).expect("acyclic");
        prop_assert_eq!(cp, bl.into_iter().max().unwrap_or(0));
    }

    #[test]
    fn random_networks_always_validate(
        processes in 2usize..12,
        channel_prob in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let net = random_process_network(&NetworkConfig {
            processes,
            channel_prob,
            seed,
            ..NetworkConfig::default()
        });
        prop_assert!(net.validate().is_ok());
        // Communication matrix only reports forward (sender, receiver) pairs.
        for ((src, dst), bytes) in net.comm_matrix().expect("valid") {
            prop_assert!(src != dst);
            prop_assert!(bytes > 0);
        }
    }

    #[test]
    fn generated_systems_always_validate(
        channels in 1usize..=8,
        iterations in 1u32..=8,
        max_message_words in 1u64..=16,
        max_compute in 0u64..=400,
        max_fifo_capacity in 1usize..=32,
        max_drain_period in 1u64..=16,
        // Folded into one arg: the vendored proptest implements tuple
        // strategies up to arity 8.
        (extra_devices, max_irq_bytes) in (0usize..=16, 0u8..=MAX_IRQ_BYTES),
        seed in any::<u64>(),
    ) {
        // Every valid knob combination — including the floors (width 1,
        // one iteration, compute 0, IRQs off) and the ceilings — yields a
        // structurally valid system: aligned non-overlapping regions
        // inside the decoded window, every channel backed by a live FIFO.
        let cfg = SysConfig {
            channels,
            iterations,
            max_message_words,
            max_compute,
            max_fifo_capacity,
            max_drain_period,
            extra_devices,
            max_irq_bytes,
            seed,
        };
        prop_assert!(cfg.validate().is_ok());
        let spec = random_system(&cfg).expect("valid config generates");
        prop_assert!(spec.validate().is_ok(), "seed {seed}: {:?}", spec.validate());
        prop_assert_eq!(spec.channels.len(), channels);
        // Architected totals are spec-derivable before any simulation.
        for c in 0..channels {
            let bytes = spec.channel_bytes(c);
            prop_assert!(bytes >= 4 * u64::from(iterations));
            prop_assert!(bytes <= 4 * max_message_words * u64::from(iterations));
        }
        prop_assert!(spec.irq_count() <= u64::from(max_irq_bytes));
    }

    #[test]
    fn system_generation_is_seed_deterministic(seed in any::<u64>()) {
        let cfg = SysConfig { seed, ..SysConfig::default() };
        let a = random_system(&cfg).expect("generates");
        let b = random_system(&cfg).expect("generates");
        prop_assert_eq!(a, b);
        // A different seed perturbs the system (memory-map draw or
        // channel parameters) virtually always; assert on the whole spec
        // rather than any single field to keep this robust.
        let c = random_system(&SysConfig {
            seed: seed.wrapping_add(1),
            ..cfg
        })
        .expect("generates");
        prop_assert_ne!(random_system(&cfg).expect("generates"), c);
    }
}
