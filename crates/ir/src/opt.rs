//! CDFG optimization passes.
//!
//! Three classic semantics-preserving rewrites run before code generation
//! or synthesis — the paper's co-synthesis flows assume "a unified
//! understanding of hardware and software functionality", and a smaller
//! graph is smaller on *both* sides of the boundary:
//!
//! * **constant folding** — operations whose operands are all constants
//!   are evaluated at compile time (using the non-trapping hardware
//!   semantics for division, so folding never changes behaviour);
//! * **common-subexpression elimination** — structurally identical
//!   operations are merged;
//! * **dead-code elimination** — operations no output depends on are
//!   dropped.
//!
//! [`optimize`] runs all three to a fixed point and returns a new graph
//! with identical observable behaviour ([`Cdfg::evaluate`] agrees on all
//! inputs, checked by property tests).

use std::collections::HashMap;

use crate::cdfg::{Cdfg, OpId, OpKind};
use crate::error::IrError;

/// Statistics from one [`optimize`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Operations in the input graph.
    pub ops_before: usize,
    /// Operations in the optimized graph.
    pub ops_after: usize,
    /// Operations replaced by folded constants.
    pub folded: usize,
    /// Operations merged into an equivalent earlier operation.
    pub merged: usize,
}

impl OptStats {
    /// Fraction of operations removed.
    #[must_use]
    pub fn reduction(&self) -> f64 {
        if self.ops_before == 0 {
            0.0
        } else {
            1.0 - self.ops_after as f64 / self.ops_before as f64
        }
    }
}

/// Evaluates one operation on constant operands with the non-trapping
/// hardware semantics (`x/0 = 0`, `x%0 = x`), so folding a divide is
/// always safe.
fn fold(kind: OpKind, args: &[i64]) -> Option<i64> {
    let a = |k: usize| args.get(k).copied().unwrap_or(0);
    Some(match kind {
        OpKind::Add => a(0).wrapping_add(a(1)),
        OpKind::Sub => a(0).wrapping_sub(a(1)),
        OpKind::Mul => a(0).wrapping_mul(a(1)),
        OpKind::Div => a(0).checked_div(a(1)).unwrap_or(0),
        OpKind::Rem => {
            if a(1) == 0 {
                a(0)
            } else {
                a(0).wrapping_rem(a(1))
            }
        }
        OpKind::And => a(0) & a(1),
        OpKind::Or => a(0) | a(1),
        OpKind::Xor => a(0) ^ a(1),
        OpKind::Not => !a(0),
        OpKind::Neg => a(0).wrapping_neg(),
        OpKind::Shl => a(0).wrapping_shl((a(1) & 0x3f) as u32),
        OpKind::Shr => a(0).wrapping_shr((a(1) & 0x3f) as u32),
        OpKind::Lt => i64::from(a(0) < a(1)),
        OpKind::Le => i64::from(a(0) <= a(1)),
        OpKind::Eq => i64::from(a(0) == a(1)),
        OpKind::Ne => i64::from(a(0) != a(1)),
        OpKind::Select => {
            if a(0) != 0 {
                a(1)
            } else {
                a(2)
            }
        }
        OpKind::Min => a(0).min(a(1)),
        OpKind::Max => a(0).max(a(1)),
        OpKind::Abs => a(0).wrapping_abs(),
        _ => return None,
    })
}

/// Wait-for-zero divides must NOT be folded to the trapping
/// interpretation: [`Cdfg::evaluate`] faults on division by a zero
/// *runtime* value, but a divide by a zero *constant* would change a
/// guaranteed fault into a 0. Keep those unfolded so behaviour
/// (including the fault) is preserved.
fn folding_would_mask_a_fault(kind: OpKind, args: &[i64]) -> bool {
    matches!(kind, OpKind::Div | OpKind::Rem) && args.get(1) == Some(&0)
}

/// Runs constant folding, CSE, and DCE to a fixed point.
///
/// The optimized graph evaluates identically to the input on every input
/// vector (including faulting identically on runtime divide-by-zero).
///
/// # Errors
///
/// Propagates structural errors from graph reconstruction (cannot occur
/// for graphs built through the public [`Cdfg`] API).
pub fn optimize(g: &Cdfg) -> Result<(Cdfg, OptStats), IrError> {
    let mut stats = OptStats {
        ops_before: g.len(),
        ..OptStats::default()
    };

    // --- Liveness (DCE): outputs keep their transitive inputs ----------
    let mut live = vec![false; g.len()];
    let mut stack: Vec<usize> = g
        .iter()
        .filter(|(_, n)| matches!(n.kind(), OpKind::Output(_)))
        .map(|(id, _)| id.index())
        .collect();
    while let Some(i) = stack.pop() {
        if std::mem::replace(&mut live[i], true) {
            continue;
        }
        stack.extend(g.node(OpId::from_index(i)).args().iter().map(|a| a.index()));
    }
    // Inputs always survive so the signature is stable.
    for (id, n) in g.iter() {
        if matches!(n.kind(), OpKind::Input(_)) {
            live[id.index()] = true;
        }
    }

    let mut out = Cdfg::new(g.name());
    // old id -> new id
    let mut remap: Vec<Option<OpId>> = vec![None; g.len()];
    // folded constant value per old id, for further folding
    let mut const_of: Vec<Option<i64>> = vec![None; g.len()];
    // structural hash for CSE: (kind, new arg ids) -> new id
    let mut seen: HashMap<(OpKind, Vec<OpId>), OpId> = HashMap::new();
    // constants already materialized in the new graph
    let mut const_pool: HashMap<i64, OpId> = HashMap::new();

    let mut intern_const = |out: &mut Cdfg, v: i64| -> OpId {
        *const_pool.entry(v).or_insert_with(|| out.constant(v))
    };

    for (id, node) in g.iter() {
        if !live[id.index()] {
            continue;
        }
        match node.kind() {
            OpKind::Input(_) => {
                remap[id.index()] = Some(out.input());
            }
            OpKind::Const(c) => {
                // Materialized lazily, so constants orphaned by folding
                // never reach the output graph.
                const_of[id.index()] = Some(c);
            }
            OpKind::Output(_) => {
                let src = node.args()[0];
                let new_src = match (remap[src.index()], const_of[src.index()]) {
                    (Some(n), _) => n,
                    (None, Some(c)) => {
                        let n = intern_const(&mut out, c);
                        remap[src.index()] = Some(n);
                        n
                    }
                    (None, None) => {
                        return Err(IrError::UnknownNode {
                            kind: "cdfg",
                            index: src.index(),
                        })
                    }
                };
                out.output(new_src)?;
            }
            kind => {
                // Try constant folding.
                let const_args: Option<Vec<i64>> =
                    node.args().iter().map(|a| const_of[a.index()]).collect();
                if let Some(cargs) = const_args {
                    if !folding_would_mask_a_fault(kind, &cargs) {
                        if let Some(v) = fold(kind, &cargs) {
                            stats.folded += 1;
                            // Lazy like any constant: materialized only on
                            // first real use.
                            const_of[id.index()] = Some(v);
                            continue;
                        }
                    }
                }
                // CSE over the rewritten operands (constants materialize
                // here, on first real use).
                let mut new_args: Vec<OpId> = Vec::with_capacity(node.args().len());
                for a in node.args() {
                    let n = match (remap[a.index()], const_of[a.index()]) {
                        (Some(n), _) => n,
                        (None, Some(c)) => {
                            let n = intern_const(&mut out, c);
                            remap[a.index()] = Some(n);
                            n
                        }
                        (None, None) => {
                            return Err(IrError::UnknownNode {
                                kind: "cdfg",
                                index: a.index(),
                            })
                        }
                    };
                    new_args.push(n);
                }
                let key = (kind, new_args.clone());
                if let Some(&existing) = seen.get(&key) {
                    stats.merged += 1;
                    remap[id.index()] = Some(existing);
                    continue;
                }
                let new_id = out.op(kind, &new_args)?;
                seen.insert(key, new_id);
                remap[id.index()] = Some(new_id);
            }
        }
    }
    stats.ops_after = out.len();
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::kernels;

    #[test]
    fn folds_constant_expressions() {
        let mut g = Cdfg::new("fold");
        let a = g.constant(6);
        let b = g.constant(7);
        let p = g.op(OpKind::Mul, &[a, b]).unwrap();
        let x = g.input();
        let s = g.op(OpKind::Add, &[p, x]).unwrap();
        g.output(s).unwrap();
        let (opt, stats) = optimize(&g).unwrap();
        assert_eq!(stats.folded, 1);
        assert_eq!(opt.evaluate(&[8]).unwrap(), vec![50]);
        // The multiply is gone: one add remains.
        assert_eq!(opt.class_histogram(), [1, 0, 0, 0]);
    }

    #[test]
    fn merges_common_subexpressions() {
        let mut g = Cdfg::new("cse");
        let a = g.input();
        let b = g.input();
        let s1 = g.op(OpKind::Add, &[a, b]).unwrap();
        let s2 = g.op(OpKind::Add, &[a, b]).unwrap();
        let p = g.op(OpKind::Mul, &[s1, s2]).unwrap();
        g.output(p).unwrap();
        let (opt, stats) = optimize(&g).unwrap();
        assert_eq!(stats.merged, 1);
        assert_eq!(opt.class_histogram(), [1, 1, 0, 0]);
        assert_eq!(opt.evaluate(&[3, 4]).unwrap(), vec![49]);
    }

    #[test]
    fn eliminates_dead_code() {
        let mut g = Cdfg::new("dce");
        let a = g.input();
        let b = g.input();
        let _dead = g.op(OpKind::Mul, &[a, b]).unwrap();
        let live = g.op(OpKind::Add, &[a, b]).unwrap();
        g.output(live).unwrap();
        let (opt, _) = optimize(&g).unwrap();
        assert_eq!(opt.class_histogram(), [1, 0, 0, 0]);
        assert_eq!(opt.evaluate(&[2, 3]).unwrap(), vec![5]);
    }

    #[test]
    fn divide_by_constant_zero_still_faults() {
        let mut g = Cdfg::new("divz");
        let a = g.input();
        let z = g.constant(0);
        let q = g.op(OpKind::Div, &[a, z]).unwrap();
        g.output(q).unwrap();
        let (opt, stats) = optimize(&g).unwrap();
        assert_eq!(stats.folded, 0, "fault-preserving: not folded");
        assert!(matches!(opt.evaluate(&[5]), Err(IrError::EvalFault { .. })));
    }

    #[test]
    fn constants_are_pooled() {
        let mut g = Cdfg::new("pool");
        let x = g.input();
        let c1 = g.constant(5);
        let c2 = g.constant(5);
        let a = g.op(OpKind::Add, &[x, c1]).unwrap();
        let b = g.op(OpKind::Mul, &[x, c2]).unwrap();
        let s = g.op(OpKind::Sub, &[a, b]).unwrap();
        g.output(s).unwrap();
        let (opt, _) = optimize(&g).unwrap();
        let consts = opt
            .iter()
            .filter(|(_, n)| matches!(n.kind(), OpKind::Const(_)))
            .count();
        assert_eq!(consts, 1, "duplicate constants merged");
    }

    #[test]
    fn signature_is_preserved_even_for_unused_inputs() {
        let mut g = Cdfg::new("sig");
        let _unused = g.input();
        let b = g.input();
        g.output(b).unwrap();
        let (opt, _) = optimize(&g).unwrap();
        assert_eq!(opt.input_count(), 2);
        assert_eq!(opt.evaluate(&[99, 7]).unwrap(), vec![7]);
    }

    #[test]
    fn library_kernels_are_preserved_and_sometimes_shrink() {
        for g in kernels::all() {
            let (opt, stats) = optimize(&g).unwrap();
            let inputs: Vec<i64> = (0..g.input_count()).map(|i| i as i64 * 3 - 5).collect();
            assert_eq!(
                opt.evaluate(&inputs).unwrap(),
                g.evaluate(&inputs).unwrap(),
                "{}",
                g.name()
            );
            assert!(stats.ops_after <= stats.ops_before, "{}", g.name());
        }
        // crc32 folds its per-round shift-amount constants into reuse.
        let (_, stats) = optimize(&kernels::crc32_byte()).unwrap();
        assert!(stats.reduction() > 0.0, "crc32 shrinks: {stats:?}");
    }

    #[test]
    fn optimization_is_idempotent() {
        for g in kernels::all() {
            let (once, _) = optimize(&g).unwrap();
            let (twice, stats) = optimize(&once).unwrap();
            assert_eq!(once, twice, "{}", g.name());
            assert_eq!(stats.folded + stats.merged, 0);
        }
    }
}
