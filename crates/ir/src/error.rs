//! Error types for specification construction and interpretation.

use std::error::Error;
use std::fmt;

/// Errors produced while building, validating, or interpreting the IR.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IrError {
    /// A graph that must be acyclic contains a cycle.
    CyclicGraph {
        /// Which graph kind the cycle was found in (`"task graph"`, `"cdfg"`, ...).
        kind: &'static str,
    },
    /// An edge or reference names a node that does not exist.
    UnknownNode {
        /// Which graph kind the dangling reference was found in.
        kind: &'static str,
        /// The out-of-range index.
        index: usize,
    },
    /// A CDFG evaluation was given the wrong number of inputs.
    InputArity {
        /// Inputs the graph declares.
        expected: usize,
        /// Inputs the caller supplied.
        actual: usize,
    },
    /// An operation was evaluated with an illegal operand (e.g. divide by zero).
    EvalFault {
        /// Index of the faulting operation.
        op: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// A textual specification failed to parse.
    ParseSpec {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// A process references a channel that is not declared in the network.
    UnknownChannel {
        /// Name of the missing channel.
        name: String,
    },
    /// A structural invariant of the specification is violated.
    Invalid {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::CyclicGraph { kind } => write!(f, "cycle detected in {kind}"),
            IrError::UnknownNode { kind, index } => {
                write!(f, "reference to unknown node {index} in {kind}")
            }
            IrError::InputArity { expected, actual } => {
                write!(f, "expected {expected} inputs, got {actual}")
            }
            IrError::EvalFault { op, reason } => {
                write!(f, "evaluation fault at operation {op}: {reason}")
            }
            IrError::ParseSpec { line, reason } => {
                write!(f, "specification parse error at line {line}: {reason}")
            }
            IrError::UnknownChannel { name } => write!(f, "unknown channel `{name}`"),
            IrError::Invalid { reason } => write!(f, "invalid specification: {reason}"),
        }
    }
}

impl Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = IrError::CyclicGraph { kind: "task graph" };
        assert_eq!(e.to_string(), "cycle detected in task graph");
        let e = IrError::InputArity {
            expected: 3,
            actual: 1,
        };
        assert_eq!(e.to_string(), "expected 3 inputs, got 1");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IrError>();
    }
}
