//! Coarse-grain task graphs.
//!
//! A [`TaskGraph`] is a directed acyclic graph of tasks with data-volume
//! annotated edges. It is the granularity at which the paper's Section 4.2
//! flows (SOS, Beck, Yen–Wolf) allocate processing elements and map work
//! onto them, and the granularity at which HW/SW partitioners decide what
//! moves across the boundary.
//!
//! Each [`Task`] carries the attributes the paper's Section 3.3 lists as
//! partitioning considerations:
//!
//! * software and hardware execution costs (*performance requirements*),
//! * a hardware area cost (*implementation cost*),
//! * a parallelism affinity in `[0, 1]` (*nature of the computation*),
//! * a modifiability preference in `[0, 1]` (*modifiability*).
//!
//! *Concurrency* and *communication* are properties of the graph (edge data
//! volumes and the precedence structure), not of single tasks.

use serde::{Deserialize, Serialize};

use crate::error::IrError;

/// Identifier of a task within one [`TaskGraph`].
///
/// Ids are dense indices assigned in insertion order; they are only
/// meaningful relative to the graph that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub(crate) u32);

impl TaskId {
    /// Creates an id from a dense index. Ids are only meaningful for the
    /// graph that has at least `index + 1` tasks.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        TaskId(index as u32)
    }

    /// Returns the dense index of this task.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One coarse-grain unit of work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    name: String,
    sw_cycles: u64,
    hw_cycles: u64,
    hw_area: f64,
    parallelism: f64,
    modifiability: f64,
    kernel: Option<String>,
}

impl Task {
    /// Creates a task with the given name and software cost in cycles on
    /// the reference processor.
    ///
    /// Hardware cost defaults to `sw_cycles / 10` (a typical speedup for a
    /// dedicated datapath), hardware area to `sw_cycles as f64 / 100.0`,
    /// and the qualitative affinities to neutral `0.5`. Use the `with_*`
    /// methods to refine.
    #[must_use]
    pub fn new(name: impl Into<String>, sw_cycles: u64) -> Self {
        Task {
            name: name.into(),
            sw_cycles,
            hw_cycles: (sw_cycles / 10).max(1),
            hw_area: sw_cycles as f64 / 100.0,
            parallelism: 0.5,
            modifiability: 0.5,
            kernel: None,
        }
    }

    /// Sets the hardware latency in cycles.
    #[must_use]
    pub fn with_hw_cycles(mut self, hw_cycles: u64) -> Self {
        self.hw_cycles = hw_cycles.max(1);
        self
    }

    /// Sets the hardware area cost (abstract area units).
    #[must_use]
    pub fn with_hw_area(mut self, hw_area: f64) -> Self {
        self.hw_area = hw_area;
        self
    }

    /// Sets the parallelism affinity in `[0, 1]`; values near 1 mark
    /// computations that "benefit from a high degree of parallelism" and
    /// are therefore "better suited for hardware" (paper Section 3.3).
    ///
    /// The value is clamped to `[0, 1]`.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: f64) -> Self {
        self.parallelism = parallelism.clamp(0.0, 1.0);
        self
    }

    /// Sets the modifiability preference in `[0, 1]`; values near 1 mark
    /// functions whose "algorithm can be easily changed" and which
    /// therefore prefer a software implementation (paper Section 3.3).
    ///
    /// The value is clamped to `[0, 1]`.
    #[must_use]
    pub fn with_modifiability(mut self, modifiability: f64) -> Self {
        self.modifiability = modifiability.clamp(0.0, 1.0);
        self
    }

    /// Associates a named CDFG kernel with this task, connecting the
    /// coarse-grain and operation-level views.
    #[must_use]
    pub fn with_kernel(mut self, kernel: impl Into<String>) -> Self {
        self.kernel = Some(kernel.into());
        self
    }

    /// Task name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Software execution cost in reference-processor cycles.
    #[must_use]
    pub fn sw_cycles(&self) -> u64 {
        self.sw_cycles
    }

    /// Hardware execution latency in cycles.
    #[must_use]
    pub fn hw_cycles(&self) -> u64 {
        self.hw_cycles
    }

    /// Hardware area cost in abstract area units.
    #[must_use]
    pub fn hw_area(&self) -> f64 {
        self.hw_area
    }

    /// Parallelism affinity in `[0, 1]`.
    #[must_use]
    pub fn parallelism(&self) -> f64 {
        self.parallelism
    }

    /// Modifiability preference in `[0, 1]`.
    #[must_use]
    pub fn modifiability(&self) -> f64 {
        self.modifiability
    }

    /// Name of the associated CDFG kernel, if any.
    #[must_use]
    pub fn kernel(&self) -> Option<&str> {
        self.kernel.as_deref()
    }
}

/// A data dependence between two tasks carrying `bytes` of data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataEdge {
    /// Producer task.
    pub src: TaskId,
    /// Consumer task.
    pub dst: TaskId,
    /// Data volume transferred, in bytes.
    pub bytes: u64,
}

/// Precomputed structural adjacency for a [`TaskGraph`]: CSR-style
/// incoming/outgoing edge indices (per-endpoint insertion order is
/// preserved, so iteration matches a scan over the edge list) plus the
/// memoized topological order. Built lazily on first use and discarded by
/// structural mutation, so repeated traversals — the partition
/// evaluator's inner loop — stop paying a full edge scan per task.
#[derive(Debug, Clone)]
struct GraphIndex {
    /// Offsets into `in_edges`, length `n + 1`.
    in_start: Vec<u32>,
    /// Edge indices grouped by destination task.
    in_edges: Vec<u32>,
    /// Offsets into `out_edges`, length `n + 1`.
    out_start: Vec<u32>,
    /// Edge indices grouped by source task.
    out_edges: Vec<u32>,
    /// Topological order, or `None` for a cyclic graph.
    topo: Option<Vec<TaskId>>,
}

impl GraphIndex {
    fn build(n: usize, edges: &[DataEdge]) -> Self {
        let mut in_start = vec![0u32; n + 1];
        let mut out_start = vec![0u32; n + 1];
        for e in edges {
            in_start[e.dst.index() + 1] += 1;
            out_start[e.src.index() + 1] += 1;
        }
        for i in 0..n {
            in_start[i + 1] += in_start[i];
            out_start[i + 1] += out_start[i];
        }
        let mut in_edges = vec![0u32; edges.len()];
        let mut out_edges = vec![0u32; edges.len()];
        let mut in_fill = in_start.clone();
        let mut out_fill = out_start.clone();
        for (i, e) in edges.iter().enumerate() {
            in_edges[in_fill[e.dst.index()] as usize] = i as u32;
            in_fill[e.dst.index()] += 1;
            out_edges[out_fill[e.src.index()] as usize] = i as u32;
            out_fill[e.src.index()] += 1;
        }

        // Kahn's algorithm with a LIFO ready stack; successors are visited
        // in edge insertion order, so the resulting order is identical to
        // the pre-index implementation.
        let mut indegree: Vec<u32> = (0..n).map(|i| in_start[i + 1] - in_start[i]).collect();
        let mut ready: Vec<TaskId> = (0..n as u32)
            .map(TaskId)
            .filter(|id| indegree[id.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(id) = ready.pop() {
            order.push(id);
            let succs =
                &out_edges[out_start[id.index()] as usize..out_start[id.index() + 1] as usize];
            for &ei in succs {
                let succ = edges[ei as usize].dst;
                indegree[succ.index()] -= 1;
                if indegree[succ.index()] == 0 {
                    ready.push(succ);
                }
            }
        }
        let topo = (order.len() == n).then_some(order);
        GraphIndex {
            in_start,
            in_edges,
            out_start,
            out_edges,
            topo,
        }
    }
}

/// A directed acyclic graph of [`Task`]s.
///
/// # Example
///
/// ```
/// use codesign_ir::task::{Task, TaskGraph};
///
/// # fn main() -> Result<(), codesign_ir::IrError> {
/// let mut g = TaskGraph::new("pipeline");
/// let a = g.add_task(Task::new("sample", 100));
/// let b = g.add_task(Task::new("filter", 4_000).with_parallelism(0.9));
/// g.add_edge(a, b, 64)?;
/// assert_eq!(g.topological_order()?, vec![a, b]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskGraph {
    name: String,
    tasks: Vec<Task>,
    edges: Vec<DataEdge>,
    deadline: Option<u64>,
    period: Option<u64>,
    /// Lazily-built adjacency index; not part of the graph's value.
    index: std::sync::OnceLock<GraphIndex>,
}

impl PartialEq for TaskGraph {
    fn eq(&self, other: &Self) -> bool {
        // The adjacency cache is derived state and excluded from equality.
        self.name == other.name
            && self.tasks == other.tasks
            && self.edges == other.edges
            && self.deadline == other.deadline
            && self.period == other.period
    }
}

impl TaskGraph {
    /// Creates an empty task graph.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        TaskGraph {
            name: name.into(),
            tasks: Vec::new(),
            edges: Vec::new(),
            deadline: None,
            period: None,
            index: std::sync::OnceLock::new(),
        }
    }

    /// The adjacency index, built on first use.
    fn index(&self) -> &GraphIndex {
        self.index
            .get_or_init(|| GraphIndex::build(self.tasks.len(), &self.edges))
    }

    /// Graph name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets an end-to-end deadline in cycles (a *performance requirement*
    /// in the paper's Section 3.3 sense).
    pub fn set_deadline(&mut self, deadline: u64) {
        self.deadline = Some(deadline);
    }

    /// End-to-end deadline in cycles, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<u64> {
        self.deadline
    }

    /// Sets the invocation period in cycles for rate-constrained systems.
    pub fn set_period(&mut self, period: u64) {
        self.period = Some(period);
    }

    /// Invocation period in cycles, if any.
    #[must_use]
    pub fn period(&self) -> Option<u64> {
        self.period
    }

    /// Adds a task and returns its id.
    pub fn add_task(&mut self, task: Task) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(task);
        self.index.take(); // structural mutation invalidates the index
        id
    }

    /// Adds a data edge from `src` to `dst` carrying `bytes` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::UnknownNode`] if either endpoint is not a task of
    /// this graph, and [`IrError::Invalid`] for a self-edge.
    pub fn add_edge(&mut self, src: TaskId, dst: TaskId, bytes: u64) -> Result<(), IrError> {
        for id in [src, dst] {
            if id.index() >= self.tasks.len() {
                return Err(IrError::UnknownNode {
                    kind: "task graph",
                    index: id.index(),
                });
            }
        }
        if src == dst {
            return Err(IrError::Invalid {
                reason: format!("self edge on task {src}"),
            });
        }
        self.edges.push(DataEdge { src, dst, bytes });
        self.index.take(); // structural mutation invalidates the index
        Ok(())
    }

    /// Number of tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph has no tasks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The task with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[must_use]
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// Mutable access to the task with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[must_use]
    pub fn task_mut(&mut self, id: TaskId) -> &mut Task {
        &mut self.tasks[id.index()]
    }

    /// Iterates over `(id, task)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (TaskId(i as u32), t))
    }

    /// Iterates over all task ids.
    pub fn ids(&self) -> impl Iterator<Item = TaskId> {
        (0..self.tasks.len() as u32).map(TaskId)
    }

    /// All data edges.
    #[must_use]
    pub fn edges(&self) -> &[DataEdge] {
        &self.edges
    }

    /// Edges arriving at `id`, in insertion order.
    pub fn incoming_edges(&self, id: TaskId) -> impl Iterator<Item = &DataEdge> + '_ {
        let ix = self.index();
        ix.in_edges[ix.in_start[id.index()] as usize..ix.in_start[id.index() + 1] as usize]
            .iter()
            .map(move |&ei| &self.edges[ei as usize])
    }

    /// Edges leaving `id`, in insertion order.
    pub fn outgoing_edges(&self, id: TaskId) -> impl Iterator<Item = &DataEdge> + '_ {
        let ix = self.index();
        ix.out_edges[ix.out_start[id.index()] as usize..ix.out_start[id.index() + 1] as usize]
            .iter()
            .map(move |&ei| &self.edges[ei as usize])
    }

    /// Number of edges arriving at `id`.
    #[must_use]
    pub fn in_degree(&self, id: TaskId) -> usize {
        let ix = self.index();
        (ix.in_start[id.index() + 1] - ix.in_start[id.index()]) as usize
    }

    /// Ids of the direct predecessors of `id`.
    pub fn predecessors(&self, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.incoming_edges(id).map(|e| e.src)
    }

    /// Ids of the direct successors of `id`.
    pub fn successors(&self, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.outgoing_edges(id).map(|e| e.dst)
    }

    /// Total bytes flowing into `id`.
    #[must_use]
    pub fn incoming_bytes(&self, id: TaskId) -> u64 {
        self.incoming_edges(id).map(|e| e.bytes).sum()
    }

    /// Total bytes flowing out of `id`.
    #[must_use]
    pub fn outgoing_bytes(&self, id: TaskId) -> u64 {
        self.outgoing_edges(id).map(|e| e.bytes).sum()
    }

    /// Returns a topological ordering of the tasks.
    ///
    /// The order is memoized together with the adjacency index, so
    /// repeated calls cost one `Vec` copy rather than a graph traversal.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::CyclicGraph`] if the graph contains a cycle.
    pub fn topological_order(&self) -> Result<Vec<TaskId>, IrError> {
        self.index()
            .topo
            .clone()
            .ok_or(IrError::CyclicGraph { kind: "task graph" })
    }

    /// The memoized topological order as a slice, without copying.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::CyclicGraph`] if the graph contains a cycle.
    pub fn topological_order_ref(&self) -> Result<&[TaskId], IrError> {
        self.index()
            .topo
            .as_deref()
            .ok_or(IrError::CyclicGraph { kind: "task graph" })
    }

    /// Validates structural invariants (acyclicity, edge endpoints).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), IrError> {
        for e in &self.edges {
            for id in [e.src, e.dst] {
                if id.index() >= self.tasks.len() {
                    return Err(IrError::UnknownNode {
                        kind: "task graph",
                        index: id.index(),
                    });
                }
            }
        }
        self.topological_order().map(|_| ())
    }

    /// Length of the longest path under a per-task cost function, ignoring
    /// communication. This is the classic critical path used to lower-bound
    /// any schedule.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::CyclicGraph`] if the graph contains a cycle.
    pub fn critical_path(&self, cost: impl Fn(TaskId, &Task) -> u64) -> Result<u64, IrError> {
        let order = self.topological_order_ref()?;
        let mut finish = vec![0u64; self.tasks.len()];
        let mut best = 0;
        for &id in order {
            let start = self
                .predecessors(id)
                .map(|p| finish[p.index()])
                .max()
                .unwrap_or(0);
            let f = start + cost(id, self.task(id));
            finish[id.index()] = f;
            best = best.max(f);
        }
        Ok(best)
    }

    /// Bottom levels (longest path from each task to any sink, inclusive of
    /// the task itself) under a cost function. Used as the priority in list
    /// scheduling.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::CyclicGraph`] if the graph contains a cycle.
    pub fn bottom_levels(&self, cost: impl Fn(TaskId, &Task) -> u64) -> Result<Vec<u64>, IrError> {
        let order = self.topological_order_ref()?;
        let mut level = vec![0u64; self.tasks.len()];
        for &id in order.iter().rev() {
            let tail = self
                .successors(id)
                .map(|s| level[s.index()])
                .max()
                .unwrap_or(0);
            level[id.index()] = tail + cost(id, self.task(id));
        }
        Ok(level)
    }

    /// Sum of software costs over all tasks: the makespan of an entirely
    /// sequential, all-software implementation.
    #[must_use]
    pub fn total_sw_cycles(&self) -> u64 {
        self.tasks.iter().map(Task::sw_cycles).sum()
    }

    /// Sum of hardware areas over all tasks: the cost of an all-hardware
    /// implementation with no resource sharing.
    #[must_use]
    pub fn total_hw_area(&self) -> f64 {
        self.tasks.iter().map(Task::hw_area).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (TaskGraph, [TaskId; 4]) {
        let mut g = TaskGraph::new("diamond");
        let a = g.add_task(Task::new("a", 10));
        let b = g.add_task(Task::new("b", 20));
        let c = g.add_task(Task::new("c", 30));
        let d = g.add_task(Task::new("d", 40));
        g.add_edge(a, b, 8).unwrap();
        g.add_edge(a, c, 8).unwrap();
        g.add_edge(b, d, 8).unwrap();
        g.add_edge(c, d, 8).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn topological_order_respects_edges() {
        let (g, ids) = diamond();
        let order = g.topological_order().unwrap();
        let pos = |id: TaskId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(ids[0]) < pos(ids[1]));
        assert!(pos(ids[0]) < pos(ids[2]));
        assert!(pos(ids[1]) < pos(ids[3]));
        assert!(pos(ids[2]) < pos(ids[3]));
    }

    #[test]
    fn cycle_is_detected() {
        let mut g = TaskGraph::new("cyclic");
        let a = g.add_task(Task::new("a", 1));
        let b = g.add_task(Task::new("b", 1));
        g.add_edge(a, b, 1).unwrap();
        g.add_edge(b, a, 1).unwrap();
        assert_eq!(
            g.topological_order(),
            Err(IrError::CyclicGraph { kind: "task graph" })
        );
        assert!(g.validate().is_err());
    }

    #[test]
    fn self_edge_rejected() {
        let mut g = TaskGraph::new("g");
        let a = g.add_task(Task::new("a", 1));
        assert!(matches!(g.add_edge(a, a, 1), Err(IrError::Invalid { .. })));
    }

    #[test]
    fn edge_to_unknown_task_rejected() {
        let mut g = TaskGraph::new("g");
        let a = g.add_task(Task::new("a", 1));
        let ghost = TaskId(17);
        assert!(matches!(
            g.add_edge(a, ghost, 1),
            Err(IrError::UnknownNode { .. })
        ));
    }

    #[test]
    fn critical_path_of_diamond() {
        let (g, _) = diamond();
        // a -> c -> d = 10 + 30 + 40 = 80 is the longest SW path.
        let cp = g.critical_path(|_, t| t.sw_cycles()).unwrap();
        assert_eq!(cp, 80);
    }

    #[test]
    fn bottom_levels_of_chain() {
        let mut g = TaskGraph::new("chain");
        let a = g.add_task(Task::new("a", 5));
        let b = g.add_task(Task::new("b", 7));
        g.add_edge(a, b, 1).unwrap();
        let bl = g.bottom_levels(|_, t| t.sw_cycles()).unwrap();
        assert_eq!(bl[a.index()], 12);
        assert_eq!(bl[b.index()], 7);
    }

    #[test]
    fn byte_accounting() {
        let (g, ids) = diamond();
        assert_eq!(g.outgoing_bytes(ids[0]), 16);
        assert_eq!(g.incoming_bytes(ids[3]), 16);
        assert_eq!(g.incoming_bytes(ids[0]), 0);
    }

    #[test]
    fn task_builder_clamps_affinities() {
        let t = Task::new("t", 100)
            .with_parallelism(2.0)
            .with_modifiability(-1.0);
        assert_eq!(t.parallelism(), 1.0);
        assert_eq!(t.modifiability(), 0.0);
    }

    #[test]
    fn totals() {
        let (g, _) = diamond();
        assert_eq!(g.total_sw_cycles(), 100);
        assert!(g.total_hw_area() > 0.0);
    }

    #[test]
    fn index_invalidated_by_mutation() {
        let mut g = TaskGraph::new("grow");
        let a = g.add_task(Task::new("a", 1));
        let b = g.add_task(Task::new("b", 1));
        assert_eq!(g.predecessors(b).count(), 0); // builds the index
        g.add_edge(a, b, 4).unwrap();
        assert_eq!(g.predecessors(b).collect::<Vec<_>>(), vec![a]);
        let c = g.add_task(Task::new("c", 1));
        g.add_edge(b, c, 4).unwrap();
        assert_eq!(g.topological_order().unwrap(), vec![a, b, c]);
        assert_eq!(g.in_degree(c), 1);
    }

    #[test]
    fn equality_ignores_index_cache() {
        let (g1, _) = diamond();
        let (g2, _) = diamond();
        let _ = g1.topological_order(); // build the cache on one side only
        assert_eq!(g1, g2);
    }

    #[test]
    fn adjacency_preserves_edge_insertion_order() {
        let mut g = TaskGraph::new("order");
        let a = g.add_task(Task::new("a", 1));
        let b = g.add_task(Task::new("b", 1));
        let c = g.add_task(Task::new("c", 1));
        let d = g.add_task(Task::new("d", 1));
        // Insert in a deliberately scrambled order.
        g.add_edge(c, d, 3).unwrap();
        g.add_edge(a, d, 1).unwrap();
        g.add_edge(b, d, 2).unwrap();
        let bytes: Vec<u64> = g.incoming_edges(d).map(|e| e.bytes).collect();
        assert_eq!(bytes, vec![3, 1, 2], "scan order = insertion order");
        assert_eq!(g.predecessors(d).collect::<Vec<_>>(), vec![c, a, b]);
    }

    #[test]
    fn deadline_and_period_roundtrip() {
        let mut g = TaskGraph::new("g");
        assert_eq!(g.deadline(), None);
        g.set_deadline(1000);
        g.set_period(2000);
        assert_eq!(g.deadline(), Some(1000));
        assert_eq!(g.period(), Some(2000));
    }
}
