//! # codesign-ir
//!
//! Unified specification intermediate representation for mixed
//! hardware/software system design, after Adams & Thomas, *"The Design of
//! Mixed Hardware/Software Systems"*, DAC 1996.
//!
//! The paper observes that hardware and software "are typically described
//! and designed using different formalisms, languages, and tools", and that
//! co-synthesis requires "a unified understanding of hardware and software
//! functionality" (Section 3.2). This crate is that unified substrate. It
//! provides three views of a system, at the three granularities the
//! surveyed co-design flows operate on:
//!
//! * [`task::TaskGraph`] — coarse-grain tasks with per-target costs and
//!   inter-task data volumes, the input to heterogeneous-multiprocessor
//!   co-synthesis (paper Section 4.2) and to HW/SW partitioning
//!   (Section 3.3).
//! * [`cdfg::Cdfg`] — operation-level control/data-flow graphs, the input
//!   to behavioral synthesis and to ASIP instruction-set customization
//!   (Sections 4.3–4.5). CDFGs are *executable*: [`cdfg::Cdfg::evaluate`]
//!   interprets a graph on concrete inputs, giving every downstream
//!   implementation (compiled software, synthesized hardware) a functional
//!   reference to be verified against.
//! * [`process::ProcessNetwork`] — communicating sequential processes with
//!   `send`/`receive`/`wait` primitives, the abstraction at which
//!   message-level co-simulation models HW/SW interaction (Section 3.1,
//!   Figure 3 top) and at which multi-threaded co-processors are
//!   synthesized (Section 4.5.1).
//!
//! [`opt`] provides semantics-preserving CDFG rewrites (constant
//! folding, common-subexpression elimination, dead-code elimination)
//! that shrink a kernel on both sides of the HW/SW boundary.
//!
//! [`spec`] parses a small textual specification language covering all
//! three views, serving as the "common specification for the hardware and
//! software components" the paper attributes to Chinook (Section 4.1).
//! [`workload`] generates the synthetic workloads used by the experiment
//! harness: seeded TGFF-style random task graphs and a library of DSP
//! kernels expressed as CDFGs.
//!
//! ## Example
//!
//! ```
//! use codesign_ir::cdfg::Cdfg;
//! use codesign_ir::workload::kernels;
//!
//! # fn main() -> Result<(), codesign_ir::IrError> {
//! // An 8-tap FIR filter as a control/data-flow graph.
//! let fir = kernels::fir(8);
//! let inputs: Vec<i64> = (0..fir.input_count()).map(|i| i as i64).collect();
//! let outputs = fir.evaluate(&inputs)?;
//! assert_eq!(outputs.len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cdfg;
pub mod error;
pub mod opt;
pub mod process;
pub mod spec;
pub mod task;
pub mod workload;

pub use error::IrError;
