//! Seeded random task graphs and process networks (TGFF-style).
//!
//! Graphs are generated layer by layer: tasks are assigned to levels, and
//! edges connect earlier levels to later ones with a configurable
//! probability, which yields the series-parallel shapes typical of
//! embedded data-flow applications. All generation is deterministic in the
//! seed, so every experiment in the repository is reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::IrError;
use crate::process::{Action, Process, ProcessNetwork};
use crate::task::{Task, TaskGraph};

/// Rejects a probability that is not a finite number. Out-of-range but
/// finite values keep their historical clamp-to-`[0, 1]` behavior; `NaN`
/// and infinities used to survive `.clamp` and panic deep inside
/// `rand::gen_bool`, so they are configuration errors.
fn check_prob(field: &'static str, p: f64) -> Result<(), IrError> {
    if p.is_finite() {
        Ok(())
    } else {
        Err(IrError::Invalid {
            reason: format!("{field} must be a finite probability, got {p}"),
        })
    }
}

/// Rejects a reversed inclusive integer range, which used to panic
/// inside `rand::gen_range`.
fn check_range_u64(field: &'static str, (lo, hi): (u64, u64)) -> Result<(), IrError> {
    if lo <= hi {
        Ok(())
    } else {
        Err(IrError::Invalid {
            reason: format!("{field} range is reversed: ({lo}, {hi})"),
        })
    }
}

/// Rejects a reversed or non-finite inclusive float range (either used
/// to panic inside `rand::gen_range`).
fn check_range_f64(field: &'static str, (lo, hi): (f64, f64)) -> Result<(), IrError> {
    if !lo.is_finite() || !hi.is_finite() {
        return Err(IrError::Invalid {
            reason: format!("{field} range must be finite, got ({lo}, {hi})"),
        });
    }
    if lo > hi {
        return Err(IrError::Invalid {
            reason: format!("{field} range is reversed: ({lo}, {hi})"),
        });
    }
    Ok(())
}

/// Configuration for [`random_task_graph`].
#[derive(Debug, Clone, PartialEq)]
pub struct TgffConfig {
    /// Number of tasks to generate.
    pub tasks: usize,
    /// Maximum tasks per level (graph "width").
    pub width: usize,
    /// Probability of an edge between a task and each task of the next
    /// level, clamped to `[0, 1]`.
    pub edge_prob: f64,
    /// Inclusive range of software costs in cycles.
    pub sw_cycles: (u64, u64),
    /// Inclusive range of hardware speedups over software (hw cycles =
    /// sw / speedup).
    pub hw_speedup: (f64, f64),
    /// Inclusive range of hardware area per 100 software cycles.
    pub area_per_100_cycles: (f64, f64),
    /// Inclusive range of edge data volumes in bytes.
    pub bytes: (u64, u64),
    /// RNG seed; equal seeds produce equal graphs.
    pub seed: u64,
}

impl Default for TgffConfig {
    fn default() -> Self {
        TgffConfig {
            tasks: 20,
            width: 4,
            edge_prob: 0.4,
            sw_cycles: (500, 20_000),
            hw_speedup: (4.0, 20.0),
            area_per_100_cycles: (0.5, 2.0),
            bytes: (16, 1024),
            seed: 0xC0DE,
        }
    }
}

impl TgffConfig {
    /// Checks the configuration for values that would make generation
    /// panic: zero sizes, `NaN`/infinite probabilities, reversed or
    /// non-finite ranges, and non-positive hardware speedups.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Invalid`] naming the offending field.
    pub fn validate(&self) -> Result<(), IrError> {
        if self.tasks == 0 {
            return Err(IrError::Invalid {
                reason: "tasks must be positive".to_string(),
            });
        }
        if self.width == 0 {
            return Err(IrError::Invalid {
                reason: "width must be positive".to_string(),
            });
        }
        check_prob("edge_prob", self.edge_prob)?;
        check_range_u64("sw_cycles", self.sw_cycles)?;
        check_range_f64("hw_speedup", self.hw_speedup)?;
        if self.hw_speedup.0 <= 0.0 {
            return Err(IrError::Invalid {
                reason: format!("hw_speedup must be positive, got {}", self.hw_speedup.0),
            });
        }
        check_range_f64("area_per_100_cycles", self.area_per_100_cycles)?;
        check_range_u64("bytes", self.bytes)?;
        Ok(())
    }
}

/// Generates a random acyclic task graph.
///
/// The result is always connected enough to be interesting: every task in
/// level *k* > 0 receives at least one edge from level *k−1*, so the graph
/// has no spurious extra sources.
///
/// # Panics
///
/// Panics if the configuration fails [`TgffConfig::validate`]; use
/// [`try_random_task_graph`] to sweep untrusted configurations.
#[must_use]
pub fn random_task_graph(cfg: &TgffConfig) -> TaskGraph {
    try_random_task_graph(cfg).expect("invalid TgffConfig")
}

/// [`random_task_graph`] with up-front configuration validation instead
/// of panics, so fuzzers and conformance sweeps can safely explore
/// degenerate configurations (`NaN` probabilities, reversed ranges).
///
/// # Errors
///
/// Returns [`IrError::Invalid`] from [`TgffConfig::validate`].
pub fn try_random_task_graph(cfg: &TgffConfig) -> Result<TaskGraph, IrError> {
    cfg.validate()?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut g = TaskGraph::new(format!("tgff-{}-{}", cfg.tasks, cfg.seed));

    // Assign tasks to levels.
    let mut levels: Vec<Vec<crate::task::TaskId>> = vec![Vec::new()];
    for i in 0..cfg.tasks {
        let sw = rng.gen_range(cfg.sw_cycles.0..=cfg.sw_cycles.1);
        let speedup = rng.gen_range(cfg.hw_speedup.0..=cfg.hw_speedup.1);
        let area_rate = rng.gen_range(cfg.area_per_100_cycles.0..=cfg.area_per_100_cycles.1);
        let task = Task::new(format!("t{i}"), sw)
            .with_hw_cycles(((sw as f64 / speedup) as u64).max(1))
            .with_hw_area(sw as f64 / 100.0 * area_rate)
            .with_parallelism(rng.gen_range(0.0..=1.0))
            .with_modifiability(rng.gen_range(0.0..=1.0));
        let id = g.add_task(task);
        if levels.last().map(Vec::len) == Some(cfg.width) {
            levels.push(Vec::new());
        }
        levels.last_mut().expect("levels is never empty").push(id);
        // Randomly close a level early for irregular widths.
        if rng.gen_bool(0.3) && !levels.last().expect("non-empty").is_empty() {
            levels.push(Vec::new());
        }
    }
    levels.retain(|l| !l.is_empty());

    let p = cfg.edge_prob.clamp(0.0, 1.0);
    for w in levels.windows(2) {
        let (prev, next) = (&w[0], &w[1]);
        for &dst in next {
            let mut connected = false;
            for &src in prev {
                if rng.gen_bool(p) {
                    let bytes = rng.gen_range(cfg.bytes.0..=cfg.bytes.1);
                    g.add_edge(src, dst, bytes).expect("levels are acyclic");
                    connected = true;
                }
            }
            if !connected {
                let src = prev[rng.gen_range(0..prev.len())];
                let bytes = rng.gen_range(cfg.bytes.0..=cfg.bytes.1);
                g.add_edge(src, dst, bytes).expect("levels are acyclic");
            }
        }
    }
    Ok(g)
}

/// Configuration for [`random_process_network`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConfig {
    /// Number of processes.
    pub processes: usize,
    /// Probability of a channel between each earlier/later process pair,
    /// clamped to `[0, 1]`.
    pub channel_prob: f64,
    /// Inclusive range of per-action compute costs in cycles.
    pub compute: (u64, u64),
    /// Inclusive range of message sizes in bytes.
    pub bytes: (u64, u64),
    /// Iterations of every process body.
    pub iterations: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            processes: 6,
            channel_prob: 0.35,
            compute: (50, 2_000),
            bytes: (8, 256),
            iterations: 16,
            seed: 0xC0DE,
        }
    }
}

impl NetworkConfig {
    /// Checks the configuration for values that would make generation
    /// panic: fewer than two processes, `NaN`/infinite probabilities,
    /// or reversed ranges.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Invalid`] naming the offending field.
    pub fn validate(&self) -> Result<(), IrError> {
        if self.processes < 2 {
            return Err(IrError::Invalid {
                reason: "need at least two processes".to_string(),
            });
        }
        check_prob("channel_prob", self.channel_prob)?;
        check_range_u64("compute", self.compute)?;
        check_range_u64("bytes", self.bytes)?;
        // `iterations == 0` stays legal: `Process::with_iterations`
        // clamps it to one, matching the network's historical behavior.
        Ok(())
    }
}

/// Generates a random process network whose channel topology is a DAG over
/// the process indices (process *i* only sends to process *j* > *i*), so
/// the network is deadlock-free under rendezvous semantics when every
/// process performs its receives before its sends in each iteration.
///
/// Every process ends up with at least one channel, and each channel has
/// exactly one sender and one receiver, so [`ProcessNetwork::validate`]
/// always passes on the result.
///
/// # Panics
///
/// Panics if the configuration fails [`NetworkConfig::validate`]; use
/// [`try_random_process_network`] to sweep untrusted configurations.
#[must_use]
pub fn random_process_network(cfg: &NetworkConfig) -> ProcessNetwork {
    try_random_process_network(cfg).expect("invalid NetworkConfig")
}

/// [`random_process_network`] with up-front configuration validation
/// instead of panics.
///
/// # Errors
///
/// Returns [`IrError::Invalid`] from [`NetworkConfig::validate`].
pub fn try_random_process_network(cfg: &NetworkConfig) -> Result<ProcessNetwork, IrError> {
    cfg.validate()?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut net = ProcessNetwork::new(format!("net-{}-{}", cfg.processes, cfg.seed));

    // Decide the channel topology first.
    let mut outgoing: Vec<Vec<(usize, crate::process::ChannelId, u64)>> =
        vec![Vec::new(); cfg.processes];
    let mut incoming: Vec<Vec<crate::process::ChannelId>> = vec![Vec::new(); cfg.processes];
    let p = cfg.channel_prob.clamp(0.0, 1.0);
    // Indexed loops: `i`/`j` are process identities used on both sides
    // of several parallel arrays; iterator forms would obscure that.
    #[allow(clippy::needless_range_loop)]
    for i in 0..cfg.processes {
        for j in (i + 1)..cfg.processes {
            if rng.gen_bool(p) {
                let ch = net.add_channel(format!("ch_{i}_{j}"), 0);
                let bytes = rng.gen_range(cfg.bytes.0..=cfg.bytes.1);
                outgoing[i].push((j, ch, bytes));
                incoming[j].push(ch);
            }
        }
    }
    // Guarantee connectivity: each process except the first receives from
    // someone; each except the last sends to someone.
    #[allow(clippy::needless_range_loop)]
    for j in 1..cfg.processes {
        if incoming[j].is_empty() {
            let i = rng.gen_range(0..j);
            let ch = net.add_channel(format!("ch_{i}_{j}"), 0);
            let bytes = rng.gen_range(cfg.bytes.0..=cfg.bytes.1);
            outgoing[i].push((j, ch, bytes));
            incoming[j].push(ch);
        }
    }
    #[allow(clippy::needless_range_loop)]
    for i in 0..cfg.processes - 1 {
        if outgoing[i].is_empty() {
            let j = rng.gen_range(i + 1..cfg.processes);
            let ch = net.add_channel(format!("ch_{i}_{j}x"), 0);
            let bytes = rng.gen_range(cfg.bytes.0..=cfg.bytes.1);
            outgoing[i].push((j, ch, bytes));
            incoming[j].push(ch);
        }
    }

    #[allow(clippy::needless_range_loop)]
    for i in 0..cfg.processes {
        let mut actions = Vec::new();
        for &ch in &incoming[i] {
            actions.push(Action::Receive { channel: ch });
        }
        actions.push(Action::Compute(
            rng.gen_range(cfg.compute.0..=cfg.compute.1),
        ));
        for &(_, ch, bytes) in &outgoing[i] {
            actions.push(Action::Send { channel: ch, bytes });
        }
        net.add_process(Process::new(format!("p{i}"), actions).with_iterations(cfg.iterations));
    }
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_graph_is_valid_and_sized() {
        let cfg = TgffConfig {
            tasks: 30,
            ..TgffConfig::default()
        };
        let g = random_task_graph(&cfg);
        assert_eq!(g.len(), 30);
        g.validate().unwrap();
    }

    #[test]
    fn task_graph_is_deterministic_in_seed() {
        let cfg = TgffConfig::default();
        let a = random_task_graph(&cfg);
        let b = random_task_graph(&cfg);
        assert_eq!(a, b);
        let c = random_task_graph(&TgffConfig {
            seed: 99,
            ..cfg.clone()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn task_costs_within_configured_ranges() {
        let cfg = TgffConfig {
            tasks: 50,
            sw_cycles: (100, 200),
            ..TgffConfig::default()
        };
        let g = random_task_graph(&cfg);
        for (_, t) in g.iter() {
            assert!((100..=200).contains(&t.sw_cycles()));
            assert!(t.hw_cycles() <= t.sw_cycles());
        }
    }

    #[test]
    fn single_task_graph_has_no_edges() {
        let g = random_task_graph(&TgffConfig {
            tasks: 1,
            ..TgffConfig::default()
        });
        assert_eq!(g.len(), 1);
        assert!(g.edges().is_empty());
    }

    #[test]
    fn process_network_validates() {
        for seed in 0..10 {
            let net = random_process_network(&NetworkConfig {
                seed,
                ..NetworkConfig::default()
            });
            net.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn process_network_is_deterministic() {
        let cfg = NetworkConfig::default();
        assert_eq!(random_process_network(&cfg), random_process_network(&cfg));
    }

    #[test]
    fn nan_edge_prob_is_a_typed_error_not_a_panic() {
        // Regression: NaN survived `.clamp(0.0, 1.0)` and panicked deep
        // inside `rand::gen_bool`; now it is an up-front config error.
        let err = try_random_task_graph(&TgffConfig {
            edge_prob: f64::NAN,
            ..TgffConfig::default()
        })
        .unwrap_err();
        assert!(err.to_string().contains("edge_prob"), "{err}");
        let err = try_random_process_network(&NetworkConfig {
            channel_prob: f64::NAN,
            ..NetworkConfig::default()
        })
        .unwrap_err();
        assert!(err.to_string().contains("channel_prob"), "{err}");
    }

    #[test]
    fn reversed_ranges_are_typed_errors_not_panics() {
        // Regression: (200, 100) panicked inside `rand::gen_range`.
        let err = try_random_task_graph(&TgffConfig {
            sw_cycles: (200, 100),
            ..TgffConfig::default()
        })
        .unwrap_err();
        assert!(err.to_string().contains("sw_cycles"), "{err}");
        let err = try_random_task_graph(&TgffConfig {
            hw_speedup: (20.0, 4.0),
            ..TgffConfig::default()
        })
        .unwrap_err();
        assert!(err.to_string().contains("hw_speedup"), "{err}");
        let err = try_random_process_network(&NetworkConfig {
            bytes: (256, 8),
            ..NetworkConfig::default()
        })
        .unwrap_err();
        assert!(err.to_string().contains("bytes"), "{err}");
    }

    #[test]
    fn degenerate_but_legal_configs_generate() {
        // Point ranges, certain/impossible edges, width 1, single task.
        for edge_prob in [0.0, 1.0] {
            let g = try_random_task_graph(&TgffConfig {
                tasks: 5,
                width: 1,
                edge_prob,
                sw_cycles: (100, 100),
                hw_speedup: (4.0, 4.0),
                area_per_100_cycles: (1.0, 1.0),
                bytes: (16, 16),
                ..TgffConfig::default()
            })
            .unwrap();
            g.validate().unwrap();
        }
        let net = try_random_process_network(&NetworkConfig {
            processes: 2,
            channel_prob: 0.0,
            compute: (1, 1),
            bytes: (4, 4),
            ..NetworkConfig::default()
        })
        .unwrap();
        net.validate().unwrap();
    }

    #[test]
    fn out_of_range_finite_probability_still_clamps() {
        // Historical behavior preserved: 1.5 clamps to 1.0 rather than
        // erroring, so only non-finite values are config errors.
        let g = try_random_task_graph(&TgffConfig {
            edge_prob: 1.5,
            ..TgffConfig::default()
        })
        .unwrap();
        g.validate().unwrap();
    }

    #[test]
    fn network_has_requested_processes() {
        let net = random_process_network(&NetworkConfig {
            processes: 9,
            ..NetworkConfig::default()
        });
        assert_eq!(net.len(), 9);
        assert!(net.channel_count() >= 8, "connectivity guarantees edges");
    }
}
