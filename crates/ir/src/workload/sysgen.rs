//! Seeded random *system* specifications: bus topologies, memory maps,
//! IRQ wiring, and hardware/software placements.
//!
//! [`tgff`](super::tgff) generates behavior (task graphs, process
//! networks); this module generates the *structure* around behavior —
//! which devices exist, where they sit in the address map, which of them
//! raise interrupts, and how much traffic software pushes through each
//! one. A [`SystemSpec`] is pure data: `codesign-sim`'s conformance
//! harness realizes the same spec at every abstraction level of the
//! paper's Figure 3 (pin, register, driver, message) and checks that the
//! levels agree on architected observables.
//!
//! Generation is deterministic in the seed, and every knob has a
//! degenerate floor (one channel, one word, capacity one, drain period
//! one), so a shrinker can binary-search a failing specification down to
//! a minimal reproduction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::IrError;

/// Address bits decoded by the pin-level bus interface; generated memory
/// maps stay inside this window so every level decodes identically.
pub const ADDR_WINDOW_BITS: u32 = 16;

/// Every generated region is this many bytes and aligned to it, so the
/// pin-level power-of-two address decoder matches the transaction-level
/// map exactly.
pub const REGION_SIZE: u32 = 0x100;

/// Maximum receive bytes deliverable through the UART's bounded FIFO
/// without overrun (mirrors the RTL UART's capacity).
pub const MAX_IRQ_BYTES: u8 = 16;

/// Size knobs for [`random_system`]. Each `max_*` knob is an inclusive
/// upper bound on a per-channel draw with floor 1, which is what makes
/// the space shrinkable: lowering any knob only removes behavior.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SysConfig {
    /// Producer→FIFO pipelines in the system (1..=8).
    pub channels: usize,
    /// Iterations of the producer's outer loop.
    pub iterations: u32,
    /// Upper bound on words per message per channel.
    pub max_message_words: u64,
    /// Upper bound on producer compute cycles per channel per iteration.
    pub max_compute: u64,
    /// Upper bound on FIFO capacity in words.
    pub max_fifo_capacity: usize,
    /// Upper bound on FIFO drain period in cycles per word.
    pub max_drain_period: u64,
    /// Decoy devices (RAM / GPIO / idle timer) mapped but not part of
    /// any channel — they exercise address decode without traffic.
    pub extra_devices: usize,
    /// Upper bound on UART receive bytes delivered through the IRQ
    /// handler (0 disables IRQ wiring entirely).
    pub max_irq_bytes: u8,
    /// RNG seed; equal seeds produce equal systems.
    pub seed: u64,
}

impl Default for SysConfig {
    fn default() -> Self {
        SysConfig {
            channels: 3,
            iterations: 4,
            max_message_words: 16,
            max_compute: 200,
            max_fifo_capacity: 16,
            max_drain_period: 12,
            extra_devices: 2,
            max_irq_bytes: 6,
            seed: 0xC0DE,
        }
    }
}

impl SysConfig {
    /// Checks the knobs for values generation cannot honor.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Invalid`] naming the offending field.
    pub fn validate(&self) -> Result<(), IrError> {
        let fail = |reason: String| Err(IrError::Invalid { reason });
        if self.channels == 0 || self.channels > 8 {
            return fail(format!("channels must be in 1..=8, got {}", self.channels));
        }
        if self.iterations == 0 {
            return fail("iterations must be positive".to_string());
        }
        if self.max_message_words == 0 {
            return fail("max_message_words must be positive".to_string());
        }
        if self.max_fifo_capacity == 0 {
            return fail("max_fifo_capacity must be positive".to_string());
        }
        if self.max_drain_period == 0 {
            return fail("max_drain_period must be positive".to_string());
        }
        if self.max_irq_bytes > MAX_IRQ_BYTES {
            return fail(format!(
                "max_irq_bytes must be <= {MAX_IRQ_BYTES}, got {}",
                self.max_irq_bytes
            ));
        }
        if self.extra_devices > 16 {
            return fail(format!(
                "extra_devices must be <= 16, got {}",
                self.extra_devices
            ));
        }
        Ok(())
    }
}

/// What kind of device a memory region holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceKind {
    /// A self-draining FIFO: the hardware consumer of one channel.
    Fifo {
        /// Capacity in 32-bit words.
        capacity: usize,
        /// Cycles per drained word.
        drain_period: u64,
    },
    /// Scratch RAM (decoy or checksum target).
    Ram,
    /// General-purpose I/O block (decoy).
    Gpio,
    /// A timer that is mapped but never enabled (decoy).
    Timer,
    /// A UART whose receive queue is preloaded with `irq_rx` bytes; the
    /// software drains them through its interrupt handler, so the number
    /// of interrupts taken is architected (one per byte), not a function
    /// of cycle-level timing.
    Uart {
        /// Bytes injected before reset, delivered via the rx IRQ.
        irq_rx: Vec<u8>,
    },
}

impl DeviceKind {
    /// Short device-class name for reports.
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            DeviceKind::Fifo { .. } => "fifo",
            DeviceKind::Ram => "ram",
            DeviceKind::Gpio => "gpio",
            DeviceKind::Timer => "timer",
            DeviceKind::Uart { .. } => "uart",
        }
    }
}

/// One entry of the generated memory map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemRegion {
    /// Device kind behind the region.
    pub kind: DeviceKind,
    /// Base address on the system bus.
    pub base: u32,
    /// Region size in bytes.
    pub size: u32,
}

/// One producer→FIFO pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelSpec {
    /// Index into [`SystemSpec::regions`] of the channel's FIFO.
    pub region: usize,
    /// Words per message.
    pub words: u64,
    /// Producer compute cycles preceding each message.
    pub compute: u64,
    /// Hardware unit the consumer is placed on (placement diversity for
    /// the message level; the producer is always software).
    pub hw_unit: u32,
}

/// A complete generated system: memory map, IRQ wiring, channels, and
/// placement — the structural counterpart of a process network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemSpec {
    /// Human-readable name (embeds the seed).
    pub name: String,
    /// The memory map, in generation order.
    pub regions: Vec<MemRegion>,
    /// The traffic-carrying channels.
    pub channels: Vec<ChannelSpec>,
    /// Producer outer-loop iterations.
    pub iterations: u32,
    /// The seed that generated this spec.
    pub seed: u64,
}

impl SystemSpec {
    /// Total payload bytes each channel carries end to end.
    #[must_use]
    pub fn channel_bytes(&self, channel: usize) -> u64 {
        self.channels
            .get(channel)
            .map_or(0, |c| u64::from(self.iterations) * c.words * 4)
    }

    /// The architected interrupt count: one per preloaded UART byte.
    #[must_use]
    pub fn irq_count(&self) -> u64 {
        self.regions
            .iter()
            .map(|r| match &r.kind {
                DeviceKind::Uart { irq_rx } => irq_rx.len() as u64,
                _ => 0,
            })
            .sum()
    }

    /// Structural validation: regions must be non-empty, aligned,
    /// non-overlapping, and inside the decoded address window; every
    /// channel must reference a FIFO region and carry at least one word.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Invalid`] describing the first violation.
    pub fn validate(&self) -> Result<(), IrError> {
        let fail = |reason: String| Err(IrError::Invalid { reason });
        if self.regions.is_empty() {
            return fail("system has no regions".to_string());
        }
        let window = 1u64 << ADDR_WINDOW_BITS;
        let mut spans: Vec<(u32, u32)> = Vec::new();
        for (i, r) in self.regions.iter().enumerate() {
            if r.size == 0 || !r.size.is_power_of_two() || !r.base.is_multiple_of(r.size) {
                return fail(format!(
                    "region {i} ({}) is not power-of-two aligned: base {:#x} size {:#x}",
                    r.kind.class(),
                    r.base,
                    r.size
                ));
            }
            if u64::from(r.base) + u64::from(r.size) > window {
                return fail(format!(
                    "region {i} ({}) leaves the {ADDR_WINDOW_BITS}-bit window",
                    r.kind.class()
                ));
            }
            if let DeviceKind::Fifo {
                capacity,
                drain_period,
            } = r.kind
            {
                if capacity == 0 || drain_period == 0 {
                    return fail(format!("region {i}: degenerate fifo"));
                }
            }
            if let DeviceKind::Uart { irq_rx } = &r.kind {
                if irq_rx.len() > MAX_IRQ_BYTES as usize {
                    return fail(format!(
                        "region {i}: {} irq bytes exceed the UART depth {MAX_IRQ_BYTES}",
                        irq_rx.len()
                    ));
                }
            }
            spans.push((r.base, r.base + r.size));
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            if w[1].0 < w[0].1 {
                return fail(format!(
                    "regions overlap at [{:#x}, {:#x}) / [{:#x}, {:#x})",
                    w[0].0, w[0].1, w[1].0, w[1].1
                ));
            }
        }
        if self.channels.is_empty() {
            return fail("system has no channels".to_string());
        }
        for (i, c) in self.channels.iter().enumerate() {
            let Some(region) = self.regions.get(c.region) else {
                return fail(format!(
                    "channel {i} references missing region {}",
                    c.region
                ));
            };
            if !matches!(region.kind, DeviceKind::Fifo { .. }) {
                return fail(format!(
                    "channel {i} references a {} region, not a fifo",
                    region.kind.class()
                ));
            }
            if c.words == 0 {
                return fail(format!("channel {i} carries zero words"));
            }
        }
        if self.iterations == 0 {
            return fail("iterations must be positive".to_string());
        }
        Ok(())
    }
}

/// Draws a random base slot for a `REGION_SIZE`-sized region, removing
/// it from the free list so regions never overlap.
fn draw_slot(rng: &mut StdRng, free: &mut Vec<u32>) -> u32 {
    let i = rng.gen_range(0..free.len());
    free.swap_remove(i) * REGION_SIZE
}

/// Generates a random system: a memory map of FIFO channels, an optional
/// IRQ-wired UART, and decoy devices at distinct random bases.
///
/// # Errors
///
/// Returns [`IrError::Invalid`] from [`SysConfig::validate`].
pub fn random_system(cfg: &SysConfig) -> Result<SystemSpec, IrError> {
    cfg.validate()?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Leave slot 0xFF free headroom so `base + size` never touches the
    // window edge; plenty of slots remain for 8 channels + 16 decoys.
    let mut free: Vec<u32> = (0..((1u32 << ADDR_WINDOW_BITS) / REGION_SIZE) - 1).collect();
    let mut regions = Vec::new();
    let mut channels = Vec::new();

    for _ in 0..cfg.channels {
        let capacity = rng.gen_range(1..=cfg.max_fifo_capacity);
        let drain_period = rng.gen_range(1..=cfg.max_drain_period);
        let base = draw_slot(&mut rng, &mut free);
        let region = regions.len();
        regions.push(MemRegion {
            kind: DeviceKind::Fifo {
                capacity,
                drain_period,
            },
            base,
            size: REGION_SIZE,
        });
        channels.push(ChannelSpec {
            region,
            words: rng.gen_range(1..=cfg.max_message_words),
            compute: rng.gen_range(0..=cfg.max_compute),
            hw_unit: rng.gen_range(0..2),
        });
    }

    if cfg.max_irq_bytes > 0 {
        let n = rng.gen_range(0..=cfg.max_irq_bytes);
        if n > 0 {
            let irq_rx: Vec<u8> = (0..n).map(|_| rng.gen_range(1..=255u8)).collect();
            let base = draw_slot(&mut rng, &mut free);
            regions.push(MemRegion {
                kind: DeviceKind::Uart { irq_rx },
                base,
                size: REGION_SIZE,
            });
        }
    }

    for _ in 0..cfg.extra_devices {
        let kind = match rng.gen_range(0..3) {
            0 => DeviceKind::Ram,
            1 => DeviceKind::Gpio,
            _ => DeviceKind::Timer,
        };
        let base = draw_slot(&mut rng, &mut free);
        regions.push(MemRegion {
            kind,
            base,
            size: REGION_SIZE,
        });
    }

    let spec = SystemSpec {
        name: format!("sys-{:#x}", cfg.seed),
        regions,
        channels,
        iterations: cfg.iterations,
        seed: cfg.seed,
    };
    debug_assert!(spec.validate().is_ok());
    Ok(spec)
}

/// A seeded random hardware/software placement for an `n`-process
/// network: `true` means hardware. Process 0 is always software (the
/// paper's Type I systems keep the control loop on the CPU), and the
/// draw is deterministic in the seed.
#[must_use]
pub fn random_placement_flags(n: usize, seed: u64) -> Vec<bool> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|i| i != 0 && rng.gen_bool(0.5)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_seed() {
        let cfg = SysConfig::default();
        assert_eq!(random_system(&cfg).unwrap(), random_system(&cfg).unwrap());
        let other = random_system(&SysConfig { seed: 7, ..cfg }).unwrap();
        assert_ne!(random_system(&SysConfig::default()).unwrap(), other);
    }

    #[test]
    fn generated_systems_validate_across_seeds() {
        for seed in 0..50 {
            let spec = random_system(&SysConfig {
                seed,
                ..SysConfig::default()
            })
            .unwrap();
            spec.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn degenerate_floor_generates_minimal_system() {
        let spec = random_system(&SysConfig {
            channels: 1,
            iterations: 1,
            max_message_words: 1,
            max_compute: 0,
            max_fifo_capacity: 1,
            max_drain_period: 1,
            extra_devices: 0,
            max_irq_bytes: 0,
            seed: 0,
        })
        .unwrap();
        spec.validate().unwrap();
        assert_eq!(spec.regions.len(), 1);
        assert_eq!(spec.channels[0].words, 1);
        assert_eq!(spec.channel_bytes(0), 4);
        assert_eq!(spec.irq_count(), 0);
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        for cfg in [
            SysConfig {
                channels: 0,
                ..SysConfig::default()
            },
            SysConfig {
                iterations: 0,
                ..SysConfig::default()
            },
            SysConfig {
                max_message_words: 0,
                ..SysConfig::default()
            },
            SysConfig {
                max_irq_bytes: MAX_IRQ_BYTES + 1,
                ..SysConfig::default()
            },
        ] {
            assert!(matches!(random_system(&cfg), Err(IrError::Invalid { .. })));
        }
    }

    #[test]
    fn irq_count_matches_preloaded_bytes() {
        let spec = random_system(&SysConfig {
            max_irq_bytes: MAX_IRQ_BYTES,
            seed: 3,
            ..SysConfig::default()
        })
        .unwrap();
        let uart_bytes: u64 = spec
            .regions
            .iter()
            .filter_map(|r| match &r.kind {
                DeviceKind::Uart { irq_rx } => Some(irq_rx.len() as u64),
                _ => None,
            })
            .sum();
        assert_eq!(spec.irq_count(), uart_bytes);
    }

    #[test]
    fn placement_flags_deterministic_and_sw_rooted() {
        let a = random_placement_flags(10, 42);
        assert_eq!(a, random_placement_flags(10, 42));
        assert!(!a[0], "process 0 stays software");
    }
}
