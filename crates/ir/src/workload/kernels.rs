//! A library of DSP and embedded kernels as executable CDFGs.
//!
//! These are the workloads the paper's co-processor literature evaluates
//! on: filters, transforms, and bit-twiddling inner loops whose
//! "performance-critical regions" are candidates for hardware (Sections
//! 4.3–4.5). Every kernel is pure data flow, so it can be compiled to
//! software by `codesign-isa`, synthesized to an FSMD by `codesign-hls`,
//! and — because [`crate::cdfg::Cdfg::evaluate`] interprets it — used as a
//! functional reference for both.

use crate::cdfg::{Cdfg, OpId, OpKind};

/// Coefficients used by [`fir`]: a small deterministic, non-trivial set.
#[must_use]
pub fn fir_coefficients(taps: usize) -> Vec<i64> {
    (0..taps).map(|i| ((i as i64 % 7) + 1) * 3 - 10).collect()
}

/// An n-tap FIR filter: `y = Σ cᵢ·xᵢ` with the constant coefficients of
/// [`fir_coefficients`]. `taps` inputs, one output.
///
/// # Panics
///
/// Panics if `taps == 0`.
#[must_use]
pub fn fir(taps: usize) -> Cdfg {
    assert!(taps > 0, "fir needs at least one tap");
    let mut g = Cdfg::new(format!("fir{taps}"));
    let coeffs = fir_coefficients(taps);
    let xs: Vec<OpId> = (0..taps).map(|_| g.input()).collect();
    let mut acc: Option<OpId> = None;
    for (x, c) in xs.iter().zip(coeffs) {
        let c = g.constant(c);
        let prod = g.op(OpKind::Mul, &[*x, c]).expect("valid mul");
        acc = Some(match acc {
            None => prod,
            Some(a) => g.op(OpKind::Add, &[a, prod]).expect("valid add"),
        });
    }
    g.output(acc.expect("taps > 0")).expect("valid output");
    g
}

/// Integer biquad IIR section:
/// `y = b0·x0 + b1·x1 + b2·x2 − a1·y1 − a2·y2` with fixed integer
/// coefficients `(b0,b1,b2,a1,a2) = (5,8,5,−3,2)`.
/// Inputs `x0,x1,x2,y1,y2`; one output.
#[must_use]
pub fn iir_biquad() -> Cdfg {
    let mut g = Cdfg::new("iir_biquad");
    let inputs: Vec<OpId> = (0..5).map(|_| g.input()).collect();
    let coeffs = [5i64, 8, 5, -3, 2];
    let mut acc: Option<OpId> = None;
    for (idx, (&x, c)) in inputs.iter().zip(coeffs).enumerate() {
        let c = g.constant(c);
        let prod = g.op(OpKind::Mul, &[x, c]).expect("valid mul");
        acc = Some(match acc {
            None => prod,
            Some(a) => {
                // Feedback terms are subtracted.
                let kind = if idx >= 3 { OpKind::Sub } else { OpKind::Add };
                g.op(kind, &[a, prod]).expect("valid op")
            }
        });
    }
    g.output(acc.expect("non-empty")).expect("valid output");
    g
}

/// 4-point decimation-in-time FFT over the integers (twiddles are `1` and
/// `−j`, so the transform is exact). Inputs `re0..re3, im0..im3`; outputs
/// `RE0..RE3, IM0..IM3`.
#[must_use]
pub fn fft4() -> Cdfg {
    let mut g = Cdfg::new("fft4");
    let re: Vec<OpId> = (0..4).map(|_| g.input()).collect();
    let im: Vec<OpId> = (0..4).map(|_| g.input()).collect();
    let add = |g: &mut Cdfg, a, b| g.op(OpKind::Add, &[a, b]).expect("valid add");
    let sub = |g: &mut Cdfg, a, b| g.op(OpKind::Sub, &[a, b]).expect("valid sub");

    // Stage 1: butterflies on (0,2) and (1,3).
    let a_re = add(&mut g, re[0], re[2]);
    let a_im = add(&mut g, im[0], im[2]);
    let b_re = sub(&mut g, re[0], re[2]);
    let b_im = sub(&mut g, im[0], im[2]);
    let c_re = add(&mut g, re[1], re[3]);
    let c_im = add(&mut g, im[1], im[3]);
    let d_re = sub(&mut g, re[1], re[3]);
    let d_im = sub(&mut g, im[1], im[3]);

    // Stage 2: X0 = a + c, X2 = a − c, X1 = b − j·d, X3 = b + j·d.
    // −j·(d_re + j·d_im) = d_im − j·d_re.
    let x0_re = add(&mut g, a_re, c_re);
    let x0_im = add(&mut g, a_im, c_im);
    let x2_re = sub(&mut g, a_re, c_re);
    let x2_im = sub(&mut g, a_im, c_im);
    let x1_re = add(&mut g, b_re, d_im);
    let x1_im = sub(&mut g, b_im, d_re);
    let x3_re = sub(&mut g, b_re, d_im);
    let x3_im = add(&mut g, b_im, d_re);

    for v in [x0_re, x1_re, x2_re, x3_re, x0_im, x1_im, x2_im, x3_im] {
        g.output(v).expect("valid output");
    }
    g
}

/// The integer DCT-II coefficient matrix used by [`dct8`], scaled by 64
/// and rounded (the classic "integer DCT" approximation).
#[must_use]
pub fn dct8_matrix() -> [[i64; 8]; 8] {
    let mut m = [[0i64; 8]; 8];
    for (k, row) in m.iter_mut().enumerate() {
        for (n, cell) in row.iter_mut().enumerate() {
            let angle = std::f64::consts::PI / 8.0 * (n as f64 + 0.5) * k as f64;
            *cell = (angle.cos() * 64.0).round() as i64;
        }
    }
    m
}

/// 8-point integer DCT-II: `Yₖ = Σₙ C[k][n]·xₙ` with the matrix of
/// [`dct8_matrix`]. 8 inputs, 8 outputs.
#[must_use]
pub fn dct8() -> Cdfg {
    let mut g = Cdfg::new("dct8");
    let xs: Vec<OpId> = (0..8).map(|_| g.input()).collect();
    let m = dct8_matrix();
    for row in &m {
        let mut acc: Option<OpId> = None;
        for (&x, &c) in xs.iter().zip(row) {
            let c = g.constant(c);
            let prod = g.op(OpKind::Mul, &[x, c]).expect("valid mul");
            acc = Some(match acc {
                None => prod,
                Some(a) => g.op(OpKind::Add, &[a, prod]).expect("valid add"),
            });
        }
        g.output(acc.expect("8 terms")).expect("valid output");
    }
    g
}

/// Dense n×n integer matrix multiply `C = A·B`. Inputs are A then B in
/// row-major order (`2n²` inputs), outputs are C row-major (`n²` outputs).
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn matmul(n: usize) -> Cdfg {
    assert!(n > 0, "matmul needs n > 0");
    let mut g = Cdfg::new(format!("matmul{n}"));
    let a: Vec<OpId> = (0..n * n).map(|_| g.input()).collect();
    let b: Vec<OpId> = (0..n * n).map(|_| g.input()).collect();
    for i in 0..n {
        for j in 0..n {
            let mut acc: Option<OpId> = None;
            for k in 0..n {
                let prod = g
                    .op(OpKind::Mul, &[a[i * n + k], b[k * n + j]])
                    .expect("valid mul");
                acc = Some(match acc {
                    None => prod,
                    Some(s) => g.op(OpKind::Add, &[s, prod]).expect("valid add"),
                });
            }
            g.output(acc.expect("n > 0")).expect("valid output");
        }
    }
    g
}

/// The polynomial used by [`crc32_byte`] (IEEE 802.3, reflected).
pub const CRC32_POLY: i64 = 0xEDB8_8320;

/// One byte of reflected CRC-32: eight unrolled rounds of
/// `crc = (crc >> 1) ^ (POLY & −((crc ^ bitᵢ) & 1))` over inputs
/// `crc, byte`; one output (the updated CRC). A bit-twiddling kernel with
/// no multiplies — the kind of control-dominated code the paper notes has
/// a software "affinity" unless latency forces it to hardware.
#[must_use]
pub fn crc32_byte() -> Cdfg {
    let mut g = Cdfg::new("crc32_byte");
    let crc_in = g.input();
    let byte = g.input();
    let one = g.constant(1);
    let poly = g.constant(CRC32_POLY);
    let mask32 = g.constant(0xFFFF_FFFF);
    let mut crc = g.op(OpKind::And, &[crc_in, mask32]).expect("valid and");
    for i in 0..8 {
        let shift = g.constant(i);
        let bit = g.op(OpKind::Shr, &[byte, shift]).expect("valid shr");
        let bit = g.op(OpKind::And, &[bit, one]).expect("valid and");
        let mixed = g.op(OpKind::Xor, &[crc, bit]).expect("valid xor");
        let lsb = g.op(OpKind::And, &[mixed, one]).expect("valid and");
        let mask = g.op(OpKind::Neg, &[lsb]).expect("valid neg");
        let term = g.op(OpKind::And, &[poly, mask]).expect("valid and");
        let shifted = g.op(OpKind::Shr, &[crc, one]).expect("valid shr");
        let shifted = g.op(OpKind::And, &[shifted, mask32]).expect("valid and");
        crc = g.op(OpKind::Xor, &[shifted, term]).expect("valid xor");
        crc = g.op(OpKind::And, &[crc, mask32]).expect("valid and");
    }
    g.output(crc).expect("valid output");
    g
}

/// 3×3 Sobel gradient magnitude (L1 approximation): inputs are the nine
/// pixels `p0..p8` row-major, output is `|gx| + |gy|`.
#[must_use]
pub fn sobel3x3() -> Cdfg {
    let mut g = Cdfg::new("sobel3x3");
    let p: Vec<OpId> = (0..9).map(|_| g.input()).collect();
    let two = g.constant(2);
    let dbl = |g: &mut Cdfg, v| g.op(OpKind::Mul, &[v, two]).expect("valid mul");
    let add = |g: &mut Cdfg, a, b| g.op(OpKind::Add, &[a, b]).expect("valid add");
    let sub = |g: &mut Cdfg, a, b| g.op(OpKind::Sub, &[a, b]).expect("valid sub");

    // gx = (p2 + 2·p5 + p8) − (p0 + 2·p3 + p6)
    let p5x2 = dbl(&mut g, p[5]);
    let right = add(&mut g, p[2], p5x2);
    let right = add(&mut g, right, p[8]);
    let p3x2 = dbl(&mut g, p[3]);
    let left = add(&mut g, p[0], p3x2);
    let left = add(&mut g, left, p[6]);
    let gx = sub(&mut g, right, left);

    // gy = (p0 + 2·p1 + p2) − (p6 + 2·p7 + p8)
    let p1x2 = dbl(&mut g, p[1]);
    let top = add(&mut g, p[0], p1x2);
    let top = add(&mut g, top, p[2]);
    let p7x2 = dbl(&mut g, p[7]);
    let bottom = add(&mut g, p[6], p7x2);
    let bottom = add(&mut g, bottom, p[8]);
    let gy = sub(&mut g, top, bottom);

    let ax = g.op(OpKind::Abs, &[gx]).expect("valid abs");
    let ay = g.op(OpKind::Abs, &[gy]).expect("valid abs");
    let mag = add(&mut g, ax, ay);
    g.output(mag).expect("valid output");
    g
}

/// Fixed-point quantizer: `y = clamp((x·13) >> 4, −128, 127)`. One input,
/// one output.
#[must_use]
pub fn quantize() -> Cdfg {
    let mut g = Cdfg::new("quantize");
    let x = g.input();
    let scale = g.constant(13);
    let shift = g.constant(4);
    let lo = g.constant(-128);
    let hi = g.constant(127);
    let scaled = g.op(OpKind::Mul, &[x, scale]).expect("valid mul");
    let shifted = g.op(OpKind::Shr, &[scaled, shift]).expect("valid shr");
    let clipped = g.op(OpKind::Max, &[shifted, lo]).expect("valid max");
    let clipped = g.op(OpKind::Min, &[clipped, hi]).expect("valid min");
    g.output(clipped).expect("valid output");
    g
}

/// Dot product of two n-vectors: `2n` inputs (a then b), one output.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn dotprod(n: usize) -> Cdfg {
    assert!(n > 0, "dotprod needs n > 0");
    let mut g = Cdfg::new(format!("dotprod{n}"));
    let a: Vec<OpId> = (0..n).map(|_| g.input()).collect();
    let b: Vec<OpId> = (0..n).map(|_| g.input()).collect();
    let mut acc: Option<OpId> = None;
    for (&x, &y) in a.iter().zip(&b) {
        let prod = g.op(OpKind::Mul, &[x, y]).expect("valid mul");
        acc = Some(match acc {
            None => prod,
            Some(s) => g.op(OpKind::Add, &[s, prod]).expect("valid add"),
        });
    }
    g.output(acc.expect("n > 0")).expect("valid output");
    g
}

/// Coefficients used by [`horner`].
#[must_use]
pub fn horner_coefficients(degree: usize) -> Vec<i64> {
    (0..=degree).map(|i| (i as i64) * 2 - 3).collect()
}

/// Horner evaluation of a fixed degree-n polynomial at the single input
/// `x`, with the coefficients of [`horner_coefficients`] (highest first).
#[must_use]
pub fn horner(degree: usize) -> Cdfg {
    let mut g = Cdfg::new(format!("horner{degree}"));
    let x = g.input();
    let coeffs = horner_coefficients(degree);
    let mut acc = g.constant(coeffs[0]);
    for &c in &coeffs[1..] {
        let prod = g.op(OpKind::Mul, &[acc, x]).expect("valid mul");
        let c = g.constant(c);
        acc = g.op(OpKind::Add, &[prod, c]).expect("valid add");
    }
    g.output(acc).expect("valid output");
    g
}

/// All kernels at their default sizes, for sweep experiments.
#[must_use]
pub fn all() -> Vec<Cdfg> {
    vec![
        fir(8),
        iir_biquad(),
        fft4(),
        dct8(),
        matmul(3),
        crc32_byte(),
        sobel3x3(),
        quantize(),
        dotprod(8),
        horner(6),
    ]
}

/// Looks up a default-size kernel by the name used in task `kernel=`
/// attributes (`"fir"`, `"iir"`, `"fft4"`, `"dct8"`, `"matmul"`, `"crc32"`,
/// `"sobel"`, `"quantize"`, `"dotprod"`, `"horner"`).
#[must_use]
pub fn by_name(name: &str) -> Option<Cdfg> {
    match name {
        "fir" => Some(fir(8)),
        "iir" => Some(iir_biquad()),
        "fft4" => Some(fft4()),
        "dct8" => Some(dct8()),
        "matmul" => Some(matmul(3)),
        "crc32" => Some(crc32_byte()),
        "sobel" => Some(sobel3x3()),
        "quantize" => Some(quantize()),
        "dotprod" => Some(dotprod(8)),
        "horner" => Some(horner(6)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fir_matches_reference() {
        let g = fir(8);
        let xs: Vec<i64> = vec![1, -2, 3, -4, 5, -6, 7, -8];
        let want: i64 = xs.iter().zip(fir_coefficients(8)).map(|(x, c)| x * c).sum();
        assert_eq!(g.evaluate(&xs).unwrap(), vec![want]);
    }

    #[test]
    fn iir_matches_reference() {
        let g = iir_biquad();
        let (x0, x1, x2, y1, y2) = (10i64, -3, 7, 2, -5);
        let want = 5 * x0 + 8 * x1 + 5 * x2 - (-3) * y1 - 2 * y2;
        assert_eq!(g.evaluate(&[x0, x1, x2, y1, y2]).unwrap(), vec![want]);
    }

    #[test]
    fn fft4_matches_dft() {
        let g = fft4();
        let re = [3i64, -1, 4, 1];
        let im = [5i64, 9, -2, 6];
        let inputs: Vec<i64> = re.iter().chain(im.iter()).copied().collect();
        let got = g.evaluate(&inputs).unwrap();
        // Direct integer DFT with exact twiddles for N = 4.
        for k in 0..4usize {
            let (mut wre, mut wim) = (0i64, 0i64);
            for n in 0..4usize {
                // w = exp(-2πi·kn/4) cycles through (1,0),(0,-1),(-1,0),(0,1).
                let (c, s) = match (k * n) % 4 {
                    0 => (1, 0),
                    1 => (0, -1),
                    2 => (-1, 0),
                    _ => (0, 1),
                };
                wre += re[n] * c - im[n] * s;
                wim += re[n] * s + im[n] * c;
            }
            assert_eq!(got[k], wre, "re[{k}]");
            assert_eq!(got[4 + k], wim, "im[{k}]");
        }
    }

    #[test]
    fn dct8_matches_matrix() {
        let g = dct8();
        let xs = [12i64, -7, 3, 0, 44, -9, 1, 8];
        let m = dct8_matrix();
        let got = g.evaluate(&xs).unwrap();
        for k in 0..8 {
            let want: i64 = (0..8).map(|n| m[k][n] * xs[n]).sum();
            assert_eq!(got[k], want, "row {k}");
        }
    }

    #[test]
    fn matmul_matches_reference() {
        let n = 3;
        let g = matmul(n);
        let a: Vec<i64> = (1..=9).collect();
        let b: Vec<i64> = (1..=9).map(|x| 10 - x).collect();
        let inputs: Vec<i64> = a.iter().chain(b.iter()).copied().collect();
        let got = g.evaluate(&inputs).unwrap();
        for i in 0..n {
            for j in 0..n {
                let want: i64 = (0..n).map(|k| a[i * n + k] * b[k * n + j]).sum();
                assert_eq!(got[i * n + j], want, "c[{i}][{j}]");
            }
        }
    }

    #[test]
    fn crc32_matches_reference() {
        fn crc32_ref(crc: u32, byte: u8) -> u32 {
            let mut crc = crc;
            for i in 0..8 {
                let bit = u32::from((byte >> i) & 1);
                let mixed = (crc ^ bit) & 1;
                crc = (crc >> 1) ^ (0xEDB8_8320u32 & mixed.wrapping_neg());
            }
            crc
        }
        let g = crc32_byte();
        for (crc, byte) in [(0xFFFF_FFFFu32, 0x31u8), (0x1234_5678, 0xFF), (0, 0)] {
            let got = g.evaluate(&[i64::from(crc), i64::from(byte)]).unwrap();
            assert_eq!(got, vec![i64::from(crc32_ref(crc, byte))]);
        }
    }

    #[test]
    fn sobel_matches_reference() {
        let g = sobel3x3();
        let p = [10i64, 20, 30, 40, 50, 60, 70, 80, 90];
        let gx = (p[2] + 2 * p[5] + p[8]) - (p[0] + 2 * p[3] + p[6]);
        let gy = (p[0] + 2 * p[1] + p[2]) - (p[6] + 2 * p[7] + p[8]);
        assert_eq!(g.evaluate(&p).unwrap(), vec![gx.abs() + gy.abs()]);
    }

    #[test]
    fn quantize_clamps() {
        let g = quantize();
        assert_eq!(g.evaluate(&[16]).unwrap(), vec![13]);
        assert_eq!(g.evaluate(&[100_000]).unwrap(), vec![127]);
        assert_eq!(g.evaluate(&[-100_000]).unwrap(), vec![-128]);
    }

    #[test]
    fn dotprod_matches_reference() {
        let g = dotprod(5);
        let a = [1i64, 2, 3, 4, 5];
        let b = [5i64, 4, 3, 2, 1];
        let inputs: Vec<i64> = a.iter().chain(b.iter()).copied().collect();
        let want: i64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert_eq!(g.evaluate(&inputs).unwrap(), vec![want]);
    }

    #[test]
    fn horner_matches_reference() {
        let g = horner(4);
        let coeffs = horner_coefficients(4);
        let x = 3i64;
        let want = coeffs.iter().fold(0i64, |acc, &c| acc * x + c);
        assert_eq!(g.evaluate(&[x]).unwrap(), vec![want]);
    }

    #[test]
    fn all_kernels_evaluate_on_zero_inputs() {
        for k in all() {
            let zeros = vec![0i64; k.input_count()];
            let out = k
                .evaluate(&zeros)
                .unwrap_or_else(|e| panic!("{}: {e}", k.name()));
            assert_eq!(out.len(), k.output_count(), "{}", k.name());
        }
    }

    #[test]
    fn by_name_covers_all_kernels() {
        for name in [
            "fir", "iir", "fft4", "dct8", "matmul", "crc32", "sobel", "quantize", "dotprod",
            "horner",
        ] {
            assert!(by_name(name).is_some(), "{name}");
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn kernels_have_distinct_resource_profiles() {
        // crc32 is logic-heavy with zero multiplies; fir is multiply-heavy.
        let crc = crc32_byte();
        let [_, mul, _, logic] = crc.class_histogram();
        assert_eq!(mul, 0);
        assert!(logic > 10);
        let fir = fir(8);
        let [_, mul, _, _] = fir.class_histogram();
        assert_eq!(mul, 8);
    }
}
