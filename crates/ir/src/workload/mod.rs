//! Synthetic workload generation.
//!
//! The paper's surveyed flows are evaluated on embedded task sets and DSP
//! applications. Lacking the authors' proprietary examples, this module
//! provides the two standard stand-ins used across the cited literature:
//!
//! * [`tgff`] — seeded random task graphs and process networks in the
//!   style of the TGFF generator, for the multiprocessor co-synthesis and
//!   partitioning experiments (paper Sections 4.2, 4.5);
//! * [`kernels`] — a library of DSP and embedded kernels expressed as
//!   executable CDFGs (FIR, IIR, FFT, DCT, matrix multiply, CRC, Sobel,
//!   quantization, dot product, Horner polynomial evaluation), for the
//!   ASIP and co-processor experiments (paper Sections 4.3–4.5);
//! * [`sysgen`] — seeded random *system* structure (bus topologies,
//!   memory maps, IRQ wiring, hw/sw placements) for the differential
//!   conformance harness, which realizes each generated system at every
//!   abstraction level of the paper's Figure 3.

pub mod kernels;
pub mod sysgen;
pub mod tgff;
