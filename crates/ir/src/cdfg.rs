//! Operation-level control/data-flow graphs.
//!
//! A [`Cdfg`] is the fine-grain behavioral view the paper's co-processor
//! and ASIP flows operate on (Sections 4.3–4.5): a pure data-flow graph of
//! word-level operations in SSA form. Construction is append-only — an
//! operation may only reference operations created before it — so every
//! graph is acyclic by construction and the insertion order is a valid
//! topological/schedulable order.
//!
//! CDFGs are executable via [`Cdfg::evaluate`], which interprets the graph
//! on concrete `i64` inputs. This gives the whole repository a single
//! functional reference: software compiled from a CDFG by `codesign-isa`
//! and hardware synthesized from it by `codesign-hls` are both verified
//! against the interpreter, which is exactly the "verifying the
//! functionality of the system" role the paper assigns to co-simulation
//! (Section 3.1).

use serde::{Deserialize, Serialize};

use crate::error::IrError;

/// Identifier of an operation (and of the value it produces) within one
/// [`Cdfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpId(pub(crate) u32);

impl OpId {
    /// Creates an id from a dense index. Ids are only meaningful for the
    /// graph that has at least `index + 1` operations.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        OpId(index as u32)
    }

    /// Returns the dense index of this operation.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for OpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// The functional-unit class an operation requires when implemented in
/// hardware, and the instruction class it maps to in software.
///
/// The class drives both the HLS resource model (`codesign-hls`) and the
/// per-instruction timing model (`codesign-isa`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FuClass {
    /// Add/subtract/compare-style ALU operations.
    Alu,
    /// Multiplication.
    Multiplier,
    /// Division and remainder.
    Divider,
    /// Bitwise logic and shifts.
    Logic,
    /// Wiring only: inputs, constants, outputs, selects.
    Free,
}

impl FuClass {
    /// All classes that occupy hardware resources, in a stable order.
    pub const RESOURCE_CLASSES: [FuClass; 4] = [
        FuClass::Alu,
        FuClass::Multiplier,
        FuClass::Divider,
        FuClass::Logic,
    ];
}

impl std::fmt::Display for FuClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FuClass::Alu => "alu",
            FuClass::Multiplier => "mul",
            FuClass::Divider => "div",
            FuClass::Logic => "logic",
            FuClass::Free => "free",
        };
        f.write_str(s)
    }
}

/// The operation performed by a CDFG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum OpKind {
    /// External input with the given index.
    Input(u32),
    /// Integer constant.
    Const(i64),
    /// External output with the given index; one operand.
    Output(u32),
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division; faults on divide-by-zero.
    Div,
    /// Signed remainder; faults on divide-by-zero.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Bitwise complement; one operand.
    Not,
    /// Arithmetic negation; one operand.
    Neg,
    /// Shift left by the low 6 bits of the second operand.
    Shl,
    /// Arithmetic shift right by the low 6 bits of the second operand.
    Shr,
    /// 1 if less-than, else 0.
    Lt,
    /// 1 if less-or-equal, else 0.
    Le,
    /// 1 if equal, else 0.
    Eq,
    /// 1 if not-equal, else 0.
    Ne,
    /// `cond ? a : b`; three operands, `cond` is non-zero test.
    Select,
    /// Minimum of two values.
    Min,
    /// Maximum of two values.
    Max,
    /// Absolute value; one operand.
    Abs,
}

impl OpKind {
    /// Number of operands this operation requires.
    #[must_use]
    pub fn arity(self) -> usize {
        match self {
            OpKind::Input(_) | OpKind::Const(_) => 0,
            OpKind::Output(_) | OpKind::Not | OpKind::Neg | OpKind::Abs => 1,
            OpKind::Select => 3,
            _ => 2,
        }
    }

    /// The functional-unit class required in hardware.
    #[must_use]
    pub fn fu_class(self) -> FuClass {
        match self {
            OpKind::Input(_) | OpKind::Const(_) | OpKind::Output(_) | OpKind::Select => {
                FuClass::Free
            }
            OpKind::Add
            | OpKind::Sub
            | OpKind::Neg
            | OpKind::Abs
            | OpKind::Min
            | OpKind::Max
            | OpKind::Lt
            | OpKind::Le
            | OpKind::Eq
            | OpKind::Ne => FuClass::Alu,
            OpKind::Mul => FuClass::Multiplier,
            OpKind::Div | OpKind::Rem => FuClass::Divider,
            OpKind::And | OpKind::Or | OpKind::Xor | OpKind::Not | OpKind::Shl | OpKind::Shr => {
                FuClass::Logic
            }
        }
    }

    /// Baseline software cost in reference-processor cycles.
    ///
    /// Mirrors the CR32 timing model in `codesign-isa`: single-cycle ALU
    /// and logic, multi-cycle multiply and divide.
    #[must_use]
    pub fn sw_cycles(self) -> u64 {
        match self.fu_class() {
            FuClass::Free => 0,
            FuClass::Alu | FuClass::Logic => 1,
            FuClass::Multiplier => 3,
            FuClass::Divider => 12,
        }
    }
}

/// One node of a [`Cdfg`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpNode {
    kind: OpKind,
    args: Vec<OpId>,
}

impl OpNode {
    /// The operation performed.
    #[must_use]
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// Operand value ids, in operand order.
    #[must_use]
    pub fn args(&self) -> &[OpId] {
        &self.args
    }
}

/// An executable, SSA-form data-flow graph.
///
/// # Example
///
/// ```
/// use codesign_ir::cdfg::{Cdfg, OpKind};
///
/// # fn main() -> Result<(), codesign_ir::IrError> {
/// // out0 = (in0 + in1) * 3
/// let mut g = Cdfg::new("mac");
/// let a = g.input();
/// let b = g.input();
/// let sum = g.op(OpKind::Add, &[a, b])?;
/// let three = g.constant(3);
/// let prod = g.op(OpKind::Mul, &[sum, three])?;
/// g.output(prod)?;
/// assert_eq!(g.evaluate(&[2, 5])?, vec![21]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdfg {
    name: String,
    ops: Vec<OpNode>,
    inputs: u32,
    outputs: u32,
}

impl Cdfg {
    /// Creates an empty graph.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Cdfg {
            name: name.into(),
            ops: Vec::new(),
            inputs: 0,
            outputs: 0,
        }
    }

    /// Graph name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends the next external input and returns its value id.
    pub fn input(&mut self) -> OpId {
        let idx = self.inputs;
        self.inputs += 1;
        self.push(OpKind::Input(idx), Vec::new())
    }

    /// Appends an integer constant and returns its value id.
    pub fn constant(&mut self, value: i64) -> OpId {
        self.push(OpKind::Const(value), Vec::new())
    }

    /// Appends an operation over previously created values.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Invalid`] if the operand count does not match
    /// [`OpKind::arity`], if `kind` is a nullary `Input`/`Const` (use
    /// [`Cdfg::input`]/[`Cdfg::constant`]) or an `Output` (use
    /// [`Cdfg::output`]), and [`IrError::UnknownNode`] if an operand id is
    /// not an existing value of this graph.
    pub fn op(&mut self, kind: OpKind, args: &[OpId]) -> Result<OpId, IrError> {
        match kind {
            OpKind::Input(_) | OpKind::Const(_) | OpKind::Output(_) => {
                return Err(IrError::Invalid {
                    reason: format!("{kind:?} must be created via its dedicated method"),
                })
            }
            _ => {}
        }
        self.check_args(kind, args)?;
        Ok(self.push(kind, args.to_vec()))
    }

    /// Appends the next external output fed by `value` and returns the
    /// output operation's id.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::UnknownNode`] if `value` is not an existing value
    /// of this graph.
    pub fn output(&mut self, value: OpId) -> Result<OpId, IrError> {
        let idx = self.outputs;
        self.check_args(OpKind::Output(idx), &[value])?;
        self.outputs += 1;
        Ok(self.push(OpKind::Output(idx), vec![value]))
    }

    fn check_args(&self, kind: OpKind, args: &[OpId]) -> Result<(), IrError> {
        if args.len() != kind.arity() {
            return Err(IrError::Invalid {
                reason: format!(
                    "{kind:?} takes {} operands, got {}",
                    kind.arity(),
                    args.len()
                ),
            });
        }
        for &a in args {
            if a.index() >= self.ops.len() {
                return Err(IrError::UnknownNode {
                    kind: "cdfg",
                    index: a.index(),
                });
            }
        }
        Ok(())
    }

    fn push(&mut self, kind: OpKind, args: Vec<OpId>) -> OpId {
        let id = OpId(self.ops.len() as u32);
        self.ops.push(OpNode { kind, args });
        id
    }

    /// Number of operations, including inputs, constants, and outputs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the graph has no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of external inputs.
    #[must_use]
    pub fn input_count(&self) -> usize {
        self.inputs as usize
    }

    /// Number of external outputs.
    #[must_use]
    pub fn output_count(&self) -> usize {
        self.outputs as usize
    }

    /// The operation with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[must_use]
    pub fn node(&self, id: OpId) -> &OpNode {
        &self.ops[id.index()]
    }

    /// Iterates over `(id, node)` pairs in topological (insertion) order.
    pub fn iter(&self) -> impl Iterator<Item = (OpId, &OpNode)> {
        self.ops
            .iter()
            .enumerate()
            .map(|(i, n)| (OpId(i as u32), n))
    }

    /// Ids of operations that consume the value produced by `id`.
    pub fn consumers(&self, id: OpId) -> impl Iterator<Item = OpId> + '_ {
        self.ops
            .iter()
            .enumerate()
            .filter(move |(_, n)| n.args.contains(&id))
            .map(|(i, _)| OpId(i as u32))
    }

    /// Number of operations that occupy hardware resources (i.e. whose
    /// [`FuClass`] is not [`FuClass::Free`]).
    #[must_use]
    pub fn resource_op_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|n| n.kind.fu_class() != FuClass::Free)
            .count()
    }

    /// Count of resource operations per functional-unit class, indexed in
    /// the order of [`FuClass::RESOURCE_CLASSES`].
    #[must_use]
    pub fn class_histogram(&self) -> [usize; 4] {
        let mut h = [0usize; 4];
        for n in &self.ops {
            if let Some(i) = FuClass::RESOURCE_CLASSES
                .iter()
                .position(|&c| c == n.kind.fu_class())
            {
                h[i] += 1;
            }
        }
        h
    }

    /// Depth of the graph under a per-operation delay function: the length
    /// of the longest dependence chain. With unit delays this is the
    /// data-flow critical path in steps.
    #[must_use]
    pub fn depth(&self, delay: impl Fn(OpKind) -> u64) -> u64 {
        let mut finish = vec![0u64; self.ops.len()];
        let mut best = 0;
        for (i, n) in self.ops.iter().enumerate() {
            let start = n.args.iter().map(|a| finish[a.index()]).max().unwrap_or(0);
            finish[i] = start + delay(n.kind);
            best = best.max(finish[i]);
        }
        best
    }

    /// Total software cost in reference-processor cycles (sum of
    /// [`OpKind::sw_cycles`] over all operations).
    #[must_use]
    pub fn sw_cycles(&self) -> u64 {
        self.ops.iter().map(|n| n.kind.sw_cycles()).sum()
    }

    /// Interprets the graph on the given inputs.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::InputArity`] if `inputs` does not match
    /// [`Cdfg::input_count`], and [`IrError::EvalFault`] on divide or
    /// remainder by zero.
    pub fn evaluate(&self, inputs: &[i64]) -> Result<Vec<i64>, IrError> {
        if inputs.len() != self.inputs as usize {
            return Err(IrError::InputArity {
                expected: self.inputs as usize,
                actual: inputs.len(),
            });
        }
        let mut values = vec![0i64; self.ops.len()];
        let mut outputs = vec![0i64; self.outputs as usize];
        for (i, n) in self.ops.iter().enumerate() {
            let arg = |k: usize| values[n.args[k].index()];
            let v = match n.kind {
                OpKind::Input(idx) => inputs[idx as usize],
                OpKind::Const(c) => c,
                OpKind::Output(idx) => {
                    outputs[idx as usize] = arg(0);
                    arg(0)
                }
                OpKind::Add => arg(0).wrapping_add(arg(1)),
                OpKind::Sub => arg(0).wrapping_sub(arg(1)),
                OpKind::Mul => arg(0).wrapping_mul(arg(1)),
                OpKind::Div => {
                    let d = arg(1);
                    if d == 0 {
                        return Err(IrError::EvalFault {
                            op: i,
                            reason: "divide by zero".to_string(),
                        });
                    }
                    arg(0).wrapping_div(d)
                }
                OpKind::Rem => {
                    let d = arg(1);
                    if d == 0 {
                        return Err(IrError::EvalFault {
                            op: i,
                            reason: "remainder by zero".to_string(),
                        });
                    }
                    arg(0).wrapping_rem(d)
                }
                OpKind::And => arg(0) & arg(1),
                OpKind::Or => arg(0) | arg(1),
                OpKind::Xor => arg(0) ^ arg(1),
                OpKind::Not => !arg(0),
                OpKind::Neg => arg(0).wrapping_neg(),
                OpKind::Shl => arg(0).wrapping_shl((arg(1) & 0x3f) as u32),
                OpKind::Shr => arg(0).wrapping_shr((arg(1) & 0x3f) as u32),
                OpKind::Lt => i64::from(arg(0) < arg(1)),
                OpKind::Le => i64::from(arg(0) <= arg(1)),
                OpKind::Eq => i64::from(arg(0) == arg(1)),
                OpKind::Ne => i64::from(arg(0) != arg(1)),
                OpKind::Select => {
                    if arg(0) != 0 {
                        arg(1)
                    } else {
                        arg(2)
                    }
                }
                OpKind::Min => arg(0).min(arg(1)),
                OpKind::Max => arg(0).max(arg(1)),
                OpKind::Abs => arg(0).wrapping_abs(),
            };
            values[i] = v;
        }
        Ok(outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac() -> Cdfg {
        let mut g = Cdfg::new("mac");
        let a = g.input();
        let b = g.input();
        let c = g.input();
        let prod = g.op(OpKind::Mul, &[a, b]).unwrap();
        let sum = g.op(OpKind::Add, &[prod, c]).unwrap();
        g.output(sum).unwrap();
        g
    }

    #[test]
    fn evaluate_mac() {
        let g = mac();
        assert_eq!(g.evaluate(&[3, 4, 5]).unwrap(), vec![17]);
        assert_eq!(g.evaluate(&[-2, 8, 1]).unwrap(), vec![-15]);
    }

    #[test]
    fn input_arity_checked() {
        let g = mac();
        assert_eq!(
            g.evaluate(&[1, 2]),
            Err(IrError::InputArity {
                expected: 3,
                actual: 2
            })
        );
    }

    #[test]
    fn divide_by_zero_faults() {
        let mut g = Cdfg::new("div");
        let a = g.input();
        let b = g.input();
        let q = g.op(OpKind::Div, &[a, b]).unwrap();
        g.output(q).unwrap();
        assert_eq!(g.evaluate(&[10, 2]).unwrap(), vec![5]);
        assert!(matches!(
            g.evaluate(&[10, 0]),
            Err(IrError::EvalFault { .. })
        ));
    }

    #[test]
    fn wrong_arity_rejected() {
        let mut g = Cdfg::new("g");
        let a = g.input();
        assert!(matches!(
            g.op(OpKind::Add, &[a]),
            Err(IrError::Invalid { .. })
        ));
        assert!(matches!(
            g.op(OpKind::Not, &[a, a]),
            Err(IrError::Invalid { .. })
        ));
    }

    #[test]
    fn dangling_operand_rejected() {
        let mut g = Cdfg::new("g");
        let a = g.input();
        let ghost = OpId(99);
        assert!(matches!(
            g.op(OpKind::Add, &[a, ghost]),
            Err(IrError::UnknownNode { .. })
        ));
    }

    #[test]
    fn nullary_via_op_rejected() {
        let mut g = Cdfg::new("g");
        assert!(g.op(OpKind::Const(1), &[]).is_err());
        assert!(g.op(OpKind::Input(0), &[]).is_err());
    }

    #[test]
    fn select_behaves_like_ternary() {
        let mut g = Cdfg::new("sel");
        let c = g.input();
        let a = g.input();
        let b = g.input();
        let s = g.op(OpKind::Select, &[c, a, b]).unwrap();
        g.output(s).unwrap();
        assert_eq!(g.evaluate(&[1, 10, 20]).unwrap(), vec![10]);
        assert_eq!(g.evaluate(&[0, 10, 20]).unwrap(), vec![20]);
        assert_eq!(g.evaluate(&[-7, 10, 20]).unwrap(), vec![10]);
    }

    #[test]
    fn depth_with_unit_delay() {
        let g = mac();
        // input -> mul -> add is the longest chain of unit-delay ops.
        let d = g.depth(|k| u64::from(k.fu_class() != FuClass::Free));
        assert_eq!(d, 2);
    }

    #[test]
    fn class_histogram_counts_resource_ops() {
        let g = mac();
        let [alu, mul, div, logic] = g.class_histogram();
        assert_eq!((alu, mul, div, logic), (1, 1, 0, 0));
        assert_eq!(g.resource_op_count(), 2);
    }

    #[test]
    fn consumers_are_found() {
        let mut g = Cdfg::new("g");
        let a = g.input();
        let b = g.input();
        let x = g.op(OpKind::Add, &[a, b]).unwrap();
        let y = g.op(OpKind::Mul, &[x, x]).unwrap();
        g.output(y).unwrap();
        let uses: Vec<OpId> = g.consumers(x).collect();
        assert_eq!(uses, vec![y]);
    }

    #[test]
    fn comparisons_produce_flags() {
        let mut g = Cdfg::new("cmp");
        let a = g.input();
        let b = g.input();
        for kind in [OpKind::Lt, OpKind::Le, OpKind::Eq, OpKind::Ne] {
            let r = g.op(kind, &[a, b]).unwrap();
            g.output(r).unwrap();
        }
        assert_eq!(g.evaluate(&[3, 3]).unwrap(), vec![0, 1, 1, 0]);
        assert_eq!(g.evaluate(&[2, 3]).unwrap(), vec![1, 1, 0, 1]);
    }

    #[test]
    fn shifts_mask_their_amount() {
        let mut g = Cdfg::new("sh");
        let a = g.input();
        let s = g.input();
        let l = g.op(OpKind::Shl, &[a, s]).unwrap();
        let r = g.op(OpKind::Shr, &[a, s]).unwrap();
        g.output(l).unwrap();
        g.output(r).unwrap();
        assert_eq!(g.evaluate(&[1, 4]).unwrap(), vec![16, 0]);
        // Shift amount 64 wraps to 0 via the 6-bit mask.
        assert_eq!(g.evaluate(&[5, 64]).unwrap(), vec![5, 5]);
    }
}
