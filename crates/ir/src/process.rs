//! Communicating process networks.
//!
//! The paper's highest interface-abstraction level models HW/SW
//! interaction "by the process or device communication mechanism provided
//! by an operating system" using `send`, `receive`, and `wait` operations
//! (Section 3.1, Figure 3; Coumeri & Thomas \[3\]). A [`ProcessNetwork`] is
//! that view: sequential [`Process`]es whose bodies are sequences of
//! [`Action`]s, communicating over point-to-point [`Channel`]s.
//!
//! The same representation is the input to multi-threaded co-processor
//! synthesis (Section 4.5.1): `codesign-synth` clusters processes onto
//! controller/datapath pairs, and `codesign-partition` decides which
//! processes run as software.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::IrError;

/// Identifier of a process within one [`ProcessNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(pub(crate) u32);

impl ProcessId {
    /// Creates an id from a dense index. Ids are only meaningful for the
    /// network that has at least `index + 1` processes.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        ProcessId(index as u32)
    }

    /// Returns the dense index of this process.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ProcessId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of a channel within one [`ProcessNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChannelId(pub(crate) u32);

impl ChannelId {
    /// Creates an id from a dense index. Ids are only meaningful for the
    /// network that has at least `index + 1` channels.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        ChannelId(index as u32)
    }

    /// Returns the dense index of this channel.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ChannelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// One step of a process body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Busy computation for the given number of cycles.
    Compute(u64),
    /// Send `bytes` bytes over a channel; blocks until the receiver is
    /// ready (rendezvous) or buffer space is available.
    Send {
        /// Channel to send on.
        channel: ChannelId,
        /// Message size in bytes.
        bytes: u64,
    },
    /// Receive one message from a channel; blocks until one is available.
    Receive {
        /// Channel to receive from.
        channel: ChannelId,
    },
    /// Idle (e.g. waiting for a timer) for the given number of cycles.
    Wait(u64),
}

/// A point-to-point communication channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Channel {
    name: String,
    capacity: usize,
}

impl Channel {
    /// Channel name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Buffer capacity in messages; 0 means strict rendezvous.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// A sequential process: a named body of [`Action`]s executed a fixed
/// number of iterations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Process {
    name: String,
    actions: Vec<Action>,
    iterations: u32,
    #[serde(default)]
    kernel: Option<String>,
}

impl Process {
    /// Creates a process executing `actions` once.
    #[must_use]
    pub fn new(name: impl Into<String>, actions: Vec<Action>) -> Self {
        Process {
            name: name.into(),
            actions,
            iterations: 1,
            kernel: None,
        }
    }

    /// Sets the number of body iterations (at least 1).
    #[must_use]
    pub fn with_iterations(mut self, iterations: u32) -> Self {
        self.iterations = iterations.max(1);
        self
    }

    /// Names the CDFG kernel this process's compute implements, enabling
    /// calibrated hardware speedups in multi-threaded co-processor
    /// synthesis.
    #[must_use]
    pub fn with_kernel(mut self, kernel: impl Into<String>) -> Self {
        self.kernel = Some(kernel.into());
        self
    }

    /// Process name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Name of the kernel this process's compute implements, if any.
    #[must_use]
    pub fn kernel(&self) -> Option<&str> {
        self.kernel.as_deref()
    }

    /// The body, executed [`Process::iterations`] times.
    #[must_use]
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// Number of body iterations.
    #[must_use]
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// Total busy computation over all iterations, in cycles.
    #[must_use]
    pub fn total_compute(&self) -> u64 {
        let per_iter: u64 = self
            .actions
            .iter()
            .map(|a| match a {
                Action::Compute(c) => *c,
                _ => 0,
            })
            .sum();
        per_iter * u64::from(self.iterations)
    }

    /// Total bytes sent over all iterations.
    #[must_use]
    pub fn total_sent_bytes(&self) -> u64 {
        let per_iter: u64 = self
            .actions
            .iter()
            .map(|a| match a {
                Action::Send { bytes, .. } => *bytes,
                _ => 0,
            })
            .sum();
        per_iter * u64::from(self.iterations)
    }
}

/// A network of communicating sequential processes.
///
/// # Example
///
/// ```
/// use codesign_ir::process::{Action, Process, ProcessNetwork};
///
/// # fn main() -> Result<(), codesign_ir::IrError> {
/// let mut net = ProcessNetwork::new("prodcons");
/// let ch = net.add_channel("data", 0);
/// net.add_process(Process::new(
///     "producer",
///     vec![Action::Compute(100), Action::Send { channel: ch, bytes: 32 }],
/// ).with_iterations(8));
/// net.add_process(Process::new(
///     "consumer",
///     vec![Action::Receive { channel: ch }, Action::Compute(250)],
/// ).with_iterations(8));
/// net.validate()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessNetwork {
    name: String,
    processes: Vec<Process>,
    channels: Vec<Channel>,
}

impl ProcessNetwork {
    /// Creates an empty network.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        ProcessNetwork {
            name: name.into(),
            processes: Vec::new(),
            channels: Vec::new(),
        }
    }

    /// Network name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares a channel with the given buffer capacity (0 = rendezvous)
    /// and returns its id.
    pub fn add_channel(&mut self, name: impl Into<String>, capacity: usize) -> ChannelId {
        let id = ChannelId(self.channels.len() as u32);
        self.channels.push(Channel {
            name: name.into(),
            capacity,
        });
        id
    }

    /// Adds a process and returns its id.
    pub fn add_process(&mut self, process: Process) -> ProcessId {
        let id = ProcessId(self.processes.len() as u32);
        self.processes.push(process);
        id
    }

    /// Number of processes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.processes.len()
    }

    /// Whether the network has no processes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }

    /// Number of channels.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// The process with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    #[must_use]
    pub fn process(&self, id: ProcessId) -> &Process {
        &self.processes[id.index()]
    }

    /// The channel with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    #[must_use]
    pub fn channel(&self, id: ChannelId) -> &Channel {
        &self.channels[id.index()]
    }

    /// Iterates over `(id, process)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, &Process)> {
        self.processes
            .iter()
            .enumerate()
            .map(|(i, p)| (ProcessId(i as u32), p))
    }

    /// Iterates over all process ids.
    pub fn ids(&self) -> impl Iterator<Item = ProcessId> {
        (0..self.processes.len() as u32).map(ProcessId)
    }

    /// Looks up a channel id by name.
    #[must_use]
    pub fn channel_by_name(&self, name: &str) -> Option<ChannelId> {
        self.channels
            .iter()
            .position(|c| c.name == name)
            .map(|i| ChannelId(i as u32))
    }

    /// The unique sender of each channel, inferred from process bodies.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Invalid`] if a channel has more than one sending
    /// process (channels are point-to-point).
    pub fn senders(&self) -> Result<BTreeMap<ChannelId, ProcessId>, IrError> {
        self.endpoint_map(|a| match a {
            Action::Send { channel, .. } => Some(*channel),
            _ => None,
        })
    }

    /// The unique receiver of each channel, inferred from process bodies.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Invalid`] if a channel has more than one
    /// receiving process (channels are point-to-point).
    pub fn receivers(&self) -> Result<BTreeMap<ChannelId, ProcessId>, IrError> {
        self.endpoint_map(|a| match a {
            Action::Receive { channel } => Some(*channel),
            _ => None,
        })
    }

    fn endpoint_map(
        &self,
        select: impl Fn(&Action) -> Option<ChannelId>,
    ) -> Result<BTreeMap<ChannelId, ProcessId>, IrError> {
        let mut map: BTreeMap<ChannelId, ProcessId> = BTreeMap::new();
        for (pid, p) in self.iter() {
            for a in p.actions() {
                if let Some(ch) = select(a) {
                    if let Some(&prev) = map.get(&ch) {
                        if prev != pid {
                            return Err(IrError::Invalid {
                                reason: format!(
                                    "channel {} used by both {} and {}",
                                    self.channel(ch).name(),
                                    self.process(prev).name(),
                                    self.process(pid).name()
                                ),
                            });
                        }
                    } else {
                        map.insert(ch, pid);
                    }
                }
            }
        }
        Ok(map)
    }

    /// Bytes exchanged between every ordered pair of processes, summed
    /// over all channels and iterations. The matrix is the communication
    /// input to partitioning: the paper notes that communication overhead
    /// "favors partitions that localize communication" (Section 3.3).
    ///
    /// # Errors
    ///
    /// Propagates the point-to-point violations of [`ProcessNetwork::senders`]
    /// / [`ProcessNetwork::receivers`].
    pub fn comm_matrix(&self) -> Result<BTreeMap<(ProcessId, ProcessId), u64>, IrError> {
        let senders = self.senders()?;
        let receivers = self.receivers()?;
        let mut matrix = BTreeMap::new();
        for (pid, p) in self.iter() {
            for a in p.actions() {
                if let Action::Send { channel, bytes } = a {
                    if let Some(&dst) = receivers.get(channel) {
                        *matrix.entry((pid, dst)).or_insert(0) += bytes * u64::from(p.iterations());
                    }
                }
            }
            let _ = &senders; // senders validated for point-to-pointness
        }
        Ok(matrix)
    }

    /// Validates the network: all channel references resolve, and every
    /// channel is point-to-point with both a sender and a receiver.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), IrError> {
        for p in &self.processes {
            for a in p.actions() {
                let ch = match a {
                    Action::Send { channel, .. } | Action::Receive { channel } => Some(*channel),
                    _ => None,
                };
                if let Some(ch) = ch {
                    if ch.index() >= self.channels.len() {
                        return Err(IrError::UnknownNode {
                            kind: "process network",
                            index: ch.index(),
                        });
                    }
                }
            }
        }
        let senders = self.senders()?;
        let receivers = self.receivers()?;
        for (i, c) in self.channels.iter().enumerate() {
            let id = ChannelId(i as u32);
            if !senders.contains_key(&id) {
                return Err(IrError::Invalid {
                    reason: format!("channel {} has no sender", c.name()),
                });
            }
            if !receivers.contains_key(&id) {
                return Err(IrError::Invalid {
                    reason: format!("channel {} has no receiver", c.name()),
                });
            }
            if senders[&id] == receivers[&id] {
                return Err(IrError::Invalid {
                    reason: format!("channel {} loops back to its sender", c.name()),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prodcons() -> ProcessNetwork {
        let mut net = ProcessNetwork::new("prodcons");
        let ch = net.add_channel("data", 0);
        net.add_process(
            Process::new(
                "producer",
                vec![
                    Action::Compute(100),
                    Action::Send {
                        channel: ch,
                        bytes: 32,
                    },
                ],
            )
            .with_iterations(4),
        );
        net.add_process(
            Process::new(
                "consumer",
                vec![Action::Receive { channel: ch }, Action::Compute(250)],
            )
            .with_iterations(4),
        );
        net
    }

    #[test]
    fn validates_clean_network() {
        prodcons().validate().unwrap();
    }

    #[test]
    fn totals_scale_with_iterations() {
        let net = prodcons();
        let producer = net.process(ProcessId(0));
        assert_eq!(producer.total_compute(), 400);
        assert_eq!(producer.total_sent_bytes(), 128);
    }

    #[test]
    fn comm_matrix_sums_bytes() {
        let net = prodcons();
        let m = net.comm_matrix().unwrap();
        assert_eq!(m.get(&(ProcessId(0), ProcessId(1))), Some(&128));
        assert_eq!(m.get(&(ProcessId(1), ProcessId(0))), None);
    }

    #[test]
    fn channel_with_two_senders_rejected() {
        let mut net = ProcessNetwork::new("bad");
        let ch = net.add_channel("c", 0);
        for name in ["a", "b"] {
            net.add_process(Process::new(
                name,
                vec![Action::Send {
                    channel: ch,
                    bytes: 1,
                }],
            ));
        }
        net.add_process(Process::new("r", vec![Action::Receive { channel: ch }]));
        assert!(matches!(net.validate(), Err(IrError::Invalid { .. })));
    }

    #[test]
    fn channel_without_receiver_rejected() {
        let mut net = ProcessNetwork::new("bad");
        let ch = net.add_channel("c", 0);
        net.add_process(Process::new(
            "s",
            vec![Action::Send {
                channel: ch,
                bytes: 1,
            }],
        ));
        assert!(matches!(net.validate(), Err(IrError::Invalid { .. })));
    }

    #[test]
    fn loopback_channel_rejected() {
        let mut net = ProcessNetwork::new("bad");
        let ch = net.add_channel("c", 0);
        net.add_process(Process::new(
            "p",
            vec![
                Action::Send {
                    channel: ch,
                    bytes: 1,
                },
                Action::Receive { channel: ch },
            ],
        ));
        assert!(matches!(net.validate(), Err(IrError::Invalid { .. })));
    }

    #[test]
    fn dangling_channel_reference_rejected() {
        let mut net = ProcessNetwork::new("bad");
        net.add_process(Process::new(
            "p",
            vec![Action::Send {
                channel: ChannelId(5),
                bytes: 1,
            }],
        ));
        assert!(matches!(net.validate(), Err(IrError::UnknownNode { .. })));
    }

    #[test]
    fn channel_lookup_by_name() {
        let net = prodcons();
        assert_eq!(net.channel_by_name("data"), Some(ChannelId(0)));
        assert_eq!(net.channel_by_name("nope"), None);
    }

    #[test]
    fn iterations_floor_at_one() {
        let p = Process::new("p", vec![]).with_iterations(0);
        assert_eq!(p.iterations(), 1);
    }
}
