//! A small textual specification language.
//!
//! The paper's Section 3.2 notes that co-synthesis is hampered because
//! "hardware and software are often described using different languages
//! and formalisms", and praises Chinook for using "a common specification
//! for the hardware and software components" (Section 4.1). This module is
//! that common specification: one plain-text format that describes both
//! the coarse-grain task view and the communicating-process view of a
//! system, from which every flow in this repository can start.
//!
//! # Grammar
//!
//! Line-oriented; `#` starts a comment; blank lines are ignored.
//!
//! ```text
//! system  <name>
//!
//! task    <name> sw=<cycles> [hw=<cycles>] [area=<f64>] [par=<f64>] [mod=<f64>] [kernel=<name>]
//! edge    <src> -> <dst> bytes=<u64>
//! deadline <cycles>
//! period   <cycles>
//!
//! channel <name> [cap=<usize>]
//! process <name> [iter=<u32>] [kernel=<name>]
//!   compute <cycles>
//!   send    <channel> <bytes>
//!   recv    <channel>
//!   wait    <cycles>
//! end
//! ```
//!
//! # Example
//!
//! ```
//! use codesign_ir::spec::SystemSpec;
//!
//! # fn main() -> Result<(), codesign_ir::IrError> {
//! let spec = SystemSpec::parse(
//!     "system demo\n\
//!      task a sw=100\n\
//!      task b sw=200 par=0.9\n\
//!      edge a -> b bytes=16\n",
//! )?;
//! assert_eq!(spec.name(), "demo");
//! assert_eq!(spec.task_graph().unwrap().len(), 2);
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;

use crate::error::IrError;
use crate::process::{Action, Process, ProcessNetwork};
use crate::task::{Task, TaskGraph, TaskId};

/// A parsed system specification: an optional task-graph view and an
/// optional process-network view under one system name.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSpec {
    name: String,
    task_graph: Option<TaskGraph>,
    network: Option<ProcessNetwork>,
}

impl SystemSpec {
    /// Parses a specification from text.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::ParseSpec`] with a 1-based line number for any
    /// syntax error, and the underlying structural error (e.g. an unknown
    /// task in an `edge`) for semantic problems.
    pub fn parse(text: &str) -> Result<Self, IrError> {
        Parser::new(text).parse()
    }

    /// System name (from the `system` line, or `"unnamed"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The task-graph view, if the spec declared any `task`.
    #[must_use]
    pub fn task_graph(&self) -> Option<&TaskGraph> {
        self.task_graph.as_ref()
    }

    /// The process-network view, if the spec declared any `process`.
    #[must_use]
    pub fn network(&self) -> Option<&ProcessNetwork> {
        self.network.as_ref()
    }

    /// Builds a specification from already-constructed views.
    #[must_use]
    pub fn from_parts(
        name: impl Into<String>,
        task_graph: Option<TaskGraph>,
        network: Option<ProcessNetwork>,
    ) -> Self {
        SystemSpec {
            name: name.into(),
            task_graph,
            network,
        }
    }

    /// Renders the specification back to its textual form; the result
    /// parses to an equivalent specification (task, channel, and process
    /// names must be single tokens without `#`, `;`, or whitespace for
    /// the round trip to hold).
    #[must_use]
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "system {}", self.name);
        if let Some(g) = &self.task_graph {
            out.push('\n');
            for (_, t) in g.iter() {
                let _ = write!(
                    out,
                    "task {} sw={} hw={} area={:?} par={:?} mod={:?}",
                    t.name(),
                    t.sw_cycles(),
                    t.hw_cycles(),
                    t.hw_area(),
                    t.parallelism(),
                    t.modifiability()
                );
                if let Some(k) = t.kernel() {
                    let _ = write!(out, " kernel={k}");
                }
                out.push('\n');
            }
            for e in g.edges() {
                let _ = writeln!(
                    out,
                    "edge {} -> {} bytes={}",
                    g.task(e.src).name(),
                    g.task(e.dst).name(),
                    e.bytes
                );
            }
            if let Some(d) = g.deadline() {
                let _ = writeln!(out, "deadline {d}");
            }
            if let Some(p) = g.period() {
                let _ = writeln!(out, "period {p}");
            }
        }
        if let Some(net) = &self.network {
            out.push('\n');
            for i in 0..net.channel_count() {
                let ch = net.channel(crate::process::ChannelId::from_index(i));
                let _ = writeln!(out, "channel {} cap={}", ch.name(), ch.capacity());
            }
            for (_, p) in net.iter() {
                let _ = write!(out, "process {} iter={}", p.name(), p.iterations());
                if let Some(k) = p.kernel() {
                    let _ = write!(out, " kernel={k}");
                }
                let _ = writeln!(out);
                for a in p.actions() {
                    let _ = match a {
                        crate::process::Action::Compute(c) => writeln!(out, "  compute {c}"),
                        crate::process::Action::Wait(c) => writeln!(out, "  wait {c}"),
                        crate::process::Action::Send { channel, bytes } => {
                            writeln!(out, "  send {} {bytes}", net.channel(*channel).name())
                        }
                        crate::process::Action::Receive { channel } => {
                            writeln!(out, "  recv {}", net.channel(*channel).name())
                        }
                    };
                }
                let _ = writeln!(out, "end");
            }
        }
        out
    }
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
    name: String,
    graph: TaskGraph,
    task_names: BTreeMap<String, TaskId>,
    has_tasks: bool,
    network: ProcessNetwork,
    has_processes: bool,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                let l = l.split('#').next().unwrap_or("").trim();
                (i + 1, l)
            })
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Parser {
            lines,
            pos: 0,
            name: "unnamed".to_string(),
            graph: TaskGraph::new("unnamed"),
            task_names: BTreeMap::new(),
            has_tasks: false,
            network: ProcessNetwork::new("unnamed"),
            has_processes: false,
        }
    }

    fn parse(mut self) -> Result<SystemSpec, IrError> {
        while self.pos < self.lines.len() {
            let (line_no, line) = self.lines[self.pos];
            self.pos += 1;
            let mut words = line.split_whitespace();
            let keyword = words.next().unwrap_or("");
            let rest: Vec<&str> = words.collect();
            match keyword {
                "system" => {
                    self.name = Self::one_name(line_no, &rest, "system")?.to_string();
                    self.graph = TaskGraph::new(self.name.clone());
                    self.network = ProcessNetwork::new(self.name.clone());
                }
                "task" => self.parse_task(line_no, &rest)?,
                "edge" => self.parse_edge(line_no, &rest)?,
                "deadline" => {
                    let v = Self::parse_u64(line_no, Self::one_name(line_no, &rest, "deadline")?)?;
                    self.graph.set_deadline(v);
                }
                "period" => {
                    let v = Self::parse_u64(line_no, Self::one_name(line_no, &rest, "period")?)?;
                    self.graph.set_period(v);
                }
                "channel" => self.parse_channel(line_no, &rest)?,
                "process" => self.parse_process(line_no, &rest)?,
                other => {
                    return Err(IrError::ParseSpec {
                        line: line_no,
                        reason: format!("unknown keyword `{other}`"),
                    })
                }
            }
        }
        if self.has_processes {
            self.network.validate()?;
        }
        if self.has_tasks {
            self.graph.validate()?;
        }
        Ok(SystemSpec {
            name: self.name,
            task_graph: self.has_tasks.then_some(self.graph),
            network: self.has_processes.then_some(self.network),
        })
    }

    fn one_name<'b>(line: usize, rest: &[&'b str], kw: &str) -> Result<&'b str, IrError> {
        match rest {
            [name] => Ok(name),
            _ => Err(IrError::ParseSpec {
                line,
                reason: format!("`{kw}` takes exactly one argument"),
            }),
        }
    }

    fn parse_u64(line: usize, s: &str) -> Result<u64, IrError> {
        s.parse().map_err(|_| IrError::ParseSpec {
            line,
            reason: format!("expected integer, got `{s}`"),
        })
    }

    fn parse_f64(line: usize, s: &str) -> Result<f64, IrError> {
        s.parse().map_err(|_| IrError::ParseSpec {
            line,
            reason: format!("expected number, got `{s}`"),
        })
    }

    fn kv(line: usize, word: &str) -> Result<(&str, &str), IrError> {
        word.split_once('=').ok_or_else(|| IrError::ParseSpec {
            line,
            reason: format!("expected key=value, got `{word}`"),
        })
    }

    fn parse_task(&mut self, line: usize, rest: &[&str]) -> Result<(), IrError> {
        let (name, attrs) = rest.split_first().ok_or(IrError::ParseSpec {
            line,
            reason: "`task` needs a name".to_string(),
        })?;
        if self.task_names.contains_key(*name) {
            return Err(IrError::ParseSpec {
                line,
                reason: format!("duplicate task `{name}`"),
            });
        }
        let mut sw = None;
        let mut task_attrs: Vec<(&str, &str)> = Vec::new();
        for word in attrs {
            let (k, v) = Self::kv(line, word)?;
            if k == "sw" {
                sw = Some(Self::parse_u64(line, v)?);
            } else {
                task_attrs.push((k, v));
            }
        }
        let sw = sw.ok_or(IrError::ParseSpec {
            line,
            reason: format!("task `{name}` needs sw=<cycles>"),
        })?;
        let mut task = Task::new(*name, sw);
        for (k, v) in task_attrs {
            task = match k {
                "hw" => task.with_hw_cycles(Self::parse_u64(line, v)?),
                "area" => task.with_hw_area(Self::parse_f64(line, v)?),
                "par" => task.with_parallelism(Self::parse_f64(line, v)?),
                "mod" => task.with_modifiability(Self::parse_f64(line, v)?),
                "kernel" => task.with_kernel(v),
                other => {
                    return Err(IrError::ParseSpec {
                        line,
                        reason: format!("unknown task attribute `{other}`"),
                    })
                }
            };
        }
        let id = self.graph.add_task(task);
        self.task_names.insert((*name).to_string(), id);
        self.has_tasks = true;
        Ok(())
    }

    fn parse_edge(&mut self, line: usize, rest: &[&str]) -> Result<(), IrError> {
        let [src, arrow, dst, bytes_kv] = rest else {
            return Err(IrError::ParseSpec {
                line,
                reason: "`edge` syntax: edge <src> -> <dst> bytes=<n>".to_string(),
            });
        };
        if *arrow != "->" {
            return Err(IrError::ParseSpec {
                line,
                reason: format!("expected `->`, got `{arrow}`"),
            });
        }
        let (k, v) = Self::kv(line, bytes_kv)?;
        if k != "bytes" {
            return Err(IrError::ParseSpec {
                line,
                reason: format!("expected bytes=<n>, got `{k}=`"),
            });
        }
        let bytes = Self::parse_u64(line, v)?;
        let lookup = |n: &str| {
            self.task_names.get(n).copied().ok_or(IrError::ParseSpec {
                line,
                reason: format!("unknown task `{n}` in edge"),
            })
        };
        let (s, d) = (lookup(src)?, lookup(dst)?);
        self.graph.add_edge(s, d, bytes)
    }

    fn parse_channel(&mut self, line: usize, rest: &[&str]) -> Result<(), IrError> {
        let (name, attrs) = rest.split_first().ok_or(IrError::ParseSpec {
            line,
            reason: "`channel` needs a name".to_string(),
        })?;
        if self.network.channel_by_name(name).is_some() {
            return Err(IrError::ParseSpec {
                line,
                reason: format!("duplicate channel `{name}`"),
            });
        }
        let mut cap = 0usize;
        for word in attrs {
            let (k, v) = Self::kv(line, word)?;
            match k {
                "cap" => {
                    cap = Self::parse_u64(line, v)? as usize;
                }
                other => {
                    return Err(IrError::ParseSpec {
                        line,
                        reason: format!("unknown channel attribute `{other}`"),
                    })
                }
            }
        }
        self.network.add_channel(*name, cap);
        Ok(())
    }

    fn parse_process(&mut self, line: usize, rest: &[&str]) -> Result<(), IrError> {
        let (name, attrs) = rest.split_first().ok_or(IrError::ParseSpec {
            line,
            reason: "`process` needs a name".to_string(),
        })?;
        let mut iterations = 1u32;
        let mut kernel: Option<&str> = None;
        for word in attrs {
            let (k, v) = Self::kv(line, word)?;
            match k {
                "iter" => {
                    iterations = Self::parse_u64(line, v)? as u32;
                }
                "kernel" => {
                    kernel = Some(v);
                }
                other => {
                    return Err(IrError::ParseSpec {
                        line,
                        reason: format!("unknown process attribute `{other}`"),
                    })
                }
            }
        }
        let mut actions = Vec::new();
        loop {
            let Some(&(body_line, body)) = self.lines.get(self.pos) else {
                return Err(IrError::ParseSpec {
                    line,
                    reason: format!("process `{name}` not terminated by `end`"),
                });
            };
            self.pos += 1;
            let mut words = body.split_whitespace();
            let kw = words.next().unwrap_or("");
            let rest: Vec<&str> = words.collect();
            match kw {
                "end" => break,
                "compute" => {
                    let c =
                        Self::parse_u64(body_line, Self::one_name(body_line, &rest, "compute")?)?;
                    actions.push(Action::Compute(c));
                }
                "wait" => {
                    let c = Self::parse_u64(body_line, Self::one_name(body_line, &rest, "wait")?)?;
                    actions.push(Action::Wait(c));
                }
                "send" => {
                    let [ch, bytes] = rest[..] else {
                        return Err(IrError::ParseSpec {
                            line: body_line,
                            reason: "`send` syntax: send <channel> <bytes>".to_string(),
                        });
                    };
                    let channel = self.network.channel_by_name(ch).ok_or_else(|| {
                        IrError::UnknownChannel {
                            name: ch.to_string(),
                        }
                    })?;
                    let bytes = Self::parse_u64(body_line, bytes)?;
                    actions.push(Action::Send { channel, bytes });
                }
                "recv" => {
                    let ch = Self::one_name(body_line, &rest, "recv")?;
                    let channel = self.network.channel_by_name(ch).ok_or_else(|| {
                        IrError::UnknownChannel {
                            name: ch.to_string(),
                        }
                    })?;
                    actions.push(Action::Receive { channel });
                }
                other => {
                    return Err(IrError::ParseSpec {
                        line: body_line,
                        reason: format!("unknown action `{other}`"),
                    })
                }
            }
        }
        let mut process = Process::new(*name, actions).with_iterations(iterations);
        if let Some(k) = kernel {
            process = process.with_kernel(k);
        }
        self.network.add_process(process);
        self.has_processes = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = "\
# A system with both views.
system radio

task sample sw=100 hw=12 area=3.5 par=0.2 mod=0.9
task filter sw=4000 par=0.95 kernel=fir
edge sample -> filter bytes=64
deadline 100000

channel data cap=2
process producer iter=8
  compute 100
  send data 32
end
process consumer iter=8
  recv data
  wait 5
  compute 250
end
";

    #[test]
    fn parses_full_spec() {
        let spec = SystemSpec::parse(FULL).unwrap();
        assert_eq!(spec.name(), "radio");
        let g = spec.task_graph().unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g.deadline(), Some(100_000));
        let filter = g.iter().find(|(_, t)| t.name() == "filter").unwrap().1;
        assert_eq!(filter.kernel(), Some("fir"));
        assert_eq!(filter.parallelism(), 0.95);
        let net = spec.network().unwrap();
        assert_eq!(net.len(), 2);
        assert_eq!(net.channel_count(), 1);
        assert_eq!(
            net.channel_by_name("data")
                .map(|c| net.channel(c).capacity()),
            Some(2)
        );
    }

    #[test]
    fn task_only_spec_has_no_network() {
        let spec = SystemSpec::parse("task a sw=1\n").unwrap();
        assert!(spec.task_graph().is_some());
        assert!(spec.network().is_none());
    }

    #[test]
    fn unknown_keyword_reports_line() {
        let err = SystemSpec::parse("system x\nbogus y\n").unwrap_err();
        assert_eq!(
            err,
            IrError::ParseSpec {
                line: 2,
                reason: "unknown keyword `bogus`".to_string()
            }
        );
    }

    #[test]
    fn edge_to_unknown_task_rejected() {
        let err = SystemSpec::parse("task a sw=1\nedge a -> b bytes=4\n").unwrap_err();
        assert!(matches!(err, IrError::ParseSpec { line: 2, .. }));
    }

    #[test]
    fn duplicate_task_rejected() {
        let err = SystemSpec::parse("task a sw=1\ntask a sw=2\n").unwrap_err();
        assert!(matches!(err, IrError::ParseSpec { line: 2, .. }));
    }

    #[test]
    fn missing_sw_rejected() {
        let err = SystemSpec::parse("task a hw=1\n").unwrap_err();
        assert!(matches!(err, IrError::ParseSpec { line: 1, .. }));
    }

    #[test]
    fn unterminated_process_rejected() {
        let err = SystemSpec::parse("channel c\nprocess p\n  compute 1\n").unwrap_err();
        assert!(matches!(err, IrError::ParseSpec { .. }));
    }

    #[test]
    fn send_on_undeclared_channel_rejected() {
        let err = SystemSpec::parse("process p\n  send nope 4\nend\n").unwrap_err();
        assert_eq!(
            err,
            IrError::UnknownChannel {
                name: "nope".to_string()
            }
        );
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let spec = SystemSpec::parse("# header\n\n  # indented comment\ntask a sw=5 # trailing\n")
            .unwrap();
        assert_eq!(spec.task_graph().unwrap().len(), 1);
    }

    #[test]
    fn semantic_validation_runs_after_parse() {
        // Parses fine, but the network is invalid: channel never received.
        let err = SystemSpec::parse("channel c\nprocess p\n  send c 4\nend\n").unwrap_err();
        assert!(matches!(err, IrError::Invalid { .. }));
    }
}

#[cfg(test)]
mod emit_tests {
    use super::*;

    #[test]
    fn emitted_text_parses_to_equivalent_spec() {
        let spec1 = SystemSpec::parse(
            "system radio\n\
             task a sw=100 hw=12 area=3.5 par=0.25 mod=0.75 kernel=fir\n\
             task b sw=4000\n\
             edge a -> b bytes=64\n\
             deadline 100000\n\
             period 200000\n\
             channel data cap=2\n\
             process p iter=8\n\
               compute 100\n\
               send data 32\n\
             end\n\
             process q iter=8\n\
               recv data\n\
               wait 5\n\
               compute 250\n\
             end\n",
        )
        .unwrap();
        let text = spec1.to_text();
        let spec2 = SystemSpec::parse(&text).unwrap();
        assert_eq!(spec1, spec2, "round trip:\n{text}");
    }

    #[test]
    fn emission_is_idempotent_for_generated_workloads() {
        use crate::workload::tgff::{
            random_process_network, random_task_graph, NetworkConfig, TgffConfig,
        };
        for seed in 0..5 {
            let g = random_task_graph(&TgffConfig {
                tasks: 12,
                seed,
                ..TgffConfig::default()
            });
            let net = random_process_network(&NetworkConfig {
                seed,
                ..NetworkConfig::default()
            });
            let spec = SystemSpec::from_parts("generated", Some(g.clone()), Some(net.clone()));
            let reparsed = SystemSpec::parse(&spec.to_text()).unwrap();
            // Graph/network names change to the system name; everything
            // structural must survive.
            let g2 = reparsed.task_graph().unwrap();
            assert_eq!(g2.len(), g.len());
            assert_eq!(g2.edges(), g.edges());
            for (a, b) in g.iter().zip(g2.iter()) {
                assert_eq!(a.1.name(), b.1.name());
                assert_eq!(a.1.sw_cycles(), b.1.sw_cycles());
                assert_eq!(a.1.hw_cycles(), b.1.hw_cycles());
                assert_eq!(a.1.hw_area(), b.1.hw_area());
                assert_eq!(a.1.parallelism(), b.1.parallelism());
                assert_eq!(a.1.modifiability(), b.1.modifiability());
            }
            let n2 = reparsed.network().unwrap();
            assert_eq!(n2.len(), net.len());
            for (a, b) in net.iter().zip(n2.iter()) {
                assert_eq!(a.1.actions(), b.1.actions());
                assert_eq!(a.1.iterations(), b.1.iterations());
            }
            // And a second emission is byte-identical (fixed point).
            assert_eq!(spec.to_text(), {
                let again = SystemSpec::from_parts(
                    "generated",
                    reparsed.task_graph().cloned(),
                    reparsed.network().cloned(),
                );
                again.to_text()
            });
        }
    }
}
