//! Property-based tests for the CR32 toolchain.
//!
//! The central property is cross-implementation agreement: for random
//! executable CDFGs, the interpreter, the compiled CR32 program, and the
//! ASIP-extended program must compute identical outputs — the functional
//! verification role the paper assigns to co-simulation, applied
//! exhaustively.

use codesign_ir::cdfg::{Cdfg, OpKind};
use codesign_isa::asip::AsipExtension;
use codesign_isa::asm::{assemble, disassemble};
use codesign_isa::codegen::compile;
use codesign_isa::instr::{decode_program, encode_program, AluOp, BranchCond, Instr, Reg, UnaryOp};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::new)
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    let alu = (0usize..AluOp::ALL.len(), arb_reg(), arb_reg(), arb_reg())
        .prop_map(|(i, a, b, c)| Instr::Alu(AluOp::ALL[i], a, b, c));
    let unary = (0usize..UnaryOp::ALL.len(), arb_reg(), arb_reg())
        .prop_map(|(i, a, b)| Instr::Unary(UnaryOp::ALL[i], a, b));
    let branch = (
        0usize..BranchCond::ALL.len(),
        arb_reg(),
        arb_reg(),
        any::<i16>(),
    )
        .prop_map(|(i, a, b, off)| Instr::Branch(BranchCond::ALL[i], a, b, off));
    prop_oneof![
        alu,
        unary,
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(a, b, c)| Instr::Cmovnz(a, b, c)),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(a, b, i)| Instr::Addi(a, b, i)),
        (arb_reg(), any::<i64>()).prop_map(|(a, i)| Instr::Li(a, i)),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(a, b, i)| Instr::Ld(a, b, i)),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(a, b, i)| Instr::Sd(a, b, i)),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(a, b, i)| Instr::Lw(a, b, i)),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(a, b, i)| Instr::Sw(a, b, i)),
        branch,
        (arb_reg(), 0u32..(1 << 20)).prop_map(|(a, t)| Instr::Jal(a, t)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Instr::Jalr(a, b)),
        (any::<u8>(), arb_reg(), arb_reg(), arb_reg(), any::<i64>())
            .prop_map(|(u, a, b, c, imm)| Instr::Custom(u, a, b, c, imm)),
        Just(Instr::Ei),
        Just(Instr::Di),
        Just(Instr::Rti),
        Just(Instr::Nop),
        Just(Instr::Halt),
    ]
}

proptest! {
    /// Binary encoding round-trips every instruction.
    #[test]
    fn encode_decode_roundtrip(instrs in prop::collection::vec(arb_instr(), 0..60)) {
        let image = encode_program(&instrs);
        let back = decode_program(&image).expect("decodes");
        prop_assert_eq!(instrs, back);
    }

    /// Disassembly re-assembles to the identical program.
    #[test]
    fn disassemble_assemble_roundtrip(instrs in prop::collection::vec(arb_instr(), 0..40)) {
        // Branches/jumps must land inside the program for the
        // disassembler's labels to resolve; clamp targets.
        let n = instrs.len().max(1);
        let fixed: Vec<Instr> = instrs
            .into_iter()
            .enumerate()
            .map(|(i, ins)| match ins {
                Instr::Branch(c, a, b, off) => {
                    let t = (i as i64 + 1 + i64::from(off)).rem_euclid(n as i64);
                    Instr::Branch(c, a, b, (t - i as i64 - 1) as i16)
                }
                Instr::Jal(r, t) => Instr::Jal(r, t % n as u32),
                other => other,
            })
            .collect();
        let text = disassemble(&fixed);
        let back = assemble(&text).expect("reassembles");
        prop_assert_eq!(fixed, back.instrs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Robustness: the ISS never panics on arbitrary (even wild)
    /// programs — every outcome is a clean halt or a typed fault.
    #[test]
    fn cpu_never_panics_on_arbitrary_programs(
        instrs in prop::collection::vec(arb_instr(), 0..50),
    ) {
        use codesign_isa::asm::Program;
        use codesign_isa::cpu::Cpu;
        let mut program = instrs;
        program.push(Instr::Halt);
        let program = Program::from_instrs(program);
        let mut cpu = Cpu::new(4096);
        cpu.load_program(&program);
        // Unattached custom units, wild branches, misaligned or MMIO
        // accesses without a bus: all must surface as IsaError values.
        let _ = cpu.run(5_000);
    }
}

/// Random executable CDFG (no divides, so evaluation is total).
fn arb_cdfg() -> impl Strategy<Value = Cdfg> {
    let ops = prop::collection::vec((0u8..12, any::<u64>(), any::<u64>(), -100i64..100), 1..36);
    (1usize..6, ops).prop_map(|(inputs, script)| {
        let mut g = Cdfg::new("prop");
        let mut vals = Vec::new();
        for _ in 0..inputs {
            vals.push(g.input());
        }
        for (which, a, b, c) in script {
            let pick = |s: u64| vals[(s % vals.len() as u64) as usize];
            let (x, y) = (pick(a), pick(b));
            let id = match which {
                0 => g.op(OpKind::Add, &[x, y]),
                1 => g.op(OpKind::Sub, &[x, y]),
                2 => g.op(OpKind::Mul, &[x, y]),
                3 => g.op(OpKind::And, &[x, y]),
                4 => g.op(OpKind::Or, &[x, y]),
                5 => g.op(OpKind::Xor, &[x, y]),
                6 => g.op(OpKind::Shl, &[x, y]),
                7 => g.op(OpKind::Shr, &[x, y]),
                8 => g.op(OpKind::Min, &[x, y]),
                9 => g.op(OpKind::Select, &[pick(a.rotate_left(7)), x, y]),
                10 => g.op(OpKind::Abs, &[x]),
                _ => Ok(g.constant(c)),
            }
            .expect("structurally valid");
            vals.push(id);
        }
        // Up to three outputs from the tail of the value list.
        for k in 0..vals.len().min(3) {
            g.output(vals[vals.len() - 1 - k]).expect("valid output");
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compiled software computes exactly what the CDFG interpreter does.
    #[test]
    fn compiled_code_matches_interpreter(g in arb_cdfg(), seed in any::<i64>()) {
        let inputs: Vec<i64> = (0..g.input_count())
            .map(|i| seed.wrapping_mul(2654435761).wrapping_add(i as i64 * 97))
            .collect();
        let want = g.evaluate(&inputs).expect("total");
        let compiled = compile(&g).expect("compiles");
        let (got, _) = compiled.execute(&inputs).expect("runs");
        prop_assert_eq!(got, want);
    }

    /// The ASIP-extended program agrees with the baseline and the
    /// interpreter, for any mined extension within any budget.
    #[test]
    fn asip_extension_preserves_semantics(
        g in arb_cdfg(),
        seed in any::<i64>(),
        budget in 0u32..6_000,
    ) {
        let inputs: Vec<i64> = (0..g.input_count())
            .map(|i| seed.wrapping_add(i as i64 * 1313))
            .collect();
        let want = g.evaluate(&inputs).expect("total");
        let ext = AsipExtension::select(&[&g], budget);
        let fused = ext.compile(&g).expect("compiles");
        let mut cpu = ext.make_cpu(codesign_isa::codegen::MEM_BYTES);
        let (got, _) = fused.execute_on(&mut cpu, &inputs).expect("runs");
        prop_assert_eq!(got, want);
    }

    /// Fusion never makes the program slower.
    #[test]
    fn asip_extension_never_slows_down(g in arb_cdfg(), budget in 0u32..6_000) {
        let inputs: Vec<i64> = (0..g.input_count()).map(|i| i as i64).collect();
        let baseline = compile(&g).expect("compiles");
        let (_, base) = baseline.execute(&inputs).expect("runs");
        let ext = AsipExtension::select(&[&g], budget);
        let fused = ext.compile(&g).expect("compiles");
        let mut cpu = ext.make_cpu(codesign_isa::codegen::MEM_BYTES);
        let (_, with) = fused.execute_on(&mut cpu, &inputs).expect("runs");
        prop_assert!(with.cycles <= base.cycles, "{} > {}", with.cycles, base.cycles);
    }
}
