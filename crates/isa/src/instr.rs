//! The CR32 instruction set and its binary encoding.
//!
//! CR32 is a load/store architecture with sixteen 64-bit registers
//! (`r0` reads as zero), chosen so compiled software has exactly the
//! semantics of the CDFG interpreter in `codesign-ir`. The encoding is a
//! fixed 32-bit word format (the `li` constant-load occupies three words);
//! [`Instr::encode`] and [`decode`] round-trip every instruction.
//!
//! The per-instruction [`Instr::base_cycles`] table is the software half
//! of the timing model: single-cycle ALU, 3-cycle multiply, 12-cycle
//! divide, 2-cycle internal memory. Device accesses additionally pay bus
//! cycles at run time (see [`crate::cpu`]).

use serde::{Deserialize, Serialize};

use crate::error::IsaError;

/// Number of architectural registers.
pub const NUM_REGS: usize = 16;

/// An architectural register, `r0`–`r15`; `r0` is hard-wired to zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(u8);

impl Reg {
    /// The zero register.
    pub const ZERO: Reg = Reg(0);

    /// Creates a register.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 16`.
    #[must_use]
    pub fn new(n: u8) -> Self {
        assert!((n as usize) < NUM_REGS, "register r{n} out of range");
        Reg(n)
    }

    /// The register number.
    #[must_use]
    pub fn number(self) -> u8 {
        self.0
    }

    /// The dense index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A binary ALU operation (register-register).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// Wrapping add.
    Add,
    /// Wrapping subtract.
    Sub,
    /// Wrapping multiply.
    Mul,
    /// Signed divide (traps on zero divisor).
    Div,
    /// Signed remainder (traps on zero divisor).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Shift left logical (low 6 bits of rs2).
    Sll,
    /// Shift right arithmetic (low 6 bits of rs2).
    Sra,
    /// Set if less than (1/0).
    Slt,
    /// Set if less or equal (1/0).
    Sle,
    /// Set if equal (1/0).
    Seq,
    /// Set if not equal (1/0).
    Sne,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl AluOp {
    /// All ALU operations in encoding order.
    pub const ALL: [AluOp; 16] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Sra,
        AluOp::Slt,
        AluOp::Sle,
        AluOp::Seq,
        AluOp::Sne,
        AluOp::Min,
        AluOp::Max,
    ];

    /// Assembly mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sle => "sle",
            AluOp::Seq => "seq",
            AluOp::Sne => "sne",
            AluOp::Min => "min",
            AluOp::Max => "max",
        }
    }
}

/// A unary ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement.
    Not,
    /// Absolute value.
    Abs,
}

impl UnaryOp {
    /// All unary operations in encoding order.
    pub const ALL: [UnaryOp; 3] = [UnaryOp::Neg, UnaryOp::Not, UnaryOp::Abs];

    /// Assembly mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnaryOp::Neg => "neg",
            UnaryOp::Not => "not",
            UnaryOp::Abs => "abs",
        }
    }
}

/// A branch condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchCond {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if signed less-than.
    Lt,
    /// Branch if signed greater-or-equal.
    Ge,
}

impl BranchCond {
    /// All branch conditions in encoding order.
    pub const ALL: [BranchCond; 4] = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Ge,
    ];

    /// Assembly mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
        }
    }

    /// Evaluates the condition.
    #[must_use]
    pub fn taken(self, a: i64, b: i64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => a < b,
            BranchCond::Ge => a >= b,
        }
    }
}

/// One CR32 instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// `rd = rs1 <op> rs2`.
    Alu(AluOp, Reg, Reg, Reg),
    /// `rd = <op> rs1`.
    Unary(UnaryOp, Reg, Reg),
    /// `rd = if rs1 != 0 { rs2 } else { rd }` — conditional move, the
    /// branch-free select used by the code generator.
    Cmovnz(Reg, Reg, Reg),
    /// `rd = rs1 + imm` (sign-extended 16-bit immediate).
    Addi(Reg, Reg, i16),
    /// `rd = imm` — 64-bit constant load; occupies three encoding words.
    Li(Reg, i64),
    /// `rd = mem64[rs1 + imm]` (internal memory only).
    Ld(Reg, Reg, i16),
    /// `mem64[rs1 + imm] = rs2` (internal memory only).
    Sd(Reg, Reg, i16),
    /// `rd = sign_extend(mem32[rs1 + imm])`; the MMIO access width.
    Lw(Reg, Reg, i16),
    /// `mem32[rs1 + imm] = low32(rs2)`; the MMIO access width.
    Sw(Reg, Reg, i16),
    /// Conditional pc-relative branch (offset in instructions).
    Branch(BranchCond, Reg, Reg, i16),
    /// `rd = pc + 1; pc = target` (absolute instruction index).
    Jal(Reg, u32),
    /// `rd = pc + 1; pc = rs1`.
    Jalr(Reg, Reg),
    /// `rd = custom_unit[n](rs1, rs2, imm)` — ASIP extension slot with a
    /// 64-bit immediate field (fused constants such as filter
    /// coefficients); occupies three encoding words.
    Custom(u8, Reg, Reg, Reg, i64),
    /// Enable interrupts.
    Ei,
    /// Disable interrupts.
    Di,
    /// Return from interrupt (`pc = epc`, re-enable interrupts).
    Rti,
    /// No operation.
    Nop,
    /// Stop the processor.
    Halt,
}

// Opcode bytes (bits 31..24 of the first word).
const OP_ALU: u8 = 0x10; // + AluOp index
const OP_UNARY: u8 = 0x20; // + UnaryOp index
const OP_CMOVNZ: u8 = 0x28;
const OP_ADDI: u8 = 0x30;
const OP_LI: u8 = 0x31;
const OP_LD: u8 = 0x38;
const OP_SD: u8 = 0x39;
const OP_LW: u8 = 0x3A;
const OP_SW: u8 = 0x3B;
const OP_BRANCH: u8 = 0x40; // + BranchCond index
const OP_JAL: u8 = 0x48;
const OP_JALR: u8 = 0x49;
const OP_CUSTOM: u8 = 0x50;
const OP_EI: u8 = 0x60;
const OP_DI: u8 = 0x61;
const OP_RTI: u8 = 0x62;
const OP_NOP: u8 = 0x00;
const OP_HALT: u8 = 0x01;

fn pack(op: u8, rd: Reg, rs1: Reg, rs2: Reg, low: u8) -> u32 {
    (u32::from(op) << 24)
        | (u32::from(rd.0) << 20)
        | (u32::from(rs1.0) << 16)
        | (u32::from(rs2.0) << 12)
        | u32::from(low)
}

fn pack_imm(op: u8, rd: Reg, rs1: Reg, imm: i16) -> u32 {
    (u32::from(op) << 24)
        | (u32::from(rd.0) << 20)
        | (u32::from(rs1.0) << 16)
        | u32::from(imm as u16)
}

fn field_rd(w: u32) -> Reg {
    Reg(((w >> 20) & 0xF) as u8)
}

fn field_rs1(w: u32) -> Reg {
    Reg(((w >> 16) & 0xF) as u8)
}

fn field_rs2(w: u32) -> Reg {
    Reg(((w >> 12) & 0xF) as u8)
}

fn field_imm16(w: u32) -> i16 {
    (w & 0xFFFF) as u16 as i16
}

impl Instr {
    /// Encodes the instruction, appending one or more 32-bit words.
    pub fn encode(self, out: &mut Vec<u32>) {
        match self {
            Instr::Alu(op, rd, rs1, rs2) => {
                let idx = AluOp::ALL.iter().position(|&o| o == op).expect("in ALL") as u8;
                out.push(pack(OP_ALU + idx, rd, rs1, rs2, 0));
            }
            Instr::Unary(op, rd, rs1) => {
                let idx = UnaryOp::ALL.iter().position(|&o| o == op).expect("in ALL") as u8;
                out.push(pack(OP_UNARY + idx, rd, rs1, Reg::ZERO, 0));
            }
            Instr::Cmovnz(rd, rs1, rs2) => out.push(pack(OP_CMOVNZ, rd, rs1, rs2, 0)),
            Instr::Addi(rd, rs1, imm) => out.push(pack_imm(OP_ADDI, rd, rs1, imm)),
            Instr::Li(rd, imm) => {
                out.push(pack(OP_LI, rd, Reg::ZERO, Reg::ZERO, 0));
                out.push((imm as u64 & 0xFFFF_FFFF) as u32);
                out.push(((imm as u64) >> 32) as u32);
            }
            Instr::Ld(rd, rs1, imm) => out.push(pack_imm(OP_LD, rd, rs1, imm)),
            Instr::Sd(rs2, rs1, imm) => out.push(pack_imm(OP_SD, rs2, rs1, imm)),
            Instr::Lw(rd, rs1, imm) => out.push(pack_imm(OP_LW, rd, rs1, imm)),
            Instr::Sw(rs2, rs1, imm) => out.push(pack_imm(OP_SW, rs2, rs1, imm)),
            Instr::Branch(cond, rs1, rs2, off) => {
                let idx = BranchCond::ALL
                    .iter()
                    .position(|&c| c == cond)
                    .expect("in ALL") as u8;
                // rs1/rs2 live in the rd/rs1 fields; offset in imm16.
                out.push(pack_imm(OP_BRANCH + idx, rs1, rs2, off));
            }
            Instr::Jal(rd, target) => {
                assert!(target < (1 << 20), "jal target exceeds 20 bits");
                out.push((u32::from(OP_JAL) << 24) | (u32::from(rd.0) << 20) | target);
            }
            Instr::Jalr(rd, rs1) => out.push(pack(OP_JALR, rd, rs1, Reg::ZERO, 0)),
            Instr::Custom(unit, rd, rs1, rs2, imm) => {
                out.push(pack(OP_CUSTOM, rd, rs1, rs2, unit));
                out.push((imm as u64 & 0xFFFF_FFFF) as u32);
                out.push(((imm as u64) >> 32) as u32);
            }
            Instr::Ei => out.push(u32::from(OP_EI) << 24),
            Instr::Di => out.push(u32::from(OP_DI) << 24),
            Instr::Rti => out.push(u32::from(OP_RTI) << 24),
            Instr::Nop => out.push(u32::from(OP_NOP) << 24),
            Instr::Halt => out.push(u32::from(OP_HALT) << 24),
        }
    }

    /// Number of encoding words this instruction occupies.
    #[must_use]
    pub fn encoded_words(self) -> usize {
        match self {
            Instr::Li(..) | Instr::Custom(..) => 3,
            _ => 1,
        }
    }

    /// Base execution cost in cycles, excluding bus transactions.
    #[must_use]
    pub fn base_cycles(self) -> u64 {
        match self {
            Instr::Alu(AluOp::Mul, ..) => 3,
            Instr::Alu(AluOp::Div | AluOp::Rem, ..) => 12,
            Instr::Ld(..) | Instr::Sd(..) | Instr::Lw(..) | Instr::Sw(..) => 2,
            Instr::Li(..) => 2,
            Instr::Branch(..) | Instr::Jal(..) | Instr::Jalr(..) => 2,
            // Custom-unit latency is added by the CPU from the unit model.
            _ => 1,
        }
    }
}

/// Decodes one instruction starting at `words\[0\]`; returns the
/// instruction and how many words it consumed.
///
/// # Errors
///
/// Returns [`IsaError::DecodeInstr`] for an unknown opcode and a truncated
/// multi-word instruction.
pub fn decode(words: &[u32]) -> Result<(Instr, usize), IsaError> {
    let Some(&w) = words.first() else {
        return Err(IsaError::DecodeInstr { word: 0 });
    };
    let op = (w >> 24) as u8;
    let instr = match op {
        OP_NOP => Instr::Nop,
        OP_HALT => Instr::Halt,
        OP_EI => Instr::Ei,
        OP_DI => Instr::Di,
        OP_RTI => Instr::Rti,
        o if (OP_ALU..OP_ALU + 16).contains(&o) => {
            let alu = AluOp::ALL[(o - OP_ALU) as usize];
            Instr::Alu(alu, field_rd(w), field_rs1(w), field_rs2(w))
        }
        o if (OP_UNARY..OP_UNARY + 3).contains(&o) => {
            let un = UnaryOp::ALL[(o - OP_UNARY) as usize];
            Instr::Unary(un, field_rd(w), field_rs1(w))
        }
        OP_CMOVNZ => Instr::Cmovnz(field_rd(w), field_rs1(w), field_rs2(w)),
        OP_ADDI => Instr::Addi(field_rd(w), field_rs1(w), field_imm16(w)),
        OP_LI => {
            if words.len() < 3 {
                return Err(IsaError::DecodeInstr { word: w });
            }
            let imm = (u64::from(words[1]) | (u64::from(words[2]) << 32)) as i64;
            return Ok((Instr::Li(field_rd(w), imm), 3));
        }
        OP_LD => Instr::Ld(field_rd(w), field_rs1(w), field_imm16(w)),
        OP_SD => Instr::Sd(field_rd(w), field_rs1(w), field_imm16(w)),
        OP_LW => Instr::Lw(field_rd(w), field_rs1(w), field_imm16(w)),
        OP_SW => Instr::Sw(field_rd(w), field_rs1(w), field_imm16(w)),
        o if (OP_BRANCH..OP_BRANCH + 4).contains(&o) => {
            let cond = BranchCond::ALL[(o - OP_BRANCH) as usize];
            Instr::Branch(cond, field_rd(w), field_rs1(w), field_imm16(w))
        }
        OP_JAL => Instr::Jal(field_rd(w), w & 0xF_FFFF),
        OP_JALR => Instr::Jalr(field_rd(w), field_rs1(w)),
        OP_CUSTOM => {
            if words.len() < 3 {
                return Err(IsaError::DecodeInstr { word: w });
            }
            let imm = (u64::from(words[1]) | (u64::from(words[2]) << 32)) as i64;
            return Ok((
                Instr::Custom(
                    (w & 0xFF) as u8,
                    field_rd(w),
                    field_rs1(w),
                    field_rs2(w),
                    imm,
                ),
                3,
            ));
        }
        _ => return Err(IsaError::DecodeInstr { word: w }),
    };
    Ok((instr, 1))
}

/// Encodes a whole program to its binary image.
#[must_use]
pub fn encode_program(instrs: &[Instr]) -> Vec<u32> {
    let mut out = Vec::with_capacity(instrs.len());
    for &i in instrs {
        i.encode(&mut out);
    }
    out
}

/// Decodes a binary image back to instructions.
///
/// # Errors
///
/// Returns [`IsaError::DecodeInstr`] at the first undecodable word.
pub fn decode_program(words: &[u32]) -> Result<Vec<Instr>, IsaError> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < words.len() {
        let (instr, n) = decode(&words[pos..])?;
        out.push(instr);
        pos += n;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u8) -> Reg {
        Reg::new(n)
    }

    fn sample_instrs() -> Vec<Instr> {
        let mut v = vec![
            Instr::Cmovnz(r(1), r(2), r(3)),
            Instr::Addi(r(4), r(5), -123),
            Instr::Li(r(6), -0x1234_5678_9ABC),
            Instr::Li(r(7), 0x7FFF_FFFF_FFFF_FFFF),
            Instr::Ld(r(1), r(2), 64),
            Instr::Sd(r(3), r(4), -8),
            Instr::Lw(r(5), r(6), 0x100),
            Instr::Sw(r(7), r(8), 4),
            Instr::Jal(r(15), 12345),
            Instr::Jalr(r(0), r(9)),
            Instr::Custom(7, r(10), r(11), r(12), -0x7777_1234_5678),
            Instr::Ei,
            Instr::Di,
            Instr::Rti,
            Instr::Nop,
            Instr::Halt,
        ];
        for op in AluOp::ALL {
            v.push(Instr::Alu(op, r(1), r(2), r(3)));
        }
        for op in UnaryOp::ALL {
            v.push(Instr::Unary(op, r(4), r(5)));
        }
        for cond in BranchCond::ALL {
            v.push(Instr::Branch(cond, r(1), r(2), -7));
        }
        v
    }

    #[test]
    fn every_instruction_round_trips() {
        let instrs = sample_instrs();
        let image = encode_program(&instrs);
        let back = decode_program(&image).unwrap();
        assert_eq!(instrs, back);
    }

    #[test]
    fn li_occupies_three_words() {
        let mut out = Vec::new();
        Instr::Li(r(1), i64::MIN).encode(&mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(Instr::Li(r(1), 0).encoded_words(), 3);
        assert_eq!(Instr::Nop.encoded_words(), 1);
    }

    #[test]
    fn truncated_li_rejected() {
        let mut out = Vec::new();
        Instr::Li(r(1), 42).encode(&mut out);
        out.truncate(2);
        assert!(matches!(decode(&out), Err(IsaError::DecodeInstr { .. })));
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert!(matches!(
            decode(&[0xFF00_0000]),
            Err(IsaError::DecodeInstr { word: 0xFF00_0000 })
        ));
    }

    #[test]
    fn branch_conditions_evaluate() {
        assert!(BranchCond::Eq.taken(3, 3));
        assert!(!BranchCond::Eq.taken(3, 4));
        assert!(BranchCond::Ne.taken(3, 4));
        assert!(BranchCond::Lt.taken(-1, 0));
        assert!(BranchCond::Ge.taken(0, 0));
    }

    #[test]
    fn timing_model_orders_op_classes() {
        let alu = Instr::Alu(AluOp::Add, r(1), r(1), r(1)).base_cycles();
        let mul = Instr::Alu(AluOp::Mul, r(1), r(1), r(1)).base_cycles();
        let div = Instr::Alu(AluOp::Div, r(1), r(1), r(1)).base_cycles();
        assert!(alu < mul && mul < div);
    }

    #[test]
    #[should_panic(expected = "register r16 out of range")]
    fn register_bounds_checked() {
        let _ = Reg::new(16);
    }

    #[test]
    fn negative_branch_offset_survives_encoding() {
        let i = Instr::Branch(BranchCond::Lt, r(1), r(2), -32768);
        let mut out = Vec::new();
        i.encode(&mut out);
        let (back, _) = decode(&out).unwrap();
        assert_eq!(back, i);
    }
}
