//! Code generation from CDFG kernels to CR32 programs.
//!
//! This is the "software implementation" half of every HW/SW trade-off in
//! the paper: the same `codesign-ir` kernel that `codesign-hls`
//! synthesizes into a co-processor is compiled here into a CR32 program,
//! so partitioners can compare *measured* software cycles against
//! synthesized hardware latency, and co-simulation can verify the two
//! against the CDFG interpreter.
//!
//! The compiler walks the CDFG in topological order and performs greedy
//! register allocation over the twelve caller-visible pool registers,
//! spilling least-recently-used live values to a dedicated memory region.
//! Kernel inputs are read from [`IN_BASE`] and outputs stored to
//! [`OUT_BASE`], so a harness drives a compiled kernel purely through
//! memory.

use std::collections::{BTreeMap, BTreeSet};

use codesign_ir::cdfg::{Cdfg, OpId, OpKind};

use crate::asm::Program;
use crate::cpu::{Cpu, CpuStats};
use crate::error::IsaError;
use crate::instr::{AluOp, Instr, Reg, UnaryOp};

/// Byte address of kernel input word 0.
pub const IN_BASE: u64 = 0x100;
/// Byte address of kernel output word 0.
pub const OUT_BASE: u64 = 0x800;
/// Byte address of the first spill slot.
pub const SPILL_BASE: u64 = 0x1000;
/// Bytes of data memory a compiled kernel needs.
pub const MEM_BYTES: usize = 0x10000;

const MAX_INPUTS: usize = ((OUT_BASE - IN_BASE) / 8) as usize;
const MAX_OUTPUTS: usize = ((SPILL_BASE - OUT_BASE) / 8) as usize;
const MAX_SPILLS: usize = ((0x8000 - SPILL_BASE) / 8) as usize;

/// Pool registers available to the allocator (`r1`–`r12`); `r13` is the
/// compiler scratch register.
const POOL: usize = 12;

fn pool_reg(i: usize) -> Reg {
    Reg::new((i + 1) as u8)
}

const SCRATCH: u8 = 13;

/// A kernel compiled to CR32, with its memory calling convention.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    name: String,
    program: Program,
    inputs: usize,
    outputs: usize,
}

impl CompiledKernel {
    /// Kernel name (from the CDFG).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The generated program.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Number of input words expected at [`IN_BASE`].
    #[must_use]
    pub fn input_count(&self) -> usize {
        self.inputs
    }

    /// Number of output words produced at [`OUT_BASE`].
    #[must_use]
    pub fn output_count(&self) -> usize {
        self.outputs
    }

    /// Writes `inputs` into a CPU's memory at the calling convention
    /// addresses.
    ///
    /// # Errors
    ///
    /// Propagates memory faults (CPU memory too small).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not match [`CompiledKernel::input_count`].
    pub fn write_inputs(&self, cpu: &mut Cpu, inputs: &[i64]) -> Result<(), IsaError> {
        assert_eq!(inputs.len(), self.inputs, "input count mismatch");
        for (i, &v) in inputs.iter().enumerate() {
            cpu.store_word(IN_BASE + 8 * i as u64, v)?;
        }
        Ok(())
    }

    /// Reads the outputs from a CPU's memory.
    ///
    /// # Errors
    ///
    /// Propagates memory faults (CPU memory too small).
    pub fn read_outputs(&self, cpu: &Cpu) -> Result<Vec<i64>, IsaError> {
        (0..self.outputs)
            .map(|i| cpu.load_word(OUT_BASE + 8 * i as u64))
            .collect()
    }

    /// Convenience: runs the kernel on a fresh CPU and returns
    /// `(outputs, stats)`.
    ///
    /// # Errors
    ///
    /// Propagates execution faults and [`IsaError::Timeout`] against a
    /// budget proportional to the program size.
    pub fn execute(&self, inputs: &[i64]) -> Result<(Vec<i64>, CpuStats), IsaError> {
        let mut cpu = Cpu::new(MEM_BYTES);
        self.execute_on(&mut cpu, inputs)
    }

    /// Runs the kernel on a caller-provided CPU (e.g. one with custom
    /// functional units attached); loads the program, writes the inputs,
    /// runs to `halt`, and reads the outputs.
    ///
    /// # Errors
    ///
    /// Propagates execution faults and [`IsaError::Timeout`] against a
    /// budget proportional to the program size.
    pub fn execute_on(
        &self,
        cpu: &mut Cpu,
        inputs: &[i64],
    ) -> Result<(Vec<i64>, CpuStats), IsaError> {
        cpu.load_program(&self.program);
        self.write_inputs(cpu, inputs)?;
        let budget = 100 * self.program.len() as u64 + 10_000;
        let stats = cpu.run(budget)?;
        Ok((self.read_outputs(cpu)?, stats))
    }
}

/// How one fused operation is emitted: which `custom` slot implements it
/// and which CDFG values feed its (at most two) register operands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusedEmit {
    /// Custom-unit slot (`custom<slot>` instruction).
    pub slot: u8,
    /// External operand values, in `rs1, rs2` order (length 0–2).
    pub ext: Vec<OpId>,
    /// The instruction's immediate field (a fused constant such as a
    /// filter coefficient).
    pub imm: i64,
}

/// A fusion plan produced by the ASIP flow: operations folded away and
/// operations replaced by `custom` instructions.
///
/// An empty plan compiles the CDFG conventionally.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FusionPlan {
    /// Producer operations absorbed into a fused instruction; they emit
    /// no code.
    pub skipped: BTreeSet<usize>,
    /// Consumer operations emitted as `custom` instructions.
    pub fused: BTreeMap<usize, FusedEmit>,
}

impl FusionPlan {
    /// An empty plan (conventional compilation).
    #[must_use]
    pub fn new() -> Self {
        FusionPlan::default()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// Not yet materialized (only possible before definition).
    None,
    /// Live in a pool register.
    Reg(usize),
    /// Stored in the spill slot assigned to the value.
    Spilled,
}

struct Allocator {
    code: Vec<Instr>,
    /// value currently held by each pool register
    contents: [Option<OpId>; POOL],
    /// last-use tick per pool register, for LRU eviction
    ticks: [u64; POOL],
    clock: u64,
    loc: Vec<Loc>,
    uses_left: Vec<u32>,
    spill_slot: Vec<Option<usize>>,
    next_slot: usize,
}

/// Transitive liveness over the effective (post-fusion) graph: an op is
/// live iff some output depends on it. Dead ops emit no code and do not
/// force their operands into registers.
fn live_set(g: &Cdfg, plan: &FusionPlan) -> Vec<bool> {
    let mut live = vec![false; g.len()];
    let mut stack: Vec<usize> = g
        .iter()
        .filter(|(_, n)| matches!(n.kind(), OpKind::Output(_)))
        .map(|(id, _)| id.index())
        .collect();
    while let Some(i) = stack.pop() {
        if std::mem::replace(&mut live[i], true) {
            continue;
        }
        if let Some(emit) = plan.fused.get(&i) {
            stack.extend(emit.ext.iter().map(|a| a.index()));
        } else {
            stack.extend(g.node(OpId::from_index(i)).args().iter().map(|a| a.index()));
        }
    }
    live
}

impl Allocator {
    fn new(g: &Cdfg, plan: &FusionPlan, live: &[bool]) -> Self {
        // Count uses over the *effective, live* graph: dead and skipped
        // ops contribute nothing, fused consumers reference only their
        // external operands (baked constants and the absorbed producer do
        // not keep values alive).
        let mut uses_left = vec![0u32; g.len()];
        for (id, node) in g.iter() {
            if plan.skipped.contains(&id.index()) || !live[id.index()] {
                continue;
            }
            if let Some(emit) = plan.fused.get(&id.index()) {
                for a in &emit.ext {
                    uses_left[a.index()] += 1;
                }
                continue;
            }
            for a in node.args() {
                uses_left[a.index()] += 1;
            }
        }
        Allocator {
            code: Vec::new(),
            contents: [None; POOL],
            ticks: [0; POOL],
            clock: 0,
            loc: vec![Loc::None; g.len()],
            uses_left,
            spill_slot: vec![None; g.len()],
            next_slot: 0,
        }
    }

    fn touch(&mut self, r: usize) {
        self.clock += 1;
        self.ticks[r] = self.clock;
    }

    fn slot_addr(&mut self, v: OpId) -> Result<i16, IsaError> {
        let slot = match self.spill_slot[v.index()] {
            Some(s) => s,
            None => {
                let s = self.next_slot;
                if s >= MAX_SPILLS {
                    return Err(IsaError::Codegen {
                        reason: "spill area exhausted".to_string(),
                    });
                }
                self.next_slot += 1;
                self.spill_slot[v.index()] = Some(s);
                s
            }
        };
        Ok((SPILL_BASE + 8 * slot as u64) as i16)
    }

    /// Picks a register, spilling the LRU live value if necessary.
    /// Registers in `exclude` are never chosen.
    fn alloc_reg(&mut self, exclude: &[usize]) -> Result<usize, IsaError> {
        // Prefer a register holding nothing or a dead value.
        for r in 0..POOL {
            if exclude.contains(&r) {
                continue;
            }
            match self.contents[r] {
                None => {
                    self.touch(r);
                    return Ok(r);
                }
                Some(v) if self.uses_left[v.index()] == 0 => {
                    self.contents[r] = None;
                    self.loc[v.index()] = Loc::None;
                    self.touch(r);
                    return Ok(r);
                }
                _ => {}
            }
        }
        // Evict the least recently used live value.
        let victim = (0..POOL)
            .filter(|r| !exclude.contains(r))
            .min_by_key(|&r| self.ticks[r])
            .ok_or_else(|| IsaError::Codegen {
                reason: "all registers pinned".to_string(),
            })?;
        let v = self.contents[victim].expect("live values only at this point");
        let addr = self.slot_addr(v)?;
        self.code.push(Instr::Sd(pool_reg(victim), Reg::ZERO, addr));
        self.loc[v.index()] = Loc::Spilled;
        self.contents[victim] = None;
        self.touch(victim);
        Ok(victim)
    }

    /// Ensures `v` is in a pool register, reloading from its spill slot if
    /// needed; returns the pool index.
    fn ensure_in_reg(&mut self, v: OpId, exclude: &[usize]) -> Result<usize, IsaError> {
        match self.loc[v.index()] {
            Loc::Reg(r) => {
                self.touch(r);
                Ok(r)
            }
            Loc::Spilled => {
                let r = self.alloc_reg(exclude)?;
                let addr = self.slot_addr(v)?;
                self.code.push(Instr::Ld(pool_reg(r), Reg::ZERO, addr));
                self.contents[r] = Some(v);
                self.loc[v.index()] = Loc::Reg(r);
                Ok(r)
            }
            Loc::None => Err(IsaError::Codegen {
                reason: format!("value {v} used before definition"),
            }),
        }
    }

    fn consume(&mut self, v: OpId) {
        let u = &mut self.uses_left[v.index()];
        *u = u.saturating_sub(1);
    }

    fn define(&mut self, v: OpId, r: usize) {
        self.contents[r] = Some(v);
        self.loc[v.index()] = Loc::Reg(r);
        self.touch(r);
    }
}

/// Compiles a CDFG into a CR32 program following the memory calling
/// convention of this module.
///
/// # Errors
///
/// Returns [`IsaError::Codegen`] if the kernel exceeds the input/output/
/// spill capacity of the calling convention.
pub fn compile(g: &Cdfg) -> Result<CompiledKernel, IsaError> {
    compile_with_fusion(g, &FusionPlan::new())
}

/// Compiles a CDFG with ASIP instruction fusion: operations named in
/// `plan` are emitted as `custom` instructions instead of base-ISA
/// sequences. See [`crate::asip`] for plan construction.
///
/// # Errors
///
/// Returns [`IsaError::Codegen`] if the kernel exceeds the calling
/// convention's capacity or a fused op has more than two external
/// operands.
pub fn compile_with_fusion(g: &Cdfg, plan: &FusionPlan) -> Result<CompiledKernel, IsaError> {
    if g.input_count() > MAX_INPUTS {
        return Err(IsaError::Codegen {
            reason: format!("kernel has {} inputs, max {MAX_INPUTS}", g.input_count()),
        });
    }
    if g.output_count() > MAX_OUTPUTS {
        return Err(IsaError::Codegen {
            reason: format!("kernel has {} outputs, max {MAX_OUTPUTS}", g.output_count()),
        });
    }
    let live = live_set(g, plan);
    let mut a = Allocator::new(g, plan, &live);

    for (id, node) in g.iter() {
        if plan.skipped.contains(&id.index()) || !live[id.index()] {
            continue;
        }
        if let Some(emit) = plan.fused.get(&id.index()) {
            if emit.ext.len() > 2 {
                return Err(IsaError::Codegen {
                    reason: format!("fused op {id} has {} external operands", emit.ext.len()),
                });
            }
            let mut regs = [Reg::ZERO; 2];
            let mut held = Vec::new();
            for (i, &v) in emit.ext.iter().enumerate() {
                let r = a.ensure_in_reg(v, &held)?;
                held.push(r);
                regs[i] = pool_reg(r);
            }
            for &v in &emit.ext {
                a.consume(v);
            }
            if a.uses_left[id.index()] > 0 {
                let rd = a.alloc_reg(&held)?;
                a.code.push(Instr::Custom(
                    emit.slot,
                    pool_reg(rd),
                    regs[0],
                    regs[1],
                    emit.imm,
                ));
                a.define(id, rd);
            }
            continue;
        }
        match node.kind() {
            OpKind::Input(idx) => {
                // Skip dead inputs entirely.
                if a.uses_left[id.index()] == 0 {
                    continue;
                }
                let r = a.alloc_reg(&[])?;
                a.code.push(Instr::Ld(
                    pool_reg(r),
                    Reg::ZERO,
                    (IN_BASE + 8 * u64::from(idx)) as i16,
                ));
                a.define(id, r);
            }
            OpKind::Const(c) => {
                if a.uses_left[id.index()] == 0 {
                    continue;
                }
                let r = a.alloc_reg(&[])?;
                a.code.push(Instr::Li(pool_reg(r), c));
                a.define(id, r);
            }
            OpKind::Output(idx) => {
                let src = node.args()[0];
                let r = a.ensure_in_reg(src, &[])?;
                a.consume(src);
                a.code.push(Instr::Sd(
                    pool_reg(r),
                    Reg::ZERO,
                    (OUT_BASE + 8 * u64::from(idx)) as i16,
                ));
            }
            OpKind::Select => {
                let (c, t, e) = (node.args()[0], node.args()[1], node.args()[2]);
                let rc = a.ensure_in_reg(c, &[])?;
                let rt = a.ensure_in_reg(t, &[rc])?;
                let re = a.ensure_in_reg(e, &[rc, rt])?;
                // scratch = e; if c != 0 scratch = t; dst = scratch
                a.code.push(Instr::Alu(
                    AluOp::Add,
                    Reg::new(SCRATCH),
                    pool_reg(re),
                    Reg::ZERO,
                ));
                a.code
                    .push(Instr::Cmovnz(Reg::new(SCRATCH), pool_reg(rc), pool_reg(rt)));
                a.consume(c);
                a.consume(t);
                a.consume(e);
                if a.uses_left[id.index()] > 0 {
                    let rd = a.alloc_reg(&[])?;
                    a.code.push(Instr::Alu(
                        AluOp::Add,
                        pool_reg(rd),
                        Reg::new(SCRATCH),
                        Reg::ZERO,
                    ));
                    a.define(id, rd);
                }
            }
            kind => {
                let alu2 = |op: AluOp| Some(op);
                let mapped: Option<AluOp> = match kind {
                    OpKind::Add => alu2(AluOp::Add),
                    OpKind::Sub => alu2(AluOp::Sub),
                    OpKind::Mul => alu2(AluOp::Mul),
                    OpKind::Div => alu2(AluOp::Div),
                    OpKind::Rem => alu2(AluOp::Rem),
                    OpKind::And => alu2(AluOp::And),
                    OpKind::Or => alu2(AluOp::Or),
                    OpKind::Xor => alu2(AluOp::Xor),
                    OpKind::Shl => alu2(AluOp::Sll),
                    OpKind::Shr => alu2(AluOp::Sra),
                    OpKind::Lt => alu2(AluOp::Slt),
                    OpKind::Le => alu2(AluOp::Sle),
                    OpKind::Eq => alu2(AluOp::Seq),
                    OpKind::Ne => alu2(AluOp::Sne),
                    OpKind::Min => alu2(AluOp::Min),
                    OpKind::Max => alu2(AluOp::Max),
                    _ => None,
                };
                if let Some(op) = mapped {
                    let (x, y) = (node.args()[0], node.args()[1]);
                    let rx = a.ensure_in_reg(x, &[])?;
                    let ry = a.ensure_in_reg(y, &[rx])?;
                    a.consume(x);
                    a.consume(y);
                    if a.uses_left[id.index()] > 0 {
                        let rd = a.alloc_reg(&[rx, ry])?;
                        a.code
                            .push(Instr::Alu(op, pool_reg(rd), pool_reg(rx), pool_reg(ry)));
                        a.define(id, rd);
                    }
                    continue;
                }
                let unary = match kind {
                    OpKind::Not => UnaryOp::Not,
                    OpKind::Neg => UnaryOp::Neg,
                    OpKind::Abs => UnaryOp::Abs,
                    other => {
                        return Err(IsaError::Codegen {
                            reason: format!("unsupported op {other:?}"),
                        })
                    }
                };
                let x = node.args()[0];
                let rx = a.ensure_in_reg(x, &[])?;
                a.consume(x);
                if a.uses_left[id.index()] > 0 {
                    let rd = a.alloc_reg(&[rx])?;
                    a.code.push(Instr::Unary(unary, pool_reg(rd), pool_reg(rx)));
                    a.define(id, rd);
                }
            }
        }
    }
    a.code.push(Instr::Halt);

    Ok(CompiledKernel {
        name: g.name().to_string(),
        program: Program::from_instrs(a.code),
        inputs: g.input_count(),
        outputs: g.output_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_ir::workload::kernels;

    fn check_kernel(g: &Cdfg, inputs: &[i64]) {
        let compiled = compile(g).unwrap_or_else(|e| panic!("{}: {e}", g.name()));
        let (got, _) = compiled
            .execute(inputs)
            .unwrap_or_else(|e| panic!("{}: {e}", g.name()));
        let want = g.evaluate(inputs).expect("interpreter");
        assert_eq!(got, want, "{} on {inputs:?}", g.name());
    }

    #[test]
    fn all_kernels_match_interpreter_on_patterned_inputs() {
        for g in kernels::all() {
            let inputs: Vec<i64> = (0..g.input_count())
                .map(|i| (i as i64 * 37 - 51) % 101)
                .collect();
            check_kernel(&g, &inputs);
        }
    }

    #[test]
    fn crc32_matches_on_wide_values() {
        let g = kernels::crc32_byte();
        check_kernel(&g, &[0xFFFF_FFFF, 0xA5]);
        check_kernel(&g, &[0x1234_5678, 0xFF]);
    }

    #[test]
    fn select_kernel_compiles() {
        use codesign_ir::cdfg::{Cdfg, OpKind};
        let mut g = Cdfg::new("sel");
        let c = g.input();
        let a = g.input();
        let b = g.input();
        let s = g.op(OpKind::Select, &[c, a, b]).unwrap();
        let t = g.op(OpKind::Add, &[s, s]).unwrap();
        g.output(t).unwrap();
        check_kernel(&g, &[1, 10, 20]);
        check_kernel(&g, &[0, 10, 20]);
    }

    #[test]
    fn spilling_kernel_is_still_correct() {
        // matmul(4) has 32 live-ish inputs, far beyond the 12-register
        // pool, forcing the spill path.
        let g = kernels::matmul(4);
        let inputs: Vec<i64> = (0..g.input_count()).map(|i| i as i64 - 16).collect();
        let compiled = compile(&g).unwrap();
        // Confirm spills actually happened: more instructions than ops.
        assert!(compiled.program().len() > g.len());
        check_kernel(&g, &inputs);
    }

    #[test]
    fn dead_values_generate_no_code() {
        use codesign_ir::cdfg::{Cdfg, OpKind};
        let mut g = Cdfg::new("dead");
        let a = g.input();
        let b = g.input();
        let _dead = g.op(OpKind::Mul, &[a, b]).unwrap();
        let live = g.op(OpKind::Add, &[a, b]).unwrap();
        g.output(live).unwrap();
        let compiled = compile(&g).unwrap();
        let has_mul = compiled
            .program()
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Alu(AluOp::Mul, ..)));
        assert!(!has_mul, "dead multiply must be eliminated");
        check_kernel(&g, &[3, 4]);
    }

    #[test]
    fn software_cost_scales_with_kernel_size() {
        let small = compile(&kernels::fir(4)).unwrap();
        let big = compile(&kernels::fir(32)).unwrap();
        let (_, s1) = small.execute(&[1; 4]).unwrap();
        let (_, s2) = big.execute(&vec![1; 32]).unwrap();
        assert!(s2.cycles > 2 * s1.cycles);
    }

    #[test]
    fn compiled_kernel_reports_shapes() {
        let k = compile(&kernels::dct8()).unwrap();
        assert_eq!(k.input_count(), 8);
        assert_eq!(k.output_count(), 8);
        assert_eq!(k.name(), "dct8");
    }

    #[test]
    fn optimizer_shrinks_programs_without_changing_results() {
        use codesign_ir::opt::optimize;
        // crc32 re-creates the same shift-amount constants each round;
        // folding and CSE shrink it, and the compiled program follows.
        let g = kernels::crc32_byte();
        let (opt, stats) = optimize(&g).unwrap();
        assert!(stats.ops_after < stats.ops_before);
        let inputs = [0xFFFF_FFFFi64, 0x5A];
        let want = g.evaluate(&inputs).unwrap();
        let base = compile(&g).unwrap();
        let lean = compile(&opt).unwrap();
        let (out_base, stats_base) = base.execute(&inputs).unwrap();
        let (out_lean, stats_lean) = lean.execute(&inputs).unwrap();
        assert_eq!(out_base, want);
        assert_eq!(out_lean, want);
        assert!(
            stats_lean.cycles <= stats_base.cycles,
            "optimized {} vs baseline {}",
            stats_lean.cycles,
            stats_base.cycles
        );
        assert!(lean.program().len() <= base.program().len());
    }
}
