//! Two-pass assembler and disassembler for CR32.
//!
//! Syntax is line-oriented. `;` and `#` start comments. A label is a word
//! followed by `:`; the `.vector <label>` directive installs the interrupt
//! vector. Branches take a label and assemble to a pc-relative offset
//! (relative to the next instruction); `jal` takes a label and assembles
//! to an absolute instruction index.
//!
//! ```text
//! .vector isr
//! start:
//!     li   r1, 1000
//! loop:
//!     addi r1, r1, -1
//!     bne  r1, r0, loop
//!     halt
//! isr:
//!     rti
//! ```

use std::collections::BTreeMap;

use crate::error::IsaError;
use crate::instr::{AluOp, BranchCond, Instr, Reg, UnaryOp, NUM_REGS};

/// An assembled program: decoded instructions plus symbol information.
///
/// The program counter indexes [`Program::instrs`] directly (a Harvard
/// instruction store); [`codesign_rtl`] cycle costs account for the wider
/// encoded footprint of multi-word instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Instructions in order.
    pub instrs: Vec<Instr>,
    /// Instruction index where execution starts.
    pub entry: usize,
    /// Instruction index of the interrupt vector, if `.vector` was used.
    pub ivec: Option<usize>,
    /// Label table (name → instruction index).
    pub labels: BTreeMap<String, usize>,
}

impl Program {
    /// Wraps a raw instruction sequence (entry 0, no vector, no labels).
    #[must_use]
    pub fn from_instrs(instrs: Vec<Instr>) -> Self {
        Program {
            instrs,
            entry: 0,
            ivec: None,
            labels: BTreeMap::new(),
        }
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Size of the binary image in 32-bit words.
    #[must_use]
    pub fn encoded_words(&self) -> usize {
        self.instrs.iter().map(|i| i.encoded_words()).sum()
    }
}

fn parse_reg(line: usize, tok: &str) -> Result<Reg, IsaError> {
    let t = tok.trim().trim_end_matches(',');
    let Some(num) = t.strip_prefix('r') else {
        return Err(IsaError::ParseAsm {
            line,
            reason: format!("expected register, got `{t}`"),
        });
    };
    let n: usize = num.parse().map_err(|_| IsaError::ParseAsm {
        line,
        reason: format!("bad register `{t}`"),
    })?;
    if n >= NUM_REGS {
        return Err(IsaError::ParseAsm {
            line,
            reason: format!("register `{t}` out of range"),
        });
    }
    Ok(Reg::new(n as u8))
}

fn parse_imm<T>(line: usize, tok: &str) -> Result<T, IsaError>
where
    T: TryFrom<i64>,
{
    let t = tok.trim().trim_end_matches(',');
    let v: i64 = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).or_else(|_| u64::from_str_radix(hex, 16).map(|u| u as i64))
    } else if let Some(hex) = t.strip_prefix("-0x") {
        i64::from_str_radix(hex, 16).map(|v| -v)
    } else {
        t.parse()
    }
    .map_err(|_| IsaError::ParseAsm {
        line,
        reason: format!("bad immediate `{t}`"),
    })?;
    T::try_from(v).map_err(|_| IsaError::ParseAsm {
        line,
        reason: format!("immediate `{t}` out of range"),
    })
}

enum PendingTarget {
    Branch(BranchCond, Reg, Reg, String),
    Jal(Reg, String),
}

/// Assembles CR32 source text into a [`Program`].
///
/// # Errors
///
/// Returns [`IsaError::ParseAsm`] for syntax errors,
/// [`IsaError::UnknownLabel`] for unresolved references, and
/// [`IsaError::BranchRange`] when a branch target does not fit the 16-bit
/// offset field.
pub fn assemble(source: &str) -> Result<Program, IsaError> {
    let mut instrs: Vec<Instr> = Vec::new();
    let mut labels: BTreeMap<String, usize> = BTreeMap::new();
    let mut pending: Vec<(usize, usize, PendingTarget)> = Vec::new(); // (line, index, target)
    let mut vector_label: Option<(usize, String)> = None;

    for (line_no, raw) in source.lines().enumerate() {
        let line_no = line_no + 1;
        let mut line = raw;
        for sep in [';', '#'] {
            line = line.split(sep).next().unwrap_or("");
        }
        let mut line = line.trim();
        // Labels (possibly several) at line start.
        while let Some(colon) = line.find(':') {
            let (label, rest) = line.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break;
            }
            if labels.insert(label.to_string(), instrs.len()).is_some() {
                return Err(IsaError::ParseAsm {
                    line: line_no,
                    reason: format!("duplicate label `{label}`"),
                });
            }
            line = rest[1..].trim();
        }
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".vector") {
            vector_label = Some((line_no, rest.trim().to_string()));
            continue;
        }
        let mut parts = line.split_whitespace();
        let mnem = parts.next().expect("non-empty line").to_lowercase();
        let ops: Vec<&str> = parts.collect();
        let idx = instrs.len();

        let need = |n: usize| -> Result<(), IsaError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(IsaError::ParseAsm {
                    line: line_no,
                    reason: format!("`{mnem}` takes {n} operands, got {}", ops.len()),
                })
            }
        };

        if let Some(alu) = AluOp::ALL.iter().find(|o| o.mnemonic() == mnem) {
            need(3)?;
            instrs.push(Instr::Alu(
                *alu,
                parse_reg(line_no, ops[0])?,
                parse_reg(line_no, ops[1])?,
                parse_reg(line_no, ops[2])?,
            ));
            continue;
        }
        if let Some(un) = UnaryOp::ALL.iter().find(|o| o.mnemonic() == mnem) {
            need(2)?;
            instrs.push(Instr::Unary(
                *un,
                parse_reg(line_no, ops[0])?,
                parse_reg(line_no, ops[1])?,
            ));
            continue;
        }
        if let Some(cond) = BranchCond::ALL.iter().find(|c| c.mnemonic() == mnem) {
            need(3)?;
            let rs1 = parse_reg(line_no, ops[0])?;
            let rs2 = parse_reg(line_no, ops[1])?;
            instrs.push(Instr::Nop); // patched in pass 2
            pending.push((
                line_no,
                idx,
                PendingTarget::Branch(*cond, rs1, rs2, ops[2].trim_end_matches(',').to_string()),
            ));
            continue;
        }
        match mnem.as_str() {
            "cmovnz" => {
                need(3)?;
                instrs.push(Instr::Cmovnz(
                    parse_reg(line_no, ops[0])?,
                    parse_reg(line_no, ops[1])?,
                    parse_reg(line_no, ops[2])?,
                ));
            }
            "addi" => {
                need(3)?;
                instrs.push(Instr::Addi(
                    parse_reg(line_no, ops[0])?,
                    parse_reg(line_no, ops[1])?,
                    parse_imm(line_no, ops[2])?,
                ));
            }
            "li" => {
                need(2)?;
                instrs.push(Instr::Li(
                    parse_reg(line_no, ops[0])?,
                    parse_imm(line_no, ops[1])?,
                ));
            }
            "ld" | "sd" | "lw" | "sw" => {
                need(3)?;
                let a = parse_reg(line_no, ops[0])?;
                let b = parse_reg(line_no, ops[1])?;
                let imm = parse_imm(line_no, ops[2])?;
                instrs.push(match mnem.as_str() {
                    "ld" => Instr::Ld(a, b, imm),
                    "sd" => Instr::Sd(a, b, imm),
                    "lw" => Instr::Lw(a, b, imm),
                    _ => Instr::Sw(a, b, imm),
                });
            }
            "jal" => {
                need(2)?;
                let rd = parse_reg(line_no, ops[0])?;
                instrs.push(Instr::Nop); // patched in pass 2
                pending.push((
                    line_no,
                    idx,
                    PendingTarget::Jal(rd, ops[1].trim_end_matches(',').to_string()),
                ));
            }
            "jalr" => {
                need(2)?;
                instrs.push(Instr::Jalr(
                    parse_reg(line_no, ops[0])?,
                    parse_reg(line_no, ops[1])?,
                ));
            }
            "ei" => {
                need(0)?;
                instrs.push(Instr::Ei);
            }
            "di" => {
                need(0)?;
                instrs.push(Instr::Di);
            }
            "rti" => {
                need(0)?;
                instrs.push(Instr::Rti);
            }
            "nop" => {
                need(0)?;
                instrs.push(Instr::Nop);
            }
            "halt" => {
                need(0)?;
                instrs.push(Instr::Halt);
            }
            m if m.starts_with("custom") => {
                if ops.len() != 3 && ops.len() != 4 {
                    return Err(IsaError::ParseAsm {
                        line: line_no,
                        reason: format!("`{m}` takes 3 or 4 operands, got {}", ops.len()),
                    });
                }
                let unit: u8 = m["custom".len()..]
                    .parse()
                    .map_err(|_| IsaError::ParseAsm {
                        line: line_no,
                        reason: format!("bad custom unit in `{m}`"),
                    })?;
                let imm = if ops.len() == 4 {
                    parse_imm(line_no, ops[3])?
                } else {
                    0
                };
                instrs.push(Instr::Custom(
                    unit,
                    parse_reg(line_no, ops[0])?,
                    parse_reg(line_no, ops[1])?,
                    parse_reg(line_no, ops[2])?,
                    imm,
                ));
            }
            other => {
                return Err(IsaError::ParseAsm {
                    line: line_no,
                    reason: format!("unknown mnemonic `{other}`"),
                })
            }
        }
    }

    // Pass 2: resolve label references.
    for (line_no, idx, target) in pending {
        match target {
            PendingTarget::Branch(cond, rs1, rs2, label) => {
                let &t = labels.get(&label).ok_or(IsaError::UnknownLabel {
                    name: label.clone(),
                })?;
                let off = t as i64 - (idx as i64 + 1);
                let off =
                    i16::try_from(off).map_err(|_| IsaError::BranchRange { line: line_no })?;
                instrs[idx] = Instr::Branch(cond, rs1, rs2, off);
            }
            PendingTarget::Jal(rd, label) => {
                let &t = labels.get(&label).ok_or(IsaError::UnknownLabel {
                    name: label.clone(),
                })?;
                instrs[idx] = Instr::Jal(rd, t as u32);
            }
        }
    }

    let ivec = match vector_label {
        None => None,
        Some((_, label)) => Some(*labels.get(&label).ok_or(IsaError::UnknownLabel {
            name: label.clone(),
        })?),
    };

    Ok(Program {
        instrs,
        entry: 0,
        ivec,
        labels,
    })
}

/// Renders instructions back to assembly text (labels are lost; branch
/// targets appear as numeric offsets via generated local labels).
#[must_use]
pub fn disassemble(instrs: &[Instr]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    // Collect branch/jump targets so we can emit labels.
    let mut targets: Vec<usize> = Vec::new();
    for (i, instr) in instrs.iter().enumerate() {
        match instr {
            Instr::Branch(_, _, _, off) => {
                let t = (i as i64 + 1 + i64::from(*off)) as usize;
                targets.push(t);
            }
            Instr::Jal(_, t) => targets.push(*t as usize),
            _ => {}
        }
    }
    targets.sort_unstable();
    targets.dedup();
    let label_of = |i: usize| format!("L{i}");

    for (i, instr) in instrs.iter().enumerate() {
        if targets.binary_search(&i).is_ok() {
            let _ = writeln!(out, "{}:", label_of(i));
        }
        let _ = match instr {
            Instr::Alu(op, rd, a, b) => writeln!(out, "    {} {rd}, {a}, {b}", op.mnemonic()),
            Instr::Unary(op, rd, a) => writeln!(out, "    {} {rd}, {a}", op.mnemonic()),
            Instr::Cmovnz(rd, c, a) => writeln!(out, "    cmovnz {rd}, {c}, {a}"),
            Instr::Addi(rd, a, imm) => writeln!(out, "    addi {rd}, {a}, {imm}"),
            Instr::Li(rd, imm) => writeln!(out, "    li {rd}, {imm}"),
            Instr::Ld(rd, a, imm) => writeln!(out, "    ld {rd}, {a}, {imm}"),
            Instr::Sd(rs, a, imm) => writeln!(out, "    sd {rs}, {a}, {imm}"),
            Instr::Lw(rd, a, imm) => writeln!(out, "    lw {rd}, {a}, {imm}"),
            Instr::Sw(rs, a, imm) => writeln!(out, "    sw {rs}, {a}, {imm}"),
            Instr::Branch(c, a, b, off) => {
                let t = (i as i64 + 1 + i64::from(*off)) as usize;
                writeln!(out, "    {} {a}, {b}, {}", c.mnemonic(), label_of(t))
            }
            Instr::Jal(rd, t) => writeln!(out, "    jal {rd}, {}", label_of(*t as usize)),
            Instr::Jalr(rd, a) => writeln!(out, "    jalr {rd}, {a}"),
            Instr::Custom(u, rd, a, b, imm) => {
                writeln!(out, "    custom{u} {rd}, {a}, {b}, {imm}")
            }
            Instr::Ei => writeln!(out, "    ei"),
            Instr::Di => writeln!(out, "    di"),
            Instr::Rti => writeln!(out, "    rti"),
            Instr::Nop => writeln!(out, "    nop"),
            Instr::Halt => writeln!(out, "    halt"),
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_loop_with_labels() {
        let p = assemble(
            "start: li r1, 3\n\
             loop:  addi r1, r1, -1\n\
                    bne r1, r0, loop\n\
                    halt\n",
        )
        .unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.labels["start"], 0);
        assert_eq!(p.labels["loop"], 1);
        assert_eq!(
            p.instrs[2],
            Instr::Branch(BranchCond::Ne, Reg::new(1), Reg::ZERO, -2)
        );
    }

    #[test]
    fn vector_directive_resolves() {
        let p = assemble(".vector isr\nhalt\nisr: rti\n").unwrap();
        assert_eq!(p.ivec, Some(1));
    }

    #[test]
    fn forward_references_work() {
        let p = assemble("jal r15, end\nnop\nend: halt\n").unwrap();
        assert_eq!(p.instrs[0], Instr::Jal(Reg::new(15), 2));
    }

    #[test]
    fn comments_both_styles_ignored() {
        let p = assemble("; full line\nnop ; trailing\nnop # hash\n").unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let err = assemble("nop\nfrobnicate r1, r2\n").unwrap_err();
        assert!(matches!(err, IsaError::ParseAsm { line: 2, .. }));
    }

    #[test]
    fn unknown_label_detected() {
        let err = assemble("beq r0, r0, nowhere\n").unwrap_err();
        assert_eq!(
            err,
            IsaError::UnknownLabel {
                name: "nowhere".to_string()
            }
        );
    }

    #[test]
    fn duplicate_label_rejected() {
        let err = assemble("x: nop\nx: nop\n").unwrap_err();
        assert!(matches!(err, IsaError::ParseAsm { line: 2, .. }));
    }

    #[test]
    fn register_range_enforced() {
        let err = assemble("add r16, r0, r0\n").unwrap_err();
        assert!(matches!(err, IsaError::ParseAsm { .. }));
    }

    #[test]
    fn immediate_range_enforced() {
        let err = assemble("addi r1, r0, 40000\n").unwrap_err();
        assert!(matches!(err, IsaError::ParseAsm { .. }));
    }

    #[test]
    fn hex_immediates_parse() {
        let p = assemble("li r1, 0xFFFFFFFF\naddi r2, r0, 0x7f\n").unwrap();
        assert_eq!(p.instrs[0], Instr::Li(Reg::new(1), 0xFFFF_FFFF));
        assert_eq!(p.instrs[1], Instr::Addi(Reg::new(2), Reg::ZERO, 0x7f));
    }

    #[test]
    fn custom_mnemonics_carry_unit() {
        let p = assemble("custom3 r1, r2, r3\n").unwrap();
        assert_eq!(
            p.instrs[0],
            Instr::Custom(3, Reg::new(1), Reg::new(2), Reg::new(3), 0)
        );
        let p = assemble("custom3 r1, r2, r3, -9\n").unwrap();
        assert_eq!(
            p.instrs[0],
            Instr::Custom(3, Reg::new(1), Reg::new(2), Reg::new(3), -9)
        );
    }

    #[test]
    fn disassemble_reassembles_identically() {
        let src = "start: li r1, 5\n\
                   loop: addi r1, r1, -1\n\
                   mul r2, r1, r1\n\
                   bne r1, r0, loop\n\
                   jal r15, done\n\
                   nop\n\
                   done: halt\n";
        let p1 = assemble(src).unwrap();
        let text = disassemble(&p1.instrs);
        let p2 = assemble(&text).unwrap();
        assert_eq!(p1.instrs, p2.instrs);
    }

    #[test]
    fn encoded_words_counts_li() {
        let p = assemble("li r1, 7\nnop\nhalt\n").unwrap();
        assert_eq!(p.encoded_words(), 3 + 1 + 1);
    }
}
