//! Application-specific instruction-set extension (ASIP flow).
//!
//! The paper's Section 4.3 (after PEAS-I \[14\]) describes co-design for an
//! application-specific instruction-set processor, where "the design …
//! affords the opportunity to move the boundary between hardware and
//! software by, for instance, adding new instructions to the instruction
//! set architecture". This module implements that flow for CR32:
//!
//! 1. **Mine** candidate instructions: dependent operation pairs in the
//!    application's CDFGs with at most two external register operands
//!    (constants are folded into the unit as parameters — the classic
//!    "fused multiply-by-coefficient-accumulate" shape of DSP ASIPs).
//! 2. **Select** units greedily by estimated cycles saved per LUT until a
//!    hardware area budget is exhausted — the Section 3.3
//!    *implementation cost* consideration applied at instruction
//!    granularity.
//! 3. **Apply**: build a [`FusionPlan`] per kernel and compile with
//!    [`compile_with_fusion`]; the selected [`PatternUnit`]s attach to the
//!    CPU's `custom` slots.
//!
//! The paper also flags *modifiability* as the decisive factor for this
//! system class: because fusion only changes instruction selection, the
//! application remains software and can still run (slower) on an
//! unextended core.

use std::collections::HashMap;

use codesign_ir::cdfg::{Cdfg, FuClass, OpId, OpKind};

use crate::codegen::{compile_with_fusion, CompiledKernel, FusedEmit, FusionPlan};
use crate::cpu::{Cpu, CustomUnit};
use crate::error::IsaError;

/// Where a fused operation's operand comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArgSrc {
    /// External register operand 0 or 1 (`rs1`/`rs2`).
    Ext(u8),
    /// The instruction's immediate field. Patterns generalize over one
    /// constant this way, so a multiply-by-coefficient matches every
    /// coefficient (the coefficient travels in the `custom` instruction's
    /// immediate word).
    Imm,
    /// A constant baked into the unit itself (used when a pattern has a
    /// second, distinct constant beyond the immediate field).
    Const(i64),
    /// The result of the pattern's first operation (only valid in the
    /// second operation's operand list).
    FirstResult,
}

/// A two-operation fused instruction pattern.
///
/// The pattern computes `second(second_args…)` where one or more operands
/// are `first(first_args…)`, reading at most two external registers.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FusedPattern {
    /// Producer operation.
    pub first: OpKind,
    /// Producer operands.
    pub first_args: Vec<ArgSrc>,
    /// Consumer operation.
    pub second: OpKind,
    /// Consumer operands ([`ArgSrc::FirstResult`] marks where the
    /// producer's value flows in).
    pub second_args: Vec<ArgSrc>,
}

/// Evaluates one [`OpKind`] with hardware (non-trapping) semantics,
/// matching the FSMD datapath of `codesign-rtl`.
fn eval_op(kind: OpKind, a: i64, b: i64, c: i64) -> i64 {
    match kind {
        OpKind::Add => a.wrapping_add(b),
        OpKind::Sub => a.wrapping_sub(b),
        OpKind::Mul => a.wrapping_mul(b),
        OpKind::Div => a.checked_div(b).unwrap_or(0),
        OpKind::Rem => {
            if b == 0 {
                a
            } else {
                a.wrapping_rem(b)
            }
        }
        OpKind::And => a & b,
        OpKind::Or => a | b,
        OpKind::Xor => a ^ b,
        OpKind::Not => !a,
        OpKind::Neg => a.wrapping_neg(),
        OpKind::Shl => a.wrapping_shl((b & 0x3f) as u32),
        OpKind::Shr => a.wrapping_shr((b & 0x3f) as u32),
        OpKind::Lt => i64::from(a < b),
        OpKind::Le => i64::from(a <= b),
        OpKind::Eq => i64::from(a == b),
        OpKind::Ne => i64::from(a != b),
        OpKind::Select => {
            if a != 0 {
                b
            } else {
                c
            }
        }
        OpKind::Min => a.min(b),
        OpKind::Max => a.max(b),
        OpKind::Abs => a.wrapping_abs(),
        // Structural kinds never appear in mined patterns; OpKind is
        // non-exhaustive, so future kinds also land here until supported.
        _ => 0,
    }
}

/// LUT cost of implementing one operation class in the extension
/// datapath.
#[must_use]
pub fn op_luts(kind: OpKind) -> u32 {
    match kind.fu_class() {
        FuClass::Alu => 80,
        FuClass::Multiplier => 600,
        FuClass::Divider => 1500,
        FuClass::Logic => 40,
        FuClass::Free => 0,
    }
}

impl FusedPattern {
    /// Evaluates the fused function on the two external operands and the
    /// instruction immediate.
    #[must_use]
    pub fn eval(&self, e0: i64, e1: i64, imm: i64) -> i64 {
        let get = |src: &ArgSrc, first_result: i64| match src {
            ArgSrc::Ext(0) => e0,
            ArgSrc::Ext(_) => e1,
            ArgSrc::Imm => imm,
            ArgSrc::Const(c) => *c,
            ArgSrc::FirstResult => first_result,
        };
        let fa = |k: usize| {
            self.first_args
                .get(k)
                .map_or(0, |s| get(s, 0 /* unused in first */))
        };
        let fr = eval_op(self.first, fa(0), fa(1), fa(2));
        let sa = |k: usize| self.second_args.get(k).map_or(0, |s| get(s, fr));
        eval_op(self.second, sa(0), sa(1), sa(2))
    }

    /// Cycles the pattern costs in plain software (producer plus
    /// consumer).
    #[must_use]
    pub fn sw_cycles(&self) -> u64 {
        self.first.sw_cycles() + self.second.sw_cycles()
    }

    /// Latency of the fused unit: the two chained operations execute in a
    /// dedicated datapath, conservatively three times faster than the
    /// software sequence, never below one cycle.
    #[must_use]
    pub fn hw_latency(&self) -> u64 {
        (self.sw_cycles() / 3).max(1)
    }

    /// LUT area of the fused unit.
    #[must_use]
    pub fn luts(&self) -> u32 {
        op_luts(self.first) + op_luts(self.second) + 20 // operand muxing
    }

    /// A short descriptive name, e.g. `"mul_add"`.
    #[must_use]
    pub fn describe(&self) -> String {
        format!("{:?}_{:?}", self.first, self.second).to_lowercase()
    }
}

/// A selected fused pattern attached to a `custom` slot: implements
/// [`CustomUnit`] so the CPU can execute it.
#[derive(Debug, Clone)]
pub struct PatternUnit {
    name: String,
    pattern: FusedPattern,
}

impl PatternUnit {
    /// Wraps a pattern as an executable unit.
    #[must_use]
    pub fn new(pattern: FusedPattern) -> Self {
        PatternUnit {
            name: pattern.describe(),
            pattern,
        }
    }

    /// The wrapped pattern.
    #[must_use]
    pub fn pattern(&self) -> &FusedPattern {
        &self.pattern
    }
}

impl CustomUnit for PatternUnit {
    fn name(&self) -> &str {
        &self.name
    }

    fn latency(&self) -> u64 {
        self.pattern.hw_latency()
    }

    fn area_luts(&self) -> u32 {
        self.pattern.luts()
    }

    fn eval(&self, a: i64, b: i64, imm: i64) -> i64 {
        self.pattern.eval(a, b, imm)
    }
}

/// One candidate occurrence of a pattern inside a CDFG.
#[derive(Debug, Clone)]
pub struct Occurrence {
    /// Producer op (skipped when fused).
    pub first: OpId,
    /// Consumer op (emitted as `custom`).
    pub second: OpId,
    /// External operand values, `rs1, rs2` order.
    pub ext: Vec<OpId>,
    /// Value of the instruction's immediate field (0 if the pattern has
    /// no [`ArgSrc::Imm`] operand).
    pub imm: i64,
}

/// Mines every legal fused-pair occurrence in a CDFG, keyed by pattern.
#[must_use]
pub fn mine_patterns(g: &Cdfg) -> HashMap<FusedPattern, Vec<Occurrence>> {
    let mut found: HashMap<FusedPattern, Vec<Occurrence>> = HashMap::new();
    for (vid, vnode) in g.iter() {
        if matches!(
            vnode.kind(),
            OpKind::Input(_) | OpKind::Const(_) | OpKind::Output(_)
        ) {
            continue;
        }
        for &uid in vnode.args() {
            let unode = g.node(uid);
            if matches!(
                unode.kind(),
                OpKind::Input(_) | OpKind::Const(_) | OpKind::Output(_)
            ) {
                continue;
            }
            // The producer must flow only into this consumer, otherwise
            // fusing it would duplicate work.
            if g.consumers(uid).count() != 1 {
                continue;
            }
            if let Some((pattern, occ)) = classify(g, uid, vid) {
                found.entry(pattern).or_default().push(occ);
                break; // one fusion per consumer
            }
        }
    }
    found
}

/// Builds the pattern descriptor and external operand list for the pair
/// `(first, second)`, or `None` if it needs more than two external
/// registers.
fn classify(g: &Cdfg, first: OpId, second: OpId) -> Option<(FusedPattern, Occurrence)> {
    let mut ext: Vec<OpId> = Vec::new();
    let mut imm: Option<i64> = None;
    let mut src_of = |v: OpId| -> Option<ArgSrc> {
        if let OpKind::Const(c) = g.node(v).kind() {
            // The first constant rides in the immediate field so the
            // pattern generalizes over it; further constants are baked.
            return Some(match imm {
                None => {
                    imm = Some(c);
                    ArgSrc::Imm
                }
                Some(i) if i == c => ArgSrc::Imm,
                Some(_) => ArgSrc::Const(c),
            });
        }
        if let Some(i) = ext.iter().position(|&e| e == v) {
            return Some(ArgSrc::Ext(i as u8));
        }
        if ext.len() == 2 {
            return None;
        }
        ext.push(v);
        Some(ArgSrc::Ext((ext.len() - 1) as u8))
    };

    let fnode = g.node(first);
    let mut first_args = Vec::with_capacity(fnode.args().len());
    for &a in fnode.args() {
        first_args.push(src_of(a)?);
    }
    let snode = g.node(second);
    let mut second_args = Vec::with_capacity(snode.args().len());
    for &a in snode.args() {
        if a == first {
            second_args.push(ArgSrc::FirstResult);
        } else {
            second_args.push(src_of(a)?);
        }
    }
    let pattern = FusedPattern {
        first: fnode.kind(),
        first_args,
        second: snode.kind(),
        second_args,
    };
    let occ = Occurrence {
        first,
        second,
        ext,
        imm: imm.unwrap_or(0),
    };
    Some((pattern, occ))
}

/// One selected custom instruction with its mined statistics.
#[derive(Debug, Clone)]
pub struct SelectedUnit {
    /// The pattern, also executable via [`PatternUnit`].
    pub pattern: FusedPattern,
    /// Occurrences across the application kernels.
    pub occurrences: usize,
    /// Estimated cycles saved per application run.
    pub saved_cycles: u64,
}

/// An instruction-set extension: up to eight fused units within a LUT
/// budget.
#[derive(Debug, Clone, Default)]
pub struct AsipExtension {
    units: Vec<SelectedUnit>,
}

impl AsipExtension {
    /// Selects units for `kernels` greedily by saved-cycles-per-LUT until
    /// `budget_luts` is exhausted (at most eight units — the `custom`
    /// slot count).
    #[must_use]
    pub fn select(kernels: &[&Cdfg], budget_luts: u32) -> Self {
        let mut tally: HashMap<FusedPattern, usize> = HashMap::new();
        for g in kernels {
            for (p, occs) in mine_patterns(g) {
                *tally.entry(p).or_default() += occs.len();
            }
        }
        let mut candidates: Vec<SelectedUnit> = tally
            .into_iter()
            .map(|(pattern, occurrences)| {
                // Free-class patterns (e.g. select chains) can have zero
                // software cost; saturate so they are simply unprofitable.
                let saved =
                    pattern.sw_cycles().saturating_sub(pattern.hw_latency()) * occurrences as u64;
                SelectedUnit {
                    pattern,
                    occurrences,
                    saved_cycles: saved,
                }
            })
            .filter(|u| u.saved_cycles > 0)
            .collect();
        candidates.sort_by(|a, b| {
            let ra = a.saved_cycles as f64 / f64::from(a.pattern.luts());
            let rb = b.saved_cycles as f64 / f64::from(b.pattern.luts());
            rb.partial_cmp(&ra)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.pattern.cmp(&b.pattern))
        });
        let mut units = Vec::new();
        let mut spent = 0u32;
        for u in candidates {
            if units.len() == 8 {
                break;
            }
            if spent + u.pattern.luts() <= budget_luts {
                spent += u.pattern.luts();
                units.push(u);
            }
        }
        AsipExtension { units }
    }

    /// The selected units in slot order.
    #[must_use]
    pub fn units(&self) -> &[SelectedUnit] {
        &self.units
    }

    /// Total LUT area of the extension.
    #[must_use]
    pub fn total_luts(&self) -> u32 {
        self.units.iter().map(|u| u.pattern.luts()).sum()
    }

    /// Builds the fusion plan applying this extension to one kernel.
    #[must_use]
    pub fn plan_for(&self, g: &Cdfg) -> FusionPlan {
        let mut plan = FusionPlan::new();
        let mined = mine_patterns(g);
        for (slot, unit) in self.units.iter().enumerate() {
            let Some(occs) = mined.get(&unit.pattern) else {
                continue;
            };
            for occ in occs {
                let (first, second) = (occ.first.index(), occ.second.index());
                // A producer already absorbed elsewhere cannot be reused.
                if plan.skipped.contains(&first)
                    || plan.skipped.contains(&second)
                    || plan.fused.contains_key(&second)
                    || plan.fused.contains_key(&first)
                {
                    continue;
                }
                plan.skipped.insert(first);
                plan.fused.insert(
                    second,
                    FusedEmit {
                        slot: slot as u8,
                        ext: occ.ext.clone(),
                        imm: occ.imm,
                    },
                );
            }
        }
        plan
    }

    /// Compiles `g` using this extension; returns the program and the
    /// units to attach (slot order matches [`AsipExtension::units`]).
    ///
    /// # Errors
    ///
    /// Propagates [`compile_with_fusion`] failures.
    pub fn compile(&self, g: &Cdfg) -> Result<CompiledKernel, IsaError> {
        compile_with_fusion(g, &self.plan_for(g))
    }

    /// Creates a CPU with this extension's units attached to their slots.
    #[must_use]
    pub fn make_cpu(&self, mem_bytes: usize) -> Cpu {
        let mut cpu = Cpu::new(mem_bytes);
        for (slot, unit) in self.units.iter().enumerate() {
            cpu.attach_custom_unit(slot as u8, Box::new(PatternUnit::new(unit.pattern.clone())));
        }
        cpu
    }
}

/// Measures the speedup of this extension on a kernel: returns
/// `(baseline_cycles, asip_cycles)`, verifying both against the CDFG
/// interpreter on the given inputs.
///
/// # Errors
///
/// Propagates compilation and execution faults; returns
/// [`IsaError::Codegen`] if the extension produces wrong results
/// (indicating a fusion bug).
pub fn measure_speedup(
    ext: &AsipExtension,
    g: &Cdfg,
    inputs: &[i64],
) -> Result<(u64, u64), IsaError> {
    let reference = g.evaluate(inputs).map_err(|e| IsaError::Codegen {
        reason: format!("interpreter: {e}"),
    })?;

    let baseline = crate::codegen::compile(g)?;
    let (base_out, base_stats) = baseline.execute(inputs)?;
    if base_out != reference {
        return Err(IsaError::Codegen {
            reason: format!("baseline mismatch on {}", g.name()),
        });
    }

    let fused = ext.compile(g)?;
    let mut cpu = ext.make_cpu(crate::codegen::MEM_BYTES);
    let (fused_out, fused_stats) = fused.execute_on(&mut cpu, inputs)?;
    if fused_out != reference {
        return Err(IsaError::Codegen {
            reason: format!("asip mismatch on {}", g.name()),
        });
    }
    Ok((base_stats.cycles, fused_stats.cycles))
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_ir::workload::kernels;

    #[test]
    fn fir_mines_mul_add_chains() {
        let g = kernels::fir(8);
        let mined = mine_patterns(&g);
        // The dominant pattern is multiply-by-coefficient feeding the
        // accumulating add.
        let best = mined
            .iter()
            .max_by_key(|(_, v)| v.len())
            .expect("patterns found");
        assert_eq!(best.0.first, OpKind::Mul);
        assert_eq!(best.0.second, OpKind::Add);
        assert!(best.1.len() >= 6, "most taps fuse: {}", best.1.len());
    }

    #[test]
    fn pattern_eval_matches_composition() {
        // (e0 * imm) + e1
        let p = FusedPattern {
            first: OpKind::Mul,
            first_args: vec![ArgSrc::Ext(0), ArgSrc::Imm],
            second: OpKind::Add,
            second_args: vec![ArgSrc::FirstResult, ArgSrc::Ext(1)],
        };
        assert_eq!(p.eval(3, 4, 5), 19);
        assert_eq!(p.eval(-2, 10, 5), 0);
        assert_eq!(p.eval(3, 4, 7), 25, "immediate generalizes");
        assert!(p.hw_latency() < p.sw_cycles());
    }

    #[test]
    fn selection_respects_budget() {
        let fir = kernels::fir(8);
        let dct = kernels::dct8();
        let ks = [&fir, &dct];
        let small = AsipExtension::select(&ks, 700);
        assert!(small.total_luts() <= 700);
        let large = AsipExtension::select(&ks, 10_000);
        assert!(large.total_luts() <= 10_000);
        assert!(large.units().len() >= small.units().len());
    }

    #[test]
    fn zero_budget_selects_nothing() {
        let fir = kernels::fir(8);
        let ext = AsipExtension::select(&[&fir], 0);
        assert!(ext.units().is_empty());
        assert_eq!(ext.total_luts(), 0);
    }

    #[test]
    fn asip_speeds_up_fir_and_stays_correct() {
        let g = kernels::fir(8);
        let ext = AsipExtension::select(&[&g], 2_000);
        assert!(!ext.units().is_empty());
        let inputs: Vec<i64> = (0..8).map(|i| i * 3 - 7).collect();
        let (base, fused) = measure_speedup(&ext, &g, &inputs).unwrap();
        assert!(
            fused < base,
            "asip must be faster: base={base}, fused={fused}"
        );
    }

    #[test]
    fn asip_speeds_up_every_default_kernel_or_is_neutral() {
        for g in kernels::all() {
            let ext = AsipExtension::select(&[&g], 5_000);
            let inputs: Vec<i64> = (0..g.input_count()).map(|i| i as i64 % 23 - 11).collect();
            let (base, fused) =
                measure_speedup(&ext, &g, &inputs).unwrap_or_else(|e| panic!("{}: {e}", g.name()));
            assert!(fused <= base, "{}: base={base}, fused={fused}", g.name());
        }
    }

    #[test]
    fn larger_budget_never_slows_down() {
        let g = kernels::dct8();
        let inputs: Vec<i64> = (0..8).map(|i| i * 7 - 20).collect();
        let mut prev = u64::MAX;
        for budget in [0u32, 800, 2_000, 8_000] {
            let ext = AsipExtension::select(&[&g], budget);
            let (_, fused) = measure_speedup(&ext, &g, &inputs).unwrap();
            assert!(fused <= prev, "budget {budget}: {fused} > {prev}");
            prev = fused;
        }
    }

    #[test]
    fn plans_do_not_double_fuse() {
        let g = kernels::fir(8);
        let ext = AsipExtension::select(&[&g], 10_000);
        let plan = ext.plan_for(&g);
        for second in plan.fused.keys() {
            assert!(
                !plan.skipped.contains(second),
                "op {second} both fused and skipped"
            );
        }
    }

    #[test]
    fn pattern_unit_reports_costs() {
        let p = FusedPattern {
            first: OpKind::Mul,
            first_args: vec![ArgSrc::Ext(0), ArgSrc::Imm],
            second: OpKind::Add,
            second_args: vec![ArgSrc::FirstResult, ArgSrc::Ext(1)],
        };
        let u = PatternUnit::new(p);
        assert!(u.area_luts() > 600, "multiplier dominates");
        assert_eq!(u.latency(), 1);
        assert_eq!(u.name(), "mul_add");
    }
}
