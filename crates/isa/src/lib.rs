//! # codesign-isa
//!
//! The software execution substrate for the mixed hardware/software
//! co-design framework (Adams & Thomas, DAC 1996): **CR32**, a small
//! load/store instruction-set architecture with a 64-bit datapath, built
//! from scratch because the experiments need *relative* timing, bus
//! activity, and a customizable instruction set rather than binary
//! compatibility with any commercial core.
//!
//! The crate provides the pieces the paper's Type I systems assume exist
//! (Figures 4, 6, 7):
//!
//! * [`instr`] — the instruction set, with a binary encoding and decoder
//!   (round-trip tested).
//! * [`asm`] — a two-pass assembler with labels, and a disassembler.
//! * [`cpu`] — a cycle-accurate instruction-set simulator. Data memory is
//!   internal; addresses at and above [`cpu::MMIO_BASE`] are routed to a
//!   `codesign-rtl` [`codesign_rtl::bus::SystemBus`], so every device
//!   access pays real bus cycles and devices can raise interrupts — the
//!   register-read/write and interrupt abstraction levels of the paper's
//!   Figure 3.
//! * [`codegen`] — a compiler from `codesign-ir` CDFG kernels to CR32
//!   assembly with a greedy register allocator; compiled kernels are
//!   verified against the CDFG interpreter.
//! * [`asip`] — application-specific instruction-set extension: fused
//!   custom instructions mined from CDFG subgraphs, with area and latency
//!   models, reproducing the Section 4.3 flow (after PEAS-I) where the
//!   HW/SW boundary moves "by adding new instructions to the instruction
//!   set architecture".
//! * [`proclib`] — a parametric processor library (speed/cost points) for
//!   heterogeneous multiprocessor co-synthesis (Section 4.2, after SOS).
//!
//! ## Example
//!
//! ```
//! use codesign_isa::asm::assemble;
//! use codesign_isa::cpu::Cpu;
//!
//! # fn main() -> Result<(), codesign_isa::IsaError> {
//! let program = assemble(
//!     "li   r1, 40\n\
//!      addi r1, r1, 2\n\
//!      sd   r1, r0, 0\n\
//!      halt\n",
//! )?;
//! let mut cpu = Cpu::new(4096);
//! cpu.load_program(&program);
//! cpu.run(1_000)?;
//! assert_eq!(cpu.load_word(0)?, 42);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asip;
pub mod asm;
pub mod codegen;
pub mod cpu;
pub mod error;
pub mod instr;
pub mod proclib;

pub use error::IsaError;
