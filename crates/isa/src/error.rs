//! Error types for assembly, encoding, and simulation.

use std::error::Error;
use std::fmt;

use codesign_rtl::RtlError;

/// Errors produced by the CR32 toolchain and simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// An assembly source line failed to parse.
    ParseAsm {
        /// 1-based source line.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// A label was referenced but never defined.
    UnknownLabel {
        /// The missing label.
        name: String,
    },
    /// A branch target is too far for the instruction's offset field.
    BranchRange {
        /// 1-based source line of the branch.
        line: usize,
    },
    /// A binary word does not decode to any instruction.
    DecodeInstr {
        /// The undecodable word.
        word: u32,
    },
    /// A data access touched an address outside memory and MMIO.
    MemFault {
        /// The faulting address.
        addr: u64,
    },
    /// A misaligned memory access.
    Misaligned {
        /// The faulting address.
        addr: u64,
        /// Required alignment in bytes.
        align: u64,
    },
    /// The program counter left the program.
    PcFault {
        /// The faulting instruction index.
        pc: usize,
    },
    /// Division by zero executed in software (the CR32 traps, unlike the
    /// hardware datapath).
    DivideByZero {
        /// Instruction index of the divide.
        pc: usize,
    },
    /// A `custom` instruction named a unit that is not attached.
    UnknownCustomUnit {
        /// The unit index.
        unit: u8,
    },
    /// The cycle budget expired before `halt`.
    Timeout {
        /// Cycles executed.
        cycles: u64,
    },
    /// An interrupt arrived but no vector is installed.
    NoInterruptVector,
    /// A bus error from the RTL substrate.
    Bus(RtlError),
    /// Code generation could not compile a CDFG.
    Codegen {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::ParseAsm { line, reason } => {
                write!(f, "assembly error at line {line}: {reason}")
            }
            IsaError::UnknownLabel { name } => write!(f, "unknown label `{name}`"),
            IsaError::BranchRange { line } => {
                write!(f, "branch at line {line} exceeds offset range")
            }
            IsaError::DecodeInstr { word } => write!(f, "cannot decode word {word:#010x}"),
            IsaError::MemFault { addr } => write!(f, "memory fault at {addr:#x}"),
            IsaError::Misaligned { addr, align } => {
                write!(f, "misaligned {align}-byte access at {addr:#x}")
            }
            IsaError::PcFault { pc } => write!(f, "program counter fault at index {pc}"),
            IsaError::DivideByZero { pc } => write!(f, "divide by zero at index {pc}"),
            IsaError::UnknownCustomUnit { unit } => write!(f, "unknown custom unit {unit}"),
            IsaError::Timeout { cycles } => write!(f, "no halt within {cycles} cycles"),
            IsaError::NoInterruptVector => write!(f, "interrupt taken with no vector installed"),
            IsaError::Bus(e) => write!(f, "bus: {e}"),
            IsaError::Codegen { reason } => write!(f, "codegen: {reason}"),
        }
    }
}

impl Error for IsaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IsaError::Bus(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<RtlError> for IsaError {
    fn from(e: RtlError) -> Self {
        IsaError::Bus(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_errors_wrap_with_source() {
        let e = IsaError::from(RtlError::BusFault { addr: 4 });
        assert!(e.to_string().contains("bus fault"));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IsaError>();
    }
}
