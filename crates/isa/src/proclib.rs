//! A parametric processor library for heterogeneous multiprocessor
//! co-synthesis.
//!
//! The paper's Section 4.2 describes flows (SOS \[12\], Beck \[13\]) where
//! "the processing elements are chosen from a library of available
//! microprocessors, each characterized in terms of processing speed and
//! cost". This module is that library: a set of [`ProcessorModel`]s whose
//! speed factors scale task software costs measured on the CR32 reference
//! core.

use serde::{Deserialize, Serialize};

/// One processing-element type available to the allocator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessorModel {
    name: String,
    speed: f64,
    cost: f64,
    context_switch_cycles: u64,
}

impl ProcessorModel {
    /// Creates a model. `speed` scales throughput relative to the CR32
    /// reference core (2.0 halves every task's cycle count); `cost` is
    /// the unit price in abstract dollars.
    ///
    /// # Panics
    ///
    /// Panics if `speed <= 0` or `cost < 0`.
    #[must_use]
    pub fn new(name: impl Into<String>, speed: f64, cost: f64) -> Self {
        assert!(speed > 0.0, "speed must be positive");
        assert!(cost >= 0.0, "cost must be non-negative");
        ProcessorModel {
            name: name.into(),
            speed,
            cost,
            context_switch_cycles: 50,
        }
    }

    /// Sets the context-switch overhead in reference cycles.
    #[must_use]
    pub fn with_context_switch(mut self, cycles: u64) -> Self {
        self.context_switch_cycles = cycles;
        self
    }

    /// Model name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Throughput relative to the reference core.
    #[must_use]
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Unit cost.
    #[must_use]
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Context-switch overhead in cycles on this processor.
    #[must_use]
    pub fn context_switch_cycles(&self) -> u64 {
        self.context_switch_cycles
    }

    /// Cycles a task needs on this processor, given its cost on the
    /// reference core.
    #[must_use]
    pub fn scale_cycles(&self, reference_cycles: u64) -> u64 {
        ((reference_cycles as f64 / self.speed).ceil() as u64).max(1)
    }
}

/// The default library: five processors spanning a 12× speed range with
/// super-linear cost, the shape that makes the paper's Section 4.2
/// trade-off real — "a more highly parallel architecture allows the use
/// of slower, less-expensive processing elements".
#[must_use]
pub fn standard_library() -> Vec<ProcessorModel> {
    vec![
        ProcessorModel::new("micro8", 0.5, 1.0).with_context_switch(20),
        ProcessorModel::new("cr32", 1.0, 3.0).with_context_switch(50),
        ProcessorModel::new("cr32-turbo", 2.0, 8.0).with_context_switch(50),
        ProcessorModel::new("dsp56", 3.0, 15.0).with_context_switch(80),
        ProcessorModel::new("riscy64", 6.0, 40.0).with_context_switch(120),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_rounds_up_and_floors_at_one() {
        let p = ProcessorModel::new("x", 3.0, 1.0);
        assert_eq!(p.scale_cycles(10), 4);
        assert_eq!(p.scale_cycles(1), 1);
        assert_eq!(p.scale_cycles(0), 1);
    }

    #[test]
    fn library_spans_speed_and_cost() {
        let lib = standard_library();
        assert_eq!(lib.len(), 5);
        let speeds: Vec<f64> = lib.iter().map(ProcessorModel::speed).collect();
        assert!(speeds.windows(2).all(|w| w[0] < w[1]), "sorted by speed");
        // Cost grows super-linearly with speed: cost/speed increases.
        let ratios: Vec<f64> = lib.iter().map(|p| p.cost() / p.speed()).collect();
        assert!(ratios.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn zero_speed_rejected() {
        let _ = ProcessorModel::new("bad", 0.0, 1.0);
    }
}
