//! Cycle-accurate CR32 instruction-set simulator.
//!
//! The CPU is the software side of every Type I system in the paper
//! (Figure 4): it executes an assembled [`Program`] against internal data
//! memory, and routes accesses at or above [`MMIO_BASE`] to an attached
//! `codesign-rtl` [`SystemBus`]. Each device access pays real bus cycles,
//! and devices advance in lockstep with instruction execution, so
//! interrupts arrive at cycle-accurate times — giving the co-simulation
//! engines the register-read/write and interrupt abstraction levels of
//! the paper's Figure 3 for free.
//!
//! Custom functional units ([`CustomUnit`]) can be attached to the eight
//! `custom` opcode slots, which is how the ASIP flow (Section 4.3) moves
//! work across the HW/SW boundary without changing the program structure.

use std::collections::{BTreeMap, BTreeSet};

use codesign_rtl::bus::SystemBus;
use codesign_rtl::state::{StateReader, StateWriter};
use codesign_rtl::RtlError;
use codesign_trace::{Arg, Tracer, TrackId};

use crate::asm::Program;
use crate::error::IsaError;
use crate::instr::{AluOp, Instr, Reg, UnaryOp, NUM_REGS};

/// Data addresses at or above this value are routed to the system bus.
pub const MMIO_BASE: u64 = 0x8000_0000;

/// A hardware functional unit attached to a `custom` opcode slot.
pub trait CustomUnit: std::fmt::Debug {
    /// Unit name (for reports).
    fn name(&self) -> &str;
    /// Invocation latency in cycles (replaces the instruction's base
    /// cost).
    fn latency(&self) -> u64;
    /// Area in LUTs, the implementation cost of the extension.
    fn area_luts(&self) -> u32;
    /// Combinational function of the unit over the two register operands
    /// and the instruction's immediate field.
    fn eval(&self, a: i64, b: i64, imm: i64) -> i64;
}

/// Cumulative execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Total cycles, including bus transaction cycles.
    pub cycles: u64,
    /// Cycles spent in bus transactions (communication overhead).
    pub bus_cycles: u64,
    /// Interrupts taken.
    pub irqs_taken: u64,
    /// `custom` instructions retired.
    pub custom_invocations: u64,
}

/// Why a debug-controlled run ([`Cpu::run_debug`] / [`Cpu::step_debug`])
/// stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DebugStop {
    /// The CPU executed `halt`.
    Halted,
    /// The cycle horizon was reached without any debug event.
    Horizon,
    /// Execution reached a breakpointed instruction index (stopped
    /// *before* executing it).
    Breakpoint {
        /// The breakpointed instruction index.
        pc: usize,
    },
    /// A watched data address was accessed (stopped *after* the access).
    Watchpoint {
        /// The watched address.
        addr: u64,
        /// `true` for a store, `false` for a load.
        write: bool,
    },
    /// A single [`Cpu::step_debug`] completed with no other event.
    Step,
}

/// Debugger session state: breakpoints, watchpoints, and the pending
/// watch hit latched by the last instruction. Not part of the
/// architectural state — checkpoints ignore it.
#[derive(Debug, Default)]
struct DebugCtl {
    breakpoints: BTreeSet<usize>,
    watchpoints: BTreeSet<u64>,
    watch_hit: Option<(u64, bool)>,
}

/// The CR32 processor model.
#[derive(Debug)]
pub struct Cpu {
    regs: [i64; NUM_REGS],
    pc: usize,
    program: Program,
    mem: Vec<u8>,
    bus: Option<SystemBus>,
    custom: BTreeMap<u8, Box<dyn CustomUnit>>,
    interrupts_enabled: bool,
    in_interrupt: bool,
    epc: usize,
    halted: bool,
    stats: CpuStats,
    tracer: Tracer,
    track: TrackId,
    debug: DebugCtl,
}

/// How many instructions between `instructions` counter samples on the
/// trace, so long runs stay viewable.
const TRACE_SAMPLE_INSTRS: u64 = 1024;

impl Cpu {
    /// Creates a CPU with `mem_bytes` of zeroed internal data memory and
    /// no program.
    #[must_use]
    pub fn new(mem_bytes: usize) -> Self {
        let tracer = Tracer::off();
        let track = tracer.track("cpu");
        Cpu {
            regs: [0; NUM_REGS],
            pc: 0,
            program: Program::from_instrs(Vec::new()),
            mem: vec![0; mem_bytes],
            bus: None,
            custom: BTreeMap::new(),
            interrupts_enabled: false,
            in_interrupt: false,
            epc: 0,
            halted: true,
            stats: CpuStats::default(),
            tracer,
            track,
            debug: DebugCtl::default(),
        }
    }

    /// Attaches a tracer: the CPU emits an `instructions` counter every
    /// [`TRACE_SAMPLE_INSTRS`] retired instructions (and at halt) plus an
    /// instant event per interrupt taken, on the `label` track,
    /// timestamped in CPU cycles. Tracing is observational only;
    /// execution and statistics are identical either way.
    pub fn set_tracer(&mut self, tracer: &Tracer, label: &str) {
        self.tracer = tracer.clone();
        self.track = self.tracer.track(label);
    }

    /// Attaches the system bus carrying the memory-mapped devices.
    pub fn attach_bus(&mut self, bus: SystemBus) {
        self.bus = Some(bus);
    }

    /// The attached bus, if any.
    #[must_use]
    pub fn bus(&self) -> Option<&SystemBus> {
        self.bus.as_ref()
    }

    /// Mutable access to the attached bus (e.g. to inspect devices).
    #[must_use]
    pub fn bus_mut(&mut self) -> Option<&mut SystemBus> {
        self.bus.as_mut()
    }

    /// Attaches a custom functional unit to `custom<slot>` instructions.
    pub fn attach_custom_unit(&mut self, slot: u8, unit: Box<dyn CustomUnit>) {
        self.custom.insert(slot, unit);
    }

    /// Loads a program and resets the processor state (registers, pc,
    /// statistics; memory contents are preserved).
    pub fn load_program(&mut self, program: &Program) {
        self.program = program.clone();
        self.reset();
    }

    /// Resets registers, pc, and statistics; memory is preserved.
    pub fn reset(&mut self) {
        self.regs = [0; NUM_REGS];
        self.pc = self.program.entry;
        self.interrupts_enabled = false;
        self.in_interrupt = false;
        self.epc = 0;
        self.halted = self.program.is_empty();
        self.stats = CpuStats::default();
    }

    /// Whether the CPU has executed `halt` (or has no program).
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Execution statistics so far.
    #[must_use]
    pub fn stats(&self) -> CpuStats {
        self.stats
    }

    /// Current value of a register.
    #[must_use]
    pub fn reg(&self, r: Reg) -> i64 {
        self.regs[r.index()]
    }

    /// Sets a register (test benches and harnesses; `r0` stays zero).
    pub fn set_reg(&mut self, r: Reg, value: i64) {
        if r != Reg::ZERO {
            self.regs[r.index()] = value;
        }
    }

    /// Current program counter (instruction index).
    #[must_use]
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Snapshot of the architectural register file, for differential
    /// harnesses that compare per-retired-instruction state.
    #[must_use]
    pub fn regs(&self) -> [i64; NUM_REGS] {
        self.regs
    }

    /// The internal data memory, for architectural-state digests.
    #[must_use]
    pub fn mem(&self) -> &[u8] {
        &self.mem
    }

    /// Reads a 64-bit word from internal data memory.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::MemFault`] / [`IsaError::Misaligned`] for bad
    /// addresses.
    pub fn load_word(&self, addr: u64) -> Result<i64, IsaError> {
        self.check(addr, 8)?;
        let i = addr as usize;
        let bytes: [u8; 8] = self.mem[i..i + 8].try_into().expect("checked");
        Ok(i64::from_le_bytes(bytes))
    }

    /// Writes a 64-bit word to internal data memory.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::MemFault`] / [`IsaError::Misaligned`] for bad
    /// addresses.
    pub fn store_word(&mut self, addr: u64, value: i64) -> Result<(), IsaError> {
        self.check(addr, 8)?;
        let i = addr as usize;
        self.mem[i..i + 8].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    fn check(&self, addr: u64, align: u64) -> Result<(), IsaError> {
        if !addr.is_multiple_of(align) {
            return Err(IsaError::Misaligned { addr, align });
        }
        if addr + align > self.mem.len() as u64 {
            return Err(IsaError::MemFault { addr });
        }
        Ok(())
    }

    fn write_reg(&mut self, r: Reg, value: i64) {
        if r != Reg::ZERO {
            self.regs[r.index()] = value;
        }
    }

    /// Executes one instruction, advancing devices by its cycle cost.
    /// Returns `true` while the CPU is still running.
    ///
    /// # Errors
    ///
    /// Propagates memory, bus, decode, and divide faults; see
    /// [`IsaError`].
    pub fn step(&mut self) -> Result<bool, IsaError> {
        if self.halted {
            return Ok(false);
        }
        let Some(&instr) = self.program.instrs.get(self.pc) else {
            return Err(IsaError::PcFault { pc: self.pc });
        };
        let pc_at_fetch = self.pc;
        let mut cycles = instr.base_cycles();
        let mut next_pc = self.pc + 1;

        match instr {
            Instr::Alu(op, rd, rs1, rs2) => {
                let (a, b) = (self.regs[rs1.index()], self.regs[rs2.index()]);
                let v = match op {
                    AluOp::Add => a.wrapping_add(b),
                    AluOp::Sub => a.wrapping_sub(b),
                    AluOp::Mul => a.wrapping_mul(b),
                    AluOp::Div => {
                        if b == 0 {
                            return Err(IsaError::DivideByZero { pc: pc_at_fetch });
                        }
                        a.wrapping_div(b)
                    }
                    AluOp::Rem => {
                        if b == 0 {
                            return Err(IsaError::DivideByZero { pc: pc_at_fetch });
                        }
                        a.wrapping_rem(b)
                    }
                    AluOp::And => a & b,
                    AluOp::Or => a | b,
                    AluOp::Xor => a ^ b,
                    AluOp::Sll => a.wrapping_shl((b & 0x3f) as u32),
                    AluOp::Sra => a.wrapping_shr((b & 0x3f) as u32),
                    AluOp::Slt => i64::from(a < b),
                    AluOp::Sle => i64::from(a <= b),
                    AluOp::Seq => i64::from(a == b),
                    AluOp::Sne => i64::from(a != b),
                    AluOp::Min => a.min(b),
                    AluOp::Max => a.max(b),
                };
                self.write_reg(rd, v);
            }
            Instr::Unary(op, rd, rs1) => {
                let a = self.regs[rs1.index()];
                let v = match op {
                    UnaryOp::Neg => a.wrapping_neg(),
                    UnaryOp::Not => !a,
                    UnaryOp::Abs => a.wrapping_abs(),
                };
                self.write_reg(rd, v);
            }
            Instr::Cmovnz(rd, rc, rs) => {
                if self.regs[rc.index()] != 0 {
                    let v = self.regs[rs.index()];
                    self.write_reg(rd, v);
                }
            }
            Instr::Addi(rd, rs1, imm) => {
                let v = self.regs[rs1.index()].wrapping_add(i64::from(imm));
                self.write_reg(rd, v);
            }
            Instr::Li(rd, imm) => self.write_reg(rd, imm),
            Instr::Ld(rd, rs1, imm) => {
                let addr = self.effective(rs1, imm);
                if addr >= MMIO_BASE {
                    return Err(IsaError::MemFault { addr });
                }
                self.note_watch(addr, false);
                let v = self.load_word(addr)?;
                self.write_reg(rd, v);
            }
            Instr::Sd(rs2, rs1, imm) => {
                let addr = self.effective(rs1, imm);
                if addr >= MMIO_BASE {
                    return Err(IsaError::MemFault { addr });
                }
                self.note_watch(addr, true);
                let v = self.regs[rs2.index()];
                self.store_word(addr, v)?;
            }
            Instr::Lw(rd, rs1, imm) => {
                let addr = self.effective(rs1, imm);
                self.note_watch(addr, false);
                let v = if addr >= MMIO_BASE {
                    let bus = self.bus.as_mut().ok_or(IsaError::MemFault { addr })?;
                    let (value, bus_cycles) = bus.read((addr - MMIO_BASE) as u32)?;
                    cycles += bus_cycles;
                    self.stats.bus_cycles += bus_cycles;
                    i64::from(value as i32)
                } else {
                    self.check(addr, 4)?;
                    let i = addr as usize;
                    let bytes: [u8; 4] = self.mem[i..i + 4].try_into().expect("checked");
                    i64::from(i32::from_le_bytes(bytes))
                };
                self.write_reg(rd, v);
            }
            Instr::Sw(rs2, rs1, imm) => {
                let addr = self.effective(rs1, imm);
                self.note_watch(addr, true);
                let v = self.regs[rs2.index()] as u32;
                if addr >= MMIO_BASE {
                    let bus = self.bus.as_mut().ok_or(IsaError::MemFault { addr })?;
                    let bus_cycles = bus.write((addr - MMIO_BASE) as u32, v)?;
                    cycles += bus_cycles;
                    self.stats.bus_cycles += bus_cycles;
                } else {
                    self.check(addr, 4)?;
                    let i = addr as usize;
                    self.mem[i..i + 4].copy_from_slice(&v.to_le_bytes());
                }
            }
            Instr::Branch(cond, rs1, rs2, off) => {
                if cond.taken(self.regs[rs1.index()], self.regs[rs2.index()]) {
                    next_pc = (self.pc as i64 + 1 + i64::from(off)) as usize;
                }
            }
            Instr::Jal(rd, target) => {
                self.write_reg(rd, (self.pc + 1) as i64);
                next_pc = target as usize;
            }
            Instr::Jalr(rd, rs1) => {
                let t = self.regs[rs1.index()];
                self.write_reg(rd, (self.pc + 1) as i64);
                next_pc = t as usize;
            }
            Instr::Custom(slot, rd, rs1, rs2, imm) => {
                let unit = self
                    .custom
                    .get(&slot)
                    .ok_or(IsaError::UnknownCustomUnit { unit: slot })?;
                let v = unit.eval(self.regs[rs1.index()], self.regs[rs2.index()], imm);
                cycles = unit.latency().max(1);
                self.stats.custom_invocations += 1;
                self.write_reg(rd, v);
            }
            Instr::Ei => self.interrupts_enabled = true,
            Instr::Di => self.interrupts_enabled = false,
            Instr::Rti => {
                next_pc = self.epc;
                self.interrupts_enabled = true;
                self.in_interrupt = false;
            }
            Instr::Nop => {}
            Instr::Halt => {
                self.halted = true;
            }
        }

        self.pc = next_pc;
        self.stats.instructions += 1;
        self.stats.cycles += cycles;
        if let Some(bus) = self.bus.as_mut() {
            bus.tick(cycles);
            // Interrupt sampling happens between instructions.
            if !self.halted && self.interrupts_enabled && !self.in_interrupt && bus.irq_pending() {
                let Some(ivec) = self.program.ivec else {
                    return Err(IsaError::NoInterruptVector);
                };
                self.epc = self.pc;
                self.pc = ivec;
                self.interrupts_enabled = false;
                self.in_interrupt = true;
                self.stats.irqs_taken += 1;
                self.stats.cycles += 4; // interrupt entry overhead
                                        // The entry overhead is real time: devices must see it too,
                                        // or every taken interrupt silently skews the CPU clock
                                        // 4 cycles ahead of the bus clock.
                bus.tick(4);
                if self.tracer.is_on() {
                    self.tracer.instant(
                        self.track,
                        "irq",
                        self.stats.cycles,
                        &[
                            ("vector", Arg::from(ivec as u64)),
                            ("epc", Arg::from(self.epc as u64)),
                        ],
                    );
                }
            }
        }
        if self.tracer.is_on()
            && (self.halted || self.stats.instructions.is_multiple_of(TRACE_SAMPLE_INSTRS))
        {
            self.tracer.counter(
                self.track,
                "instructions",
                self.stats.cycles,
                self.stats.instructions,
            );
        }
        Ok(!self.halted)
    }

    fn effective(&self, base: Reg, imm: i16) -> u64 {
        (self.regs[base.index()].wrapping_add(i64::from(imm))) as u64
    }

    #[inline]
    fn note_watch(&mut self, addr: u64, write: bool) {
        if !self.debug.watchpoints.is_empty() && self.debug.watchpoints.contains(&addr) {
            self.debug.watch_hit = Some((addr, write));
        }
    }

    /// Sets the program counter (debugger jumps, reverse execution).
    pub fn set_pc(&mut self, pc: usize) {
        self.pc = pc;
    }

    /// Installs a breakpoint at an instruction index. Execution under
    /// [`Cpu::run_debug`] stops before executing a breakpointed
    /// instruction.
    pub fn add_breakpoint(&mut self, pc: usize) {
        self.debug.breakpoints.insert(pc);
    }

    /// Removes a breakpoint; removing an absent one is a no-op.
    pub fn remove_breakpoint(&mut self, pc: usize) {
        self.debug.breakpoints.remove(&pc);
    }

    /// Installs a watchpoint on a data address (internal memory or a
    /// [`MMIO_BASE`]-relative bus address given absolute). Loads and
    /// stores that touch it stop a [`Cpu::run_debug`] loop.
    pub fn add_watchpoint(&mut self, addr: u64) {
        self.debug.watchpoints.insert(addr);
    }

    /// Removes a watchpoint; removing an absent one is a no-op.
    pub fn remove_watchpoint(&mut self, addr: u64) {
        self.debug.watchpoints.remove(&addr);
    }

    /// Executes exactly one instruction under debugger control,
    /// reporting why it stopped. Ignores breakpoints at the current pc
    /// (the standard way to resume *past* a breakpoint is one step,
    /// then continue).
    ///
    /// # Errors
    ///
    /// Propagates any fault from [`Cpu::step`].
    pub fn step_debug(&mut self) -> Result<DebugStop, IsaError> {
        if self.halted {
            return Ok(DebugStop::Halted);
        }
        self.debug.watch_hit = None;
        let running = self.step()?;
        if let Some((addr, write)) = self.debug.watch_hit.take() {
            return Ok(DebugStop::Watchpoint { addr, write });
        }
        if running {
            Ok(DebugStop::Step)
        } else {
            Ok(DebugStop::Halted)
        }
    }

    /// Runs until `halt`, the cycle horizon `t`, a breakpoint, or a
    /// watchpoint — the debugger's `continue` within one co-simulation
    /// horizon. A breakpoint at the *current* pc stops immediately
    /// without executing; callers resume past it with
    /// [`Cpu::step_debug`] first.
    ///
    /// # Errors
    ///
    /// Propagates any fault from [`Cpu::step`].
    pub fn run_debug(&mut self, t: u64) -> Result<DebugStop, IsaError> {
        while self.stats.cycles < t {
            if self.halted {
                return Ok(DebugStop::Halted);
            }
            if self.debug.breakpoints.contains(&self.pc) {
                return Ok(DebugStop::Breakpoint { pc: self.pc });
            }
            match self.step_debug()? {
                DebugStop::Step => {}
                stop => return Ok(stop),
            }
        }
        Ok(DebugStop::Horizon)
    }

    /// Reads `len` bytes of internal data memory (debugger `m` packets).
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::MemFault`] if the range leaves memory.
    pub fn read_mem_bytes(&self, addr: u64, len: usize) -> Result<&[u8], IsaError> {
        let start = addr as usize;
        let end = start.checked_add(len).ok_or(IsaError::MemFault { addr })?;
        self.mem.get(start..end).ok_or(IsaError::MemFault { addr })
    }

    /// Writes raw bytes into internal data memory (debugger `M`
    /// packets).
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::MemFault`] if the range leaves memory.
    pub fn write_mem_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<(), IsaError> {
        let start = addr as usize;
        let end = start
            .checked_add(bytes.len())
            .ok_or(IsaError::MemFault { addr })?;
        self.mem
            .get_mut(start..end)
            .ok_or(IsaError::MemFault { addr })?
            .copy_from_slice(bytes);
        Ok(())
    }

    /// Serializes the architectural state: registers, pc, data memory,
    /// interrupt machinery, halt flag, statistics, and the attached
    /// bus's mutable state as a nested blob. The program, custom units,
    /// tracer, and debugger session state are static or observational
    /// and are not serialized.
    pub fn save_state(&self, w: &mut StateWriter) {
        for &r in &self.regs {
            w.i64(r);
        }
        w.usize(self.pc);
        w.bytes(&self.mem);
        w.bool(self.interrupts_enabled);
        w.bool(self.in_interrupt);
        w.usize(self.epc);
        w.bool(self.halted);
        w.u64(self.stats.instructions);
        w.u64(self.stats.cycles);
        w.u64(self.stats.bus_cycles);
        w.u64(self.stats.irqs_taken);
        w.u64(self.stats.custom_invocations);
        match &self.bus {
            Some(bus) => {
                w.bool(true);
                let mut bw = StateWriter::new();
                bus.save_state(&mut bw);
                w.bytes(&bw.into_bytes());
            }
            None => w.bool(false),
        }
    }

    /// Restores state saved by [`Cpu::save_state`] into a structurally
    /// identical CPU (same program, memory size, and bus topology).
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::State`] on truncation or shape mismatch
    /// (memory size or bus presence differs).
    pub fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), RtlError> {
        for i in 0..NUM_REGS {
            self.regs[i] = r.i64()?;
        }
        self.pc = r.usize()?;
        let mem = r.bytes()?;
        if mem.len() != self.mem.len() {
            return Err(RtlError::State {
                reason: format!(
                    "memory size {} does not match structure ({})",
                    mem.len(),
                    self.mem.len()
                ),
            });
        }
        self.mem.copy_from_slice(mem);
        self.interrupts_enabled = r.bool()?;
        self.in_interrupt = r.bool()?;
        self.epc = r.usize()?;
        self.halted = r.bool()?;
        self.stats.instructions = r.u64()?;
        self.stats.cycles = r.u64()?;
        self.stats.bus_cycles = r.u64()?;
        self.stats.irqs_taken = r.u64()?;
        self.stats.custom_invocations = r.u64()?;
        let has_bus = r.bool()?;
        if has_bus != self.bus.is_some() {
            return Err(RtlError::State {
                reason: "bus presence does not match structure".into(),
            });
        }
        if let Some(bus) = self.bus.as_mut() {
            let blob = r.bytes()?;
            let mut br = StateReader::new(blob);
            bus.restore_state(&mut br)?;
            br.finish()?;
        }
        Ok(())
    }

    /// Runs until `halt` or the cycle budget expires; returns the final
    /// statistics.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::Timeout`] when the budget expires, or any fault
    /// from [`Cpu::step`].
    pub fn run(&mut self, max_cycles: u64) -> Result<CpuStats, IsaError> {
        self.run_until(max_cycles)?;
        if self.halted {
            Ok(self.stats)
        } else {
            Err(IsaError::Timeout {
                cycles: self.stats.cycles,
            })
        }
    }

    /// Runs until `halt` or the cycle counter reaches `t`, whichever comes
    /// first — the co-simulation hot path. Unlike [`Cpu::run`], reaching
    /// `t` is not an error: a co-simulation horizon is a rendezvous point,
    /// not a timeout. The last instruction may overshoot `t` by its own
    /// latency (instructions are atomic).
    ///
    /// # Errors
    ///
    /// Propagates any fault from [`Cpu::step`].
    pub fn run_until(&mut self, t: u64) -> Result<CpuStats, IsaError> {
        // `step` re-checks `halted` and re-reads `stats.cycles`, but both
        // live on `self`, so the loop stays branch-predictable and the
        // per-instruction `stats()` copies the adapter used to make are
        // gone; `step` returns `false` at halt, which doubles as the
        // hoisted halt check.
        while self.stats.cycles < t {
            if !self.step()? {
                break;
            }
        }
        Ok(self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use codesign_rtl::bus::{timer_regs, uart_regs, BusSlave, BusTiming, SystemBus, Timer, Uart};

    fn run_src(src: &str) -> Cpu {
        let p = assemble(src).unwrap();
        let mut cpu = Cpu::new(4096);
        cpu.load_program(&p);
        cpu.run(1_000_000).unwrap();
        cpu
    }

    #[test]
    fn arithmetic_loop_sums() {
        // sum 1..=10 into r2
        let cpu = run_src(
            "li r1, 10\n\
             li r2, 0\n\
             loop: add r2, r2, r1\n\
             addi r1, r1, -1\n\
             bne r1, r0, loop\n\
             halt\n",
        );
        assert_eq!(cpu.reg(Reg::new(2)), 55);
    }

    #[test]
    fn memory_roundtrip_via_instructions() {
        let cpu = run_src(
            "li r1, 123456789\n\
             sd r1, r0, 16\n\
             ld r2, r0, 16\n\
             halt\n",
        );
        assert_eq!(cpu.reg(Reg::new(2)), 123_456_789);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let cpu = run_src("li r0, 99\nadd r1, r0, r0\nhalt\n");
        assert_eq!(cpu.reg(Reg::ZERO), 0);
        assert_eq!(cpu.reg(Reg::new(1)), 0);
    }

    #[test]
    fn cmovnz_selects() {
        let cpu = run_src(
            "li r1, 1\nli r2, 10\nli r3, 20\n\
             add r4, r3, r0\n\
             cmovnz r4, r1, r2\n\
             halt\n",
        );
        assert_eq!(cpu.reg(Reg::new(4)), 10);
        let cpu = run_src(
            "li r1, 0\nli r2, 10\nli r3, 20\n\
             add r4, r3, r0\n\
             cmovnz r4, r1, r2\n\
             halt\n",
        );
        assert_eq!(cpu.reg(Reg::new(4)), 20);
    }

    #[test]
    fn divide_by_zero_traps() {
        let p = assemble("li r1, 5\ndiv r2, r1, r0\nhalt\n").unwrap();
        let mut cpu = Cpu::new(64);
        cpu.load_program(&p);
        assert!(matches!(cpu.run(1000), Err(IsaError::DivideByZero { .. })));
    }

    #[test]
    fn subroutine_call_and_return() {
        let cpu = run_src(
            "jal r15, sub\n\
             halt\n\
             sub: li r1, 77\n\
             jalr r0, r15\n",
        );
        assert_eq!(cpu.reg(Reg::new(1)), 77);
        assert!(cpu.halted());
    }

    #[test]
    fn timeout_reported() {
        let p = assemble("loop: jal r0, loop\n").unwrap();
        let mut cpu = Cpu::new(64);
        cpu.load_program(&p);
        assert!(matches!(cpu.run(100), Err(IsaError::Timeout { .. })));
    }

    #[test]
    fn pc_fault_off_end() {
        let p = assemble("nop\n").unwrap();
        let mut cpu = Cpu::new(64);
        cpu.load_program(&p);
        cpu.step().unwrap();
        assert!(matches!(cpu.step(), Err(IsaError::PcFault { pc: 1 })));
    }

    #[test]
    fn misaligned_access_faults() {
        let p = assemble("li r1, 3\nld r2, r1, 0\nhalt\n").unwrap();
        let mut cpu = Cpu::new(64);
        cpu.load_program(&p);
        assert!(matches!(
            cpu.run(1000),
            Err(IsaError::Misaligned { addr: 3, align: 8 })
        ));
    }

    #[test]
    fn mmio_write_reaches_uart_and_costs_bus_cycles() {
        let mut bus = SystemBus::new(BusTiming::default());
        bus.map(0x100, 0x10, Box::new(Uart::new())).unwrap();
        let p = assemble(&format!(
            "li r1, {}\n\
             li r2, 72\n\
             sw r2, r1, {}\n\
             halt\n",
            MMIO_BASE + 0x100,
            uart_regs::TX,
        ))
        .unwrap();
        let mut cpu = Cpu::new(64);
        cpu.attach_bus(bus);
        cpu.load_program(&p);
        cpu.run(10_000).unwrap();
        assert!(cpu.stats().bus_cycles > 0);
        let map_stats = cpu.bus().unwrap().stats();
        assert_eq!(map_stats.writes, 1);
    }

    #[test]
    fn mmio_without_bus_faults() {
        let p = assemble(&format!("li r1, {MMIO_BASE}\nlw r2, r1, 0\nhalt\n")).unwrap();
        let mut cpu = Cpu::new(64);
        cpu.load_program(&p);
        assert!(matches!(cpu.run(1000), Err(IsaError::MemFault { .. })));
    }

    #[test]
    fn sd_to_mmio_region_faults() {
        let p = assemble(&format!("li r1, {MMIO_BASE}\nsd r1, r1, 0\nhalt\n")).unwrap();
        let mut cpu = Cpu::new(64);
        cpu.load_program(&p);
        assert!(matches!(cpu.run(1000), Err(IsaError::MemFault { .. })));
    }

    #[test]
    fn timer_interrupt_runs_handler() {
        let mut bus = SystemBus::new(BusTiming::default());
        bus.map(0x0, 0x10, Box::new(Timer::new())).unwrap();
        // Program: start timer (load 20, enable+irq), spin; handler
        // stores a flag, acks, and returns; main loop sees flag and halts.
        let src = format!(
            ".vector isr\n\
             li r1, {base}\n\
             li r2, 20\n\
             sw r2, r1, {load}\n\
             li r2, 3\n\
             sw r2, r1, {ctrl}\n\
             ei\n\
             spin: ld r3, r0, 8\n\
             beq r3, r0, spin\n\
             halt\n\
             isr: li r4, 1\n\
             sd r4, r0, 8\n\
             li r5, {base}\n\
             sw r5, r5, {ack}\n\
             rti\n",
            base = MMIO_BASE,
            load = timer_regs::LOAD,
            ctrl = timer_regs::CTRL,
            ack = timer_regs::ACK,
        );
        let p = assemble(&src).unwrap();
        let mut cpu = Cpu::new(256);
        cpu.attach_bus(bus);
        cpu.load_program(&p);
        let stats = cpu.run(100_000).unwrap();
        assert_eq!(stats.irqs_taken, 1);
        assert_eq!(cpu.load_word(8).unwrap(), 1);
    }

    /// A bus slave that does nothing but count how many bus-clock
    /// cycles it has been ticked — ground truth for CPU/bus lockstep.
    #[derive(Debug, Default)]
    struct TickCounter {
        ticks: u64,
    }

    impl BusSlave for TickCounter {
        fn name(&self) -> &str {
            "tick-counter"
        }
        fn read(&mut self, _offset: u32) -> u32 {
            0
        }
        fn write(&mut self, _offset: u32, _value: u32) {}
        fn tick(&mut self) {
            self.ticks += 1;
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn interrupt_entry_overhead_ticks_the_bus() {
        // Regression: the 4-cycle interrupt entry overhead was added to
        // `stats.cycles` without ticking the bus, so after every taken
        // IRQ all devices ran 4 cycles behind the CPU clock — visible
        // as a cross-level cycle divergence in the conformance sweep.
        let mut bus = SystemBus::new(BusTiming::default());
        bus.map(0x0, 0x10, Box::new(Timer::new())).unwrap();
        bus.map(0x100, 0x10, Box::new(TickCounter::default()))
            .unwrap();
        let src = format!(
            ".vector isr\n\
             li r1, {base}\n\
             li r2, 20\n\
             sw r2, r1, {load}\n\
             li r2, 3\n\
             sw r2, r1, {ctrl}\n\
             ei\n\
             spin: ld r3, r0, 8\n\
             beq r3, r0, spin\n\
             halt\n\
             isr: li r4, 1\n\
             sd r4, r0, 8\n\
             li r5, {base}\n\
             sw r5, r5, {ack}\n\
             rti\n",
            base = MMIO_BASE,
            load = timer_regs::LOAD,
            ctrl = timer_regs::CTRL,
            ack = timer_regs::ACK,
        );
        let p = assemble(&src).unwrap();
        let mut cpu = Cpu::new(256);
        cpu.attach_bus(bus);
        cpu.load_program(&p);
        let stats = cpu.run(100_000).unwrap();
        assert_eq!(stats.irqs_taken, 1);
        let counter = cpu.bus().unwrap().device_at::<TickCounter>(0x100).unwrap();
        assert_eq!(
            counter.ticks, stats.cycles,
            "bus clock must match CPU clock across interrupt entry"
        );
    }

    #[test]
    fn interrupt_without_vector_is_an_error() {
        let mut bus = SystemBus::new(BusTiming::default());
        let mut uart = Uart::new();
        uart.inject_rx(1);
        bus.map(0x0, 0x10, Box::new(uart)).unwrap();
        let src = format!(
            "li r1, {base}\n\
             li r2, 1\n\
             sw r2, r1, {en}\n\
             ei\n\
             nop\n\
             halt\n",
            base = MMIO_BASE,
            en = uart_regs::IRQ_ENABLE,
        );
        let p = assemble(&src).unwrap();
        let mut cpu = Cpu::new(64);
        cpu.attach_bus(bus);
        cpu.load_program(&p);
        assert!(matches!(cpu.run(1000), Err(IsaError::NoInterruptVector)));
    }

    #[derive(Debug)]
    struct MacUnit;

    impl CustomUnit for MacUnit {
        fn name(&self) -> &str {
            "mac"
        }
        fn latency(&self) -> u64 {
            2
        }
        fn area_luts(&self) -> u32 {
            150
        }
        fn eval(&self, a: i64, b: i64, imm: i64) -> i64 {
            a.wrapping_mul(b).wrapping_add(imm)
        }
    }

    #[test]
    fn custom_unit_executes_with_its_latency() {
        let p = assemble("li r1, 6\nli r2, 7\ncustom0 r3, r1, r2, 1\nhalt\n").unwrap();
        let mut cpu = Cpu::new(64);
        cpu.attach_custom_unit(0, Box::new(MacUnit));
        cpu.load_program(&p);
        let stats = cpu.run(1000).unwrap();
        assert_eq!(cpu.reg(Reg::new(3)), 43);
        assert_eq!(stats.custom_invocations, 1);
    }

    #[test]
    fn unattached_custom_unit_faults() {
        let p = assemble("custom5 r1, r2, r3, 0\nhalt\n").unwrap();
        let mut cpu = Cpu::new(64);
        cpu.load_program(&p);
        assert!(matches!(
            cpu.run(1000),
            Err(IsaError::UnknownCustomUnit { unit: 5 })
        ));
    }

    #[test]
    fn traced_cpu_behaves_identically() {
        let src = format!(
            ".vector isr\n\
             li r1, {base}\n\
             li r2, 20\n\
             sw r2, r1, {load}\n\
             li r2, 3\n\
             sw r2, r1, {ctrl}\n\
             ei\n\
             spin: ld r3, r0, 8\n\
             beq r3, r0, spin\n\
             halt\n\
             isr: li r4, 1\n\
             sd r4, r0, 8\n\
             li r5, {base}\n\
             sw r5, r5, {ack}\n\
             rti\n",
            base = MMIO_BASE,
            load = timer_regs::LOAD,
            ctrl = timer_regs::CTRL,
            ack = timer_regs::ACK,
        );
        let run = |tracer: Option<&Tracer>| {
            let mut bus = SystemBus::new(BusTiming::default());
            bus.map(0x0, 0x10, Box::new(Timer::new())).unwrap();
            let p = assemble(&src).unwrap();
            let mut cpu = Cpu::new(256);
            if let Some(t) = tracer {
                cpu.set_tracer(t, "cpu");
            }
            cpu.attach_bus(bus);
            cpu.load_program(&p);
            cpu.run(100_000).unwrap()
        };
        let plain = run(None);
        let tracer = Tracer::on();
        let traced = run(Some(&tracer));
        assert_eq!(plain, traced);
        // One irq instant plus the halt counter sample, at minimum.
        assert!(tracer.event_count() >= 2);
        codesign_trace::validate_chrome_trace(&tracer.to_chrome_json()).unwrap();
    }

    #[test]
    fn cycle_accounting_matches_model() {
        let p = assemble("li r1, 2\nmul r2, r1, r1\nhalt\n").unwrap();
        let mut cpu = Cpu::new(64);
        cpu.load_program(&p);
        let stats = cpu.run(1000).unwrap();
        // li = 2, mul = 3, halt = 1
        assert_eq!(stats.cycles, 6);
        assert_eq!(stats.instructions, 3);
    }
}
