//! The deterministic N-system conformance campaign.
//!
//! Each sweep index derives its own generator configuration from the
//! campaign seed (via splitmix64), realizes the system at all four
//! levels, and checks every architected observable. Interleaved with the
//! per-system checks:
//!
//! * every 17th index runs a **degenerate shape** (all-floors, maximum
//!   back-pressure, maximum width, IRQ-only) instead of a random draw —
//!   corners are where abstractions crack;
//! * every 13th index also runs an **engine-parity differential**: the
//!   one-shot message simulator against the event-driven
//!   [`MessageEngine`](codesign_sim::message::MessageEngine) on a random
//!   TGFF process network (finish-time is compared exactly; it is part
//!   of the parity contract between the two kernels);
//! * every [`SweepConfig::lockstep_every`]-th index runs a clean
//!   ISS-vs-pin **lockstep** pass, after the deliberate-fault
//!   [`self_test`](crate::lockstep::self_test) has proven the checker
//!   can see faults at all.
//!
//! Work is claimed by an atomic counter and merged back in index order,
//! so the report is **byte-identical at any thread count** — the
//! parallelism is an implementation detail, not an input.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use codesign_ir::workload::sysgen::{
    random_placement_flags, random_system, SysConfig, MAX_IRQ_BYTES,
};
use codesign_ir::workload::tgff::{random_process_network, NetworkConfig};
use codesign_sim::engine::SimEngine;
use codesign_sim::ladder::AbstractionLevel;
use codesign_sim::message::{simulate, MessageConfig, MessageEngine, Placement, Resource};

use crate::lockstep::{self, LockstepConfig, LockstepOutcome};
use crate::observables::{check, level_errors, Divergence};
use crate::runner::run_system;
use crate::ConformError;

/// Campaign parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepConfig {
    /// Systems to generate and check.
    pub systems: usize,
    /// Campaign seed; per-system seeds derive from it.
    pub seed: u64,
    /// Worker threads (values below 1 are treated as 1). Does not
    /// affect the report's bytes.
    pub threads: usize,
    /// Whether lockstep passes (and the up-front self-test) run.
    pub lockstep: bool,
    /// Run a lockstep pass every this-many systems.
    pub lockstep_every: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            systems: 100,
            seed: 42,
            threads: 1,
            lockstep: true,
            lockstep_every: 29,
        }
    }
}

/// Per-level cycle-error statistics over the whole campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelErrorStat {
    /// The level above pin.
    pub level: AbstractionLevel,
    /// Largest relative error observed.
    pub max: f64,
    /// Mean relative error (0 for an empty campaign).
    pub mean: f64,
}

/// The campaign's complete, thread-count-independent result.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Systems checked.
    pub systems: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Every divergence, in system-index order.
    pub divergences: Vec<Divergence>,
    /// Cycle-error statistics for register, driver, message.
    pub level_errors: [LevelErrorStat; 3],
    /// Payload bytes moved across all systems (pin-level measurement).
    pub total_bytes: u64,
    /// Interrupts taken across all systems (pin-level measurement).
    pub total_irqs: u64,
    /// Messages delivered across all systems (message level).
    pub total_messages: u64,
    /// Degenerate-shape systems among the total.
    pub degenerate_systems: u64,
    /// Engine-parity differentials run.
    pub engine_diffs: u64,
    /// Clean lockstep passes run.
    pub lockstep_runs: u64,
    /// Instructions retired under lockstep comparison.
    pub lockstep_instructions: u64,
}

/// The finalizer of splitmix64 — a cheap, high-quality seed spreader.
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The generator configuration for one sweep index — reproducible from
/// `(campaign seed, index)` alone, which is what makes a reported
/// divergence a one-line repro.
#[must_use]
pub fn sys_config(campaign_seed: u64, index: usize) -> SysConfig {
    let seed = splitmix64(campaign_seed.wrapping_add(index as u64));
    if index % 17 == 16 {
        return degenerate_config(seed, index / 17);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    SysConfig {
        channels: rng.gen_range(1..=4),
        iterations: rng.gen_range(1..=6),
        max_message_words: rng.gen_range(1..=8),
        max_compute: rng.gen_range(0..=300),
        max_fifo_capacity: rng.gen_range(1..=16),
        max_drain_period: rng.gen_range(1..=12),
        extra_devices: rng.gen_range(0..=3),
        max_irq_bytes: rng.gen_range(0..=6),
        seed,
    }
}

/// Whether [`sys_config`] yields a degenerate corner at this index.
#[must_use]
pub fn is_degenerate(index: usize) -> bool {
    index % 17 == 16
}

/// The four degenerate corner shapes, cycled by occurrence.
fn degenerate_config(seed: u64, occurrence: usize) -> SysConfig {
    let floors = SysConfig {
        channels: 1,
        iterations: 1,
        max_message_words: 1,
        max_compute: 0,
        max_fifo_capacity: 1,
        max_drain_period: 1,
        extra_devices: 0,
        max_irq_bytes: 0,
        seed,
    };
    match occurrence % 4 {
        0 => floors,
        // Maximum back-pressure: one-word FIFO, slow drain, fat messages.
        1 => SysConfig {
            max_message_words: 8,
            max_drain_period: 12,
            iterations: 4,
            ..floors
        },
        // Maximum width, minimum depth.
        2 => SysConfig {
            channels: 8,
            ..floors
        },
        // IRQ-saturated: the UART dominates the run.
        _ => SysConfig {
            max_irq_bytes: MAX_IRQ_BYTES,
            iterations: 2,
            ..floors
        },
    }
}

/// True when the system at `cfg` fails conformance — generation or
/// realization errors count as failures. This is the predicate handed
/// to [`shrink`](crate::shrink::shrink).
#[must_use]
pub fn conformance_fails(cfg: &SysConfig) -> bool {
    let Ok(spec) = random_system(cfg) else {
        return true;
    };
    let Ok(run) = run_system(&spec) else {
        return true;
    };
    !check(&spec, &run).is_empty()
}

/// One index's contribution, merged in index order.
#[derive(Debug, Clone)]
struct PerSystem {
    divergences: Vec<Divergence>,
    errs: [(AbstractionLevel, f64); 3],
    bytes: u64,
    irqs: u64,
    messages: u64,
    degenerate: bool,
    engine_diff: bool,
    lockstep_instructions: Option<u64>,
}

fn harness_error(seed: u64, stage: &'static str, e: &ConformError) -> Divergence {
    Divergence {
        seed,
        check: "harness-error",
        detail: format!("{stage}: {e}"),
    }
}

/// Compares the one-shot simulator and the event-driven engine on a
/// random process network derived from `seed`.
fn engine_parity(seed: u64, out: &mut Vec<Divergence>) {
    let mut rng = StdRng::seed_from_u64(splitmix64(seed ^ 0xE261_0E5F));
    let net_cfg = NetworkConfig {
        processes: rng.gen_range(2..=6),
        channel_prob: 0.4,
        compute: (10, 500),
        bytes: (4, 64),
        iterations: rng.gen_range(1..=8),
        seed: splitmix64(seed),
    };
    let net = random_process_network(&net_cfg);
    let flags = random_placement_flags(net.len(), splitmix64(seed ^ 0x9A9A));
    let placement = Placement::from_assignment(
        flags
            .iter()
            .map(|&hw| {
                if hw {
                    Resource::Hardware(0)
                } else {
                    Resource::Software(0)
                }
            })
            .collect(),
    );
    let config = MessageConfig::default();
    let oneshot = match simulate(&net, &placement, &config) {
        Ok(r) => r,
        Err(e) => {
            out.push(Divergence {
                seed,
                check: "engine-parity",
                detail: format!("one-shot simulator failed: {e}"),
            });
            return;
        }
    };
    let mut engine = match MessageEngine::new("parity", net, placement, config) {
        Ok(e) => e,
        Err(e) => {
            out.push(Divergence {
                seed,
                check: "engine-parity",
                detail: format!("engine construction failed: {e}"),
            });
            return;
        }
    };
    while !engine.is_done() {
        if let Err(e) = engine.advance_to(u64::MAX) {
            out.push(Divergence {
                seed,
                check: "engine-parity",
                detail: format!("engine failed: {e}"),
            });
            return;
        }
    }
    let stepped = engine.report();
    let pairs: [(&str, u64, u64); 5] = [
        ("messages", oneshot.messages, stepped.messages),
        ("bytes", oneshot.bytes, stepped.bytes),
        (
            "cross_boundary_bytes",
            oneshot.cross_boundary_bytes,
            stepped.cross_boundary_bytes,
        ),
        ("events", oneshot.events, stepped.events),
        ("finish_time", oneshot.finish_time, stepped.finish_time),
    ];
    for (what, a, b) in pairs {
        if a != b {
            out.push(Divergence {
                seed,
                check: "engine-parity",
                detail: format!("{what}: one-shot {a} vs engine {b}"),
            });
        }
    }
    if oneshot.per_channel_bytes != stepped.per_channel_bytes {
        out.push(Divergence {
            seed,
            check: "engine-parity",
            detail: format!(
                "per_channel_bytes: one-shot {:?} vs engine {:?}",
                oneshot.per_channel_bytes, stepped.per_channel_bytes
            ),
        });
    }
}

fn check_one(cfg: &SweepConfig, index: usize) -> PerSystem {
    let sys = sys_config(cfg.seed, index);
    let seed = sys.seed;
    let mut per = PerSystem {
        divergences: Vec::new(),
        errs: [
            (AbstractionLevel::Register, 0.0),
            (AbstractionLevel::Driver, 0.0),
            (AbstractionLevel::Message, 0.0),
        ],
        bytes: 0,
        irqs: 0,
        messages: 0,
        degenerate: is_degenerate(index),
        engine_diff: false,
        lockstep_instructions: None,
    };
    match random_system(&sys) {
        Err(e) => per
            .divergences
            .push(harness_error(seed, "generate", &ConformError::Ir(e))),
        Ok(spec) => match run_system(&spec) {
            Err(e) => per.divergences.push(harness_error(seed, "realize", &e)),
            Ok(run) => {
                per.divergences.extend(check(&spec, &run));
                per.errs = level_errors(&run);
                per.bytes = run.pin.per_channel_bytes.iter().sum();
                per.irqs = run.pin.irqs.unwrap_or(0);
                per.messages = run.message.messages.unwrap_or(0);
            }
        },
    }
    if index % 13 == 5 {
        per.engine_diff = true;
        engine_parity(seed, &mut per.divergences);
    }
    if cfg.lockstep && cfg.lockstep_every > 0 && index.is_multiple_of(cfg.lockstep_every) {
        let lk = LockstepConfig {
            seed: splitmix64(seed ^ 0x10C2_57E9),
            instructions: 150,
            enabled: true,
            fault_after: None,
        };
        match lockstep::run_lockstep(&lk) {
            Ok(LockstepOutcome::Agreed { instructions }) => {
                per.lockstep_instructions = Some(instructions);
            }
            Ok(LockstepOutcome::Diverged {
                instruction,
                detail,
            }) => {
                per.lockstep_instructions = Some(instruction);
                per.divergences.push(Divergence {
                    seed,
                    check: "lockstep",
                    detail: format!("diverged at retired instruction {instruction}: {detail}"),
                });
            }
            Err(e) => per.divergences.push(harness_error(seed, "lockstep", &e)),
        }
    }
    per
}

/// Runs the campaign.
///
/// # Errors
///
/// Returns [`ConformError::SelfTest`] if the lockstep self-test cannot
/// see its own injected fault (nothing else is trustworthy then);
/// individual system failures never abort the sweep — they are reported
/// as `harness-error` divergences.
pub fn run_sweep(cfg: &SweepConfig) -> Result<SweepReport, ConformError> {
    if cfg.lockstep {
        lockstep::self_test(true)?;
    }
    let threads = cfg.threads.max(1);
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<PerSystem>>> = Mutex::new(vec![None; cfg.systems]);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cfg.systems {
                    break;
                }
                let per = check_one(cfg, i);
                slots.lock().expect("sweep worker panicked")[i] = Some(per);
            });
        }
    });
    let results = slots.into_inner().expect("sweep worker panicked");

    // Index-ordered aggregation: the report's bytes depend only on the
    // campaign inputs, never on thread interleaving.
    let mut report = SweepReport {
        systems: cfg.systems,
        seed: cfg.seed,
        divergences: Vec::new(),
        level_errors: [
            (AbstractionLevel::Register, 0.0, 0.0),
            (AbstractionLevel::Driver, 0.0, 0.0),
            (AbstractionLevel::Message, 0.0, 0.0),
        ]
        .map(|(level, max, mean)| LevelErrorStat { level, max, mean }),
        total_bytes: 0,
        total_irqs: 0,
        total_messages: 0,
        degenerate_systems: 0,
        engine_diffs: 0,
        lockstep_runs: 0,
        lockstep_instructions: 0,
    };
    let mut sums = [0.0f64; 3];
    for per in results.into_iter().flatten() {
        report.divergences.extend(per.divergences);
        for (slot, (level, err)) in report.level_errors.iter_mut().zip(per.errs) {
            debug_assert_eq!(slot.level, level);
            if err > slot.max {
                slot.max = err;
            }
        }
        for (sum, (_, err)) in sums.iter_mut().zip(per.errs) {
            *sum += err;
        }
        report.total_bytes += per.bytes;
        report.total_irqs += per.irqs;
        report.total_messages += per.messages;
        report.degenerate_systems += u64::from(per.degenerate);
        report.engine_diffs += u64::from(per.engine_diff);
        if let Some(instructions) = per.lockstep_instructions {
            report.lockstep_runs += 1;
            report.lockstep_instructions += instructions;
        }
    }
    if cfg.systems > 0 {
        for (slot, sum) in report.level_errors.iter_mut().zip(sums) {
            slot.mean = sum / cfg.systems as f64;
        }
    }
    Ok(report)
}

/// Renders a sweep report as deterministic JSON — the single renderer
/// behind both `codesign conform --json` and the job server's `conform`
/// replies, so a served run is byte-identical to a direct CLI run.
/// Hand-rolled (the workspace vendors no serializer for this shape);
/// `detail` strings are escaped.
#[must_use]
pub fn report_json(cfg: &SweepConfig, report: &SweepReport) -> String {
    use std::fmt::Write as _;
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut j = String::from("{\n");
    let _ = writeln!(j, "  \"tool\": \"codesign conform\",");
    let _ = writeln!(j, "  \"systems\": {},", report.systems);
    let _ = writeln!(j, "  \"seed\": {},", report.seed);
    let _ = writeln!(j, "  \"lockstep\": {},", cfg.lockstep);
    let _ = writeln!(
        j,
        "  \"degenerate_systems\": {},",
        report.degenerate_systems
    );
    let _ = writeln!(j, "  \"engine_diffs\": {},", report.engine_diffs);
    let _ = writeln!(j, "  \"lockstep_runs\": {},", report.lockstep_runs);
    let _ = writeln!(
        j,
        "  \"lockstep_instructions\": {},",
        report.lockstep_instructions
    );
    let _ = writeln!(j, "  \"total_bytes\": {},", report.total_bytes);
    let _ = writeln!(j, "  \"total_irqs\": {},", report.total_irqs);
    let _ = writeln!(j, "  \"total_messages\": {},", report.total_messages);
    j.push_str("  \"level_errors\": [\n");
    for (i, stat) in report.level_errors.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"level\": \"{}\", \"max\": {:.6}, \"mean\": {:.6}}}{}",
            stat.level,
            stat.max,
            stat.mean,
            if i + 1 < report.level_errors.len() {
                ","
            } else {
                ""
            }
        );
    }
    j.push_str("  ],\n  \"divergences\": [\n");
    for (i, d) in report.divergences.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"seed\": {}, \"check\": \"{}\", \"detail\": \"{}\"}}{}",
            d.seed,
            esc(d.check),
            esc(&d.detail),
            if i + 1 < report.divergences.len() {
                ","
            } else {
                ""
            }
        );
    }
    j.push_str("  ]\n}\n");
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_deterministic_and_escaped() {
        let cfg = SweepConfig {
            systems: 3,
            seed: 9,
            ..SweepConfig::default()
        };
        let mut report = run_sweep(&SweepConfig {
            lockstep: false,
            ..cfg
        })
        .unwrap();
        report.divergences.push(Divergence {
            seed: 1,
            check: "harness-error",
            detail: "a \"quoted\" \\ detail".into(),
        });
        let a = report_json(&cfg, &report);
        assert_eq!(a, report_json(&cfg, &report));
        assert!(a.contains("\"tool\": \"codesign conform\""));
        assert!(a.contains("\"systems\": 3"));
        assert!(a.contains("a \\\"quoted\\\" \\\\ detail"), "{a}");
    }

    #[test]
    fn sys_config_is_reproducible_and_valid() {
        for i in 0..60 {
            let a = sys_config(42, i);
            assert_eq!(a, sys_config(42, i));
            a.validate().unwrap_or_else(|e| panic!("index {i}: {e}"));
        }
        assert!(is_degenerate(16));
        assert!(!is_degenerate(0));
    }

    #[test]
    fn report_is_identical_across_thread_counts() {
        let base = SweepConfig {
            systems: 40,
            seed: 7,
            threads: 1,
            ..SweepConfig::default()
        };
        let one = run_sweep(&base).unwrap();
        let three = run_sweep(&SweepConfig { threads: 3, ..base }).unwrap();
        assert_eq!(one, three);
    }

    #[test]
    fn campaign_finds_no_divergences() {
        let report = run_sweep(&SweepConfig {
            systems: 60,
            seed: 42,
            threads: 2,
            ..SweepConfig::default()
        })
        .unwrap();
        assert_eq!(
            report.divergences,
            Vec::new(),
            "fix the engines or document a waiver — never ignore a divergence"
        );
        assert!(report.total_bytes > 0);
        assert!(report.lockstep_runs > 0);
        assert!(report.engine_diffs > 0);
        assert!(report.degenerate_systems > 0);
    }
}
