//! # codesign-conform
//!
//! Differential conformance across the abstraction ladder of Adams &
//! Thomas, DAC 1996 (Figure 3) — a bug-finding machine for the rest of
//! the workspace.
//!
//! The paper's central claim is that the four interface-abstraction
//! levels (pin, register, driver call, OS message) trade simulation
//! speed for timing accuracy *while agreeing on what the system does*.
//! This crate makes that claim falsifiable at scale:
//!
//! * [`runner`] — realizes one generated
//!   [`SystemSpec`](codesign_ir::workload::sysgen::SystemSpec) at all
//!   four levels and extracts the architected observables (payload bytes
//!   per channel, interrupt counts, final architectural state, channel
//!   completion order) plus each level's simulated cycles;
//! * [`observables`] — the observable definitions, the per-level modeled
//!   cycle-error bounds, and the check that turns a four-level run into
//!   a (hopefully empty) list of [`observables::Divergence`]s;
//! * [`lockstep`] — an ISS-vs-pin-accurate-ISS lockstep checker that
//!   compares full architectural state after every retired instruction,
//!   validated by a deliberate-fault self-test that fails loudly when
//!   checking is disabled;
//! * [`shrink`] — binary-search shrinking of a failing generator
//!   configuration down to a minimal reproduction;
//! * [`sweep`] — the deterministic, parallel N-system campaign behind
//!   `codesign conform` and `bench-conform`; its report is byte-identical
//!   at any thread count.
//!
//! Every divergence this harness has surfaced so far became a fix plus a
//! frozen-seed regression test in the owning crate (see the repository
//! README's conformance section for the ledger).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod lockstep;
pub mod observables;
pub mod runner;
pub mod shrink;
pub mod sweep;

use std::error::Error;
use std::fmt;

use codesign_ir::IrError;
use codesign_isa::IsaError;
use codesign_rtl::RtlError;
use codesign_sim::SimError;

/// Errors produced by the conformance harness.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConformError {
    /// Generator / specification error.
    Ir(IrError),
    /// Instruction-set-simulator error while realizing a level.
    Isa(IsaError),
    /// Bus / device error while realizing a level.
    Rtl(RtlError),
    /// Co-simulation error while realizing a level.
    Sim(SimError),
    /// The lockstep checker's deliberate-fault self-test did not detect
    /// the injected fault — the check is disabled or broken, so every
    /// "agreed" verdict it produced is meaningless.
    SelfTest {
        /// What the self-test observed.
        detail: String,
    },
    /// A harness configuration the sweep cannot honor.
    Config {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for ConformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConformError::Ir(e) => write!(f, "generator: {e}"),
            ConformError::Isa(e) => write!(f, "iss: {e}"),
            ConformError::Rtl(e) => write!(f, "rtl: {e}"),
            ConformError::Sim(e) => write!(f, "sim: {e}"),
            ConformError::SelfTest { detail } => {
                write!(f, "lockstep self-test FAILED: {detail}")
            }
            ConformError::Config { reason } => write!(f, "config: {reason}"),
        }
    }
}

impl Error for ConformError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ConformError::Ir(e) => Some(e),
            ConformError::Isa(e) => Some(e),
            ConformError::Rtl(e) => Some(e),
            ConformError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<IrError> for ConformError {
    fn from(e: IrError) -> Self {
        ConformError::Ir(e)
    }
}

#[doc(hidden)]
impl From<IsaError> for ConformError {
    fn from(e: IsaError) -> Self {
        ConformError::Isa(e)
    }
}

#[doc(hidden)]
impl From<RtlError> for ConformError {
    fn from(e: RtlError) -> Self {
        ConformError::Rtl(e)
    }
}

#[doc(hidden)]
impl From<SimError> for ConformError {
    fn from(e: SimError) -> Self {
        ConformError::Sim(e)
    }
}
