//! Architected observables and per-level modeled error bounds.
//!
//! An observable is *architected* when the system's specification fixes
//! its value independent of how the hardware/software interface is
//! modeled. For the generated producer→FIFO systems those are:
//!
//! * **payload bytes per channel** — `iterations × words × 4`, defined
//!   at every level;
//! * **interrupt count** — one per preloaded UART receive byte, defined
//!   at the two ISS levels (the analytic levels price interrupts, they
//!   do not count them);
//! * **final architectural state** — register file (after the program
//!   normalizes its timing-dependent poll scratch) plus data memory,
//!   defined at the two ISS levels;
//! * **channel completion order** — the order in which channels receive
//!   their *last* bus write, defined at the ISS levels via the bus's
//!   global write-sequence stamps. (The message level stamps deliveries,
//!   not sends; with independent consumers the delivery order is a
//!   scheduling artifact, so it is only checked for internal
//!   consistency — a documented waiver, see DESIGN.md §13.)
//!
//! Simulated cycles are *not* architected — they are exactly what the
//! ladder trades away — so each level above pin carries a modeled
//! relative-error bound instead, calibrated against the 1000-system
//! sweep maxima with headroom (the sweep reports measured maxima next
//! to the bounds, so drift is visible).

use crate::runner::{LevelRun, SystemRun};
use codesign_ir::workload::sysgen::SystemSpec;
use codesign_sim::ladder::AbstractionLevel;

/// Modeled cycle-error bound of the register level relative to pin.
///
/// The register level hides only device wait states (0–3 extra pin
/// cycles on a 3-cycle transaction); measured maximum 0.064 across
/// 1000-system sweeps at seeds 1, 7, 42, 123, and 999.
pub const REGISTER_REL_BOUND: f64 = 0.12;

/// Modeled cycle-error bound of the driver level relative to pin.
///
/// The driver model ignores FIFO back-pressure entirely, so its error
/// grows with `drain_period × words / compute`; measured maximum 0.525,
/// on the degenerate maximum-back-pressure corner (identical across
/// campaign seeds because the corner is deterministic).
pub const DRIVER_REL_BOUND: f64 = 0.80;

/// Modeled cycle-error bound of the message level relative to pin.
///
/// The message level prices communication with an abstract [`CommModel`]
/// (setup + bandwidth) unrelated to bus transactions; the paper warns it
/// "may not be useful for evaluating performance". Measured maximum
/// 0.856 across 1000-system sweeps, on small chatty systems.
///
/// [`CommModel`]: codesign_sim::message::CommModel
pub const MESSAGE_REL_BOUND: f64 = 1.30;

/// One cross-level disagreement, attributable to a generator seed.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// The generator seed of the offending system.
    pub seed: u64,
    /// Which check failed (stable, machine-matchable name).
    pub check: &'static str,
    /// Human-readable evidence.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[seed {:#x}] {}: {}", self.seed, self.check, self.detail)
    }
}

/// The modeled relative-error bound for one level above pin.
#[must_use]
pub fn rel_bound(level: AbstractionLevel) -> f64 {
    match level {
        AbstractionLevel::Pin => 0.0,
        AbstractionLevel::Register => REGISTER_REL_BOUND,
        AbstractionLevel::Driver => DRIVER_REL_BOUND,
        AbstractionLevel::Message => MESSAGE_REL_BOUND,
    }
}

/// Relative cycle error of `run` against the pin reference.
#[must_use]
pub fn rel_err(pin_cycles: u64, cycles: u64) -> f64 {
    if pin_cycles == 0 {
        if cycles == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (cycles as f64 - pin_cycles as f64).abs() / pin_cycles as f64
    }
}

fn diverge(out: &mut Vec<Divergence>, seed: u64, check: &'static str, detail: String) {
    out.push(Divergence {
        seed,
        check,
        detail,
    });
}

/// Checks every architected observable of a four-level run and the
/// per-level cycle bounds. An empty result means the system conforms.
#[must_use]
pub fn check(spec: &SystemSpec, run: &SystemRun) -> Vec<Divergence> {
    let mut out = Vec::new();
    let seed = spec.seed;
    let pin = &run.pin;
    let reg = &run.register;

    // Expected per-channel payload, from the spec alone.
    let expected: Vec<u64> = (0..spec.channels.len())
        .map(|c| spec.channel_bytes(c))
        .collect();

    for (name, level) in [
        ("pin", pin),
        ("register", reg),
        ("driver", &run.driver),
        ("message", &run.message),
    ] {
        if level.per_channel_bytes != expected {
            diverge(
                &mut out,
                seed,
                "channel-bytes",
                format!(
                    "{name} moved {:?} bytes per channel, spec says {expected:?}",
                    level.per_channel_bytes
                ),
            );
        }
    }

    // ISS-only observables: interrupt count, state digest, write order.
    let irqs_expected = spec.irq_count();
    for (name, level) in [("pin", pin), ("register", reg)] {
        if level.irqs != Some(irqs_expected) {
            diverge(
                &mut out,
                seed,
                "irq-count",
                format!(
                    "{name} took {:?} interrupts, spec wires {irqs_expected}",
                    level.irqs
                ),
            );
        }
    }
    if pin.digest != reg.digest {
        diverge(
            &mut out,
            seed,
            "final-state",
            format!(
                "architectural-state digests differ: pin {:#x?} vs register {:#x?}",
                pin.digest, reg.digest
            ),
        );
    }
    if pin.write_order != reg.write_order {
        diverge(
            &mut out,
            seed,
            "completion-order",
            format!(
                "channel completion order differs: pin {:?} vs register {:?}",
                pin.write_order, reg.write_order
            ),
        );
    }

    // Message-level internal consistency (documented waiver: delivery
    // order across independent consumers is scheduling, not architected).
    let msgs_expected = spec.channels.len() as u64 * u64::from(spec.iterations);
    if run.message.messages != Some(msgs_expected) {
        diverge(
            &mut out,
            seed,
            "message-count",
            format!(
                "message level delivered {:?} messages, spec implies {msgs_expected}",
                run.message.messages
            ),
        );
    }

    // Cycle agreement within each level's modeled bound.
    for level in [reg, &run.driver, &run.message] {
        let err = rel_err(pin.cycles, level.cycles);
        let bound = rel_bound(level.level);
        if err > bound {
            diverge(
                &mut out,
                seed,
                "cycle-bound",
                format!(
                    "{} level off by {err:.3} (> modeled bound {bound}): {} vs pin {}",
                    level.level, level.cycles, pin.cycles
                ),
            );
        }
    }
    out
}

/// Largest relative cycle error per non-pin level in a run, for the
/// sweep's calibration report.
#[must_use]
pub fn level_errors(run: &SystemRun) -> [(AbstractionLevel, f64); 3] {
    let e = |l: &LevelRun| (l.level, rel_err(run.pin.cycles, l.cycles));
    [e(&run.register), e(&run.driver), e(&run.message)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_err_never_nan() {
        assert_eq!(rel_err(0, 0), 0.0);
        assert_eq!(rel_err(0, 5), f64::INFINITY);
        assert_eq!(rel_err(100, 150), 0.5);
        assert!(!rel_err(0, 0).is_nan());
    }

    // Guards future recalibration: the paper's accuracy ordering (each
    // level trades accuracy for speed) must survive any bound edit.
    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn bounds_grow_up_the_ladder() {
        assert!(REGISTER_REL_BOUND < DRIVER_REL_BOUND);
        assert!(DRIVER_REL_BOUND < MESSAGE_REL_BOUND);
    }
}
