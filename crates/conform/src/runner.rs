//! Realizes one generated [`SystemSpec`] at all four Figure 3 levels.
//!
//! The same specification — memory map, channels, IRQ wiring — is
//! turned into:
//!
//! * **pin** / **register**: one CR32 program (see
//!   [`conformance_program`]) driving the real bus, with and without the
//!   gate-level pin protocol installed;
//! * **driver**: the analytic driver-call cost model, generalized from
//!   the ladder's single channel to the spec's channel list plus an
//!   interrupt service term;
//! * **message**: a `1 + N`-process rendezvous network (one software
//!   producer, one hardware consumer per channel).
//!
//! The program is *timing-closed in its final state*: every register
//! that can legitimately differ between pin and register level (the
//! FIFO-occupancy poll scratch) is normalized before `halt`, so the
//! final architectural state is an architected observable.

use std::fmt::Write as _;

use codesign_ir::process::{Action, Process, ProcessNetwork};
use codesign_ir::workload::sysgen::{DeviceKind, SystemSpec};
use codesign_isa::asm::assemble;
use codesign_isa::cpu::{Cpu, MMIO_BASE};
use codesign_rtl::bus::{
    fifo_regs, uart_regs, BusTiming, DrainFifo, Gpio, Ram, SystemBus, Timer, Uart,
};
// FNV-1a over registers then memory; shared with the replay subsystem,
// whose time-travel restores must land on exactly the digests
// conformance pins.
use codesign_sim::fingerprint::cpu_state_digest as state_digest;
use codesign_sim::ladder::{AbstractionLevel, DriverCosts};
use codesign_sim::message::{simulate, MessageConfig, Placement, Resource};
use codesign_sim::pinproto::PinPhy;

use crate::ConformError;

/// Cycle budget for one generated system at an ISS level.
const RUN_BUDGET: u64 = 1_000_000_000;

/// Analytic cost the driver level charges per serviced interrupt:
/// entry overhead (4) plus the five-instruction handler with one bus
/// read (≈ 12 cycles on the CR32).
pub const DRIVER_IRQ_COST: u64 = 16;

/// One level's realization of a system.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelRun {
    /// The level realized.
    pub level: AbstractionLevel,
    /// End-to-end simulated cycles (including residual FIFO drain at
    /// the ISS levels).
    pub cycles: u64,
    /// Payload bytes that crossed each channel, in spec channel order.
    pub per_channel_bytes: Vec<u64>,
    /// Interrupts taken (ISS levels only).
    pub irqs: Option<u64>,
    /// FNV-1a digest of the final architectural state — register file
    /// plus data memory (ISS levels only).
    pub digest: Option<u64>,
    /// Channel indices ordered by when each received its last bus write
    /// (ISS levels only).
    pub write_order: Option<Vec<usize>>,
    /// Messages delivered (message level only).
    pub messages: Option<u64>,
    /// Simulation-kernel events processed — the Figure 3 cost currency.
    pub kernel_events: u64,
}

/// A system realized at all four levels.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemRun {
    /// Pin-level (reference) realization.
    pub pin: LevelRun,
    /// Register-level realization.
    pub register: LevelRun,
    /// Driver-level realization.
    pub driver: LevelRun,
    /// Message-level realization.
    pub message: LevelRun,
}

impl SystemRun {
    /// The four runs, bottom (reference) to top.
    #[must_use]
    pub fn levels(&self) -> [&LevelRun; 4] {
        [&self.pin, &self.register, &self.driver, &self.message]
    }
}

/// The spec's UART region (base, preloaded rx bytes), if wired.
fn uart_of(spec: &SystemSpec) -> Option<(u32, &[u8])> {
    spec.regions.iter().find_map(|r| match &r.kind {
        DeviceKind::Uart { irq_rx } if !irq_rx.is_empty() => Some((r.base, irq_rx.as_slice())),
        _ => None,
    })
}

/// The CR32 producer program realizing `spec` at the ISS levels.
///
/// Shape: (1) if a UART is wired, enable its rx interrupt and spin until
/// the handler has drained every preloaded byte (the count, not the
/// timing, is architected); (2) for each outer iteration, per channel:
/// spin the channel's compute, then push its words through the FIFO with
/// occupancy polling; (3) normalize the poll scratch register and halt.
/// The handler accumulates a byte checksum in `r11`, so the IRQ payload
/// reaches the architectural-state digest.
#[must_use]
pub fn conformance_program(spec: &SystemSpec) -> String {
    let mut s = String::new();
    let uart = uart_of(spec);
    if uart.is_some() {
        s.push_str(".vector isr\n");
    }
    if let Some((base, rx)) = uart {
        let _ = writeln!(s, "    li r1, {}", MMIO_BASE + u64::from(base));
        s.push_str("    li r2, 1\n");
        let _ = writeln!(s, "    sw r2, r1, {}", uart_regs::IRQ_ENABLE);
        let _ = writeln!(s, "    li r8, {}", rx.len());
        s.push_str("    ei\nirqwait:\n    bne r9, r8, irqwait\n    di\n");
    }
    let _ = writeln!(s, "    li r7, {}", spec.iterations);
    s.push_str("outer:\n");
    for (ci, ch) in spec.channels.iter().enumerate() {
        if ch.compute > 0 {
            let _ = writeln!(s, "    li r2, {}", (ch.compute / 3).max(1));
            let _ = writeln!(
                s,
                "spin{ci}:\n    addi r2, r2, -1\n    bne r2, r0, spin{ci}"
            );
        }
        let region = &spec.regions[ch.region];
        let DeviceKind::Fifo { capacity, .. } = region.kind else {
            unreachable!("validated: channel regions are fifos");
        };
        let _ = writeln!(s, "    li r1, {}", MMIO_BASE + u64::from(region.base));
        let _ = writeln!(s, "    li r6, {capacity}");
        let _ = writeln!(s, "    li r3, {}", ch.words);
        let _ = writeln!(s, "    li r4, {}", 0x5A5A + ci);
        let _ = writeln!(s, "w{ci}:\npoll{ci}:");
        let _ = writeln!(s, "    lw r5, r1, {}", fifo_regs::COUNT);
        let _ = writeln!(s, "    bge r5, r6, poll{ci}");
        let _ = writeln!(s, "    sw r4, r1, {}", fifo_regs::DATA);
        s.push_str("    add r4, r4, r3\n    addi r3, r3, -1\n");
        let _ = writeln!(s, "    bne r3, r0, w{ci}");
    }
    s.push_str("    addi r7, r7, -1\n    bne r7, r0, outer\n");
    // Normalize the only timing-dependent register before halting, so
    // the final state digests agree across levels.
    s.push_str("    li r5, 0\n    halt\n");
    if let Some((base, _)) = uart {
        let _ = writeln!(s, "isr:\n    li r12, {}", MMIO_BASE + u64::from(base));
        let _ = writeln!(s, "    lw r10, r12, {}", uart_regs::RX);
        s.push_str("    add r11, r11, r10\n    addi r9, r9, 1\n    rti\n");
    }
    s
}

/// Builds the spec's memory map on a fresh bus.
fn build_bus(spec: &SystemSpec) -> Result<SystemBus, ConformError> {
    let mut bus = SystemBus::new(BusTiming::default());
    for (i, region) in spec.regions.iter().enumerate() {
        let slave: Box<dyn codesign_rtl::bus::BusSlave> = match &region.kind {
            DeviceKind::Fifo {
                capacity,
                drain_period,
            } => Box::new(DrainFifo::new(*capacity, *drain_period)),
            DeviceKind::Ram => Box::new(Ram::new(format!("ram{i}"), region.size)),
            DeviceKind::Gpio => Box::new(Gpio::new()),
            DeviceKind::Timer => Box::new(Timer::new()),
            DeviceKind::Uart { irq_rx } => {
                let mut uart = Uart::new();
                for &b in irq_rx {
                    uart.inject_rx(b);
                }
                Box::new(uart)
            }
        };
        bus.map(region.base, region.size, slave)?;
    }
    Ok(bus)
}

fn realize_iss(spec: &SystemSpec, pin_level: bool) -> Result<LevelRun, ConformError> {
    let mut bus = build_bus(spec)?;
    if pin_level {
        let regions: Vec<(u32, u32)> = spec.regions.iter().map(|r| (r.base, r.size)).collect();
        bus.set_phy(Box::new(PinPhy::new(&regions)?));
    }
    let program = assemble(&conformance_program(spec))?;
    let mut cpu = Cpu::new(4096);
    cpu.attach_bus(bus);
    cpu.load_program(&program);
    let stats = cpu.run(RUN_BUDGET)?;
    let digest = state_digest(&cpu);
    let bus = cpu.bus().expect("bus attached");

    let mut per_channel_bytes = Vec::with_capacity(spec.channels.len());
    let mut tail = 0u64;
    for ch in &spec.channels {
        let base = spec.regions[ch.region].base;
        let fifo = bus
            .device_at::<DrainFifo>(base)
            .expect("channel fifo mapped");
        per_channel_bytes.push((fifo.drained() + fifo.occupancy() as u64) * 4);
        tail = tail.max(fifo.cycles_to_drain());
    }

    // Channel completion order: rank channels by the global write-
    // sequence stamp of their FIFO's last write.
    let accesses = bus.device_accesses();
    let mut stamped: Vec<(u64, usize)> = spec
        .channels
        .iter()
        .enumerate()
        .map(|(ci, ch)| {
            let base = spec.regions[ch.region].base;
            let seq = accesses
                .iter()
                .find(|a| a.base == base)
                .map_or(0, |a| a.last_write_seq);
            (seq, ci)
        })
        .collect();
    stamped.sort_unstable();
    let write_order: Vec<usize> = stamped.into_iter().map(|(_, ci)| ci).collect();

    let bus_stats = bus.stats();
    let kernel_events = if pin_level {
        stats.instructions + bus.phy_events()
    } else {
        stats.instructions + bus_stats.reads + bus_stats.writes
    };
    Ok(LevelRun {
        level: if pin_level {
            AbstractionLevel::Pin
        } else {
            AbstractionLevel::Register
        },
        cycles: stats.cycles + tail,
        per_channel_bytes,
        irqs: Some(stats.irqs_taken),
        digest: Some(digest),
        write_order: Some(write_order),
        messages: None,
        kernel_events,
    })
}

fn realize_driver(spec: &SystemSpec) -> LevelRun {
    let costs = DriverCosts::default();
    let mut time = 0u64;
    let mut events = 0u64;
    let irqs = spec.irq_count();
    time += irqs * DRIVER_IRQ_COST;
    events += irqs;
    for _ in 0..spec.iterations {
        for ch in &spec.channels {
            time += ch.compute + costs.call_overhead + ch.words * costs.per_word;
            events += 2;
        }
    }
    // The driver level ignores back-pressure; it only charges the tail
    // drain of the slowest channel's final message.
    let tail = spec
        .channels
        .iter()
        .map(|ch| {
            let DeviceKind::Fifo { drain_period, .. } = spec.regions[ch.region].kind else {
                return 0;
            };
            ch.words * drain_period
        })
        .max()
        .unwrap_or(0);
    time += tail;
    LevelRun {
        level: AbstractionLevel::Driver,
        cycles: time,
        per_channel_bytes: (0..spec.channels.len())
            .map(|c| spec.channel_bytes(c))
            .collect(),
        irqs: None,
        digest: None,
        write_order: None,
        messages: None,
        kernel_events: events,
    }
}

/// The spec as a message-level process network: one software producer
/// interleaving every channel's traffic (matching the ISS program
/// order), one hardware consumer per channel draining at the FIFO rate.
#[must_use]
pub fn message_network(spec: &SystemSpec) -> (ProcessNetwork, Placement, MessageConfig) {
    let mut net = ProcessNetwork::new(&spec.name);
    let mut producer_actions = Vec::new();
    let mut consumers = Vec::new();
    for (ci, ch) in spec.channels.iter().enumerate() {
        let DeviceKind::Fifo {
            capacity,
            drain_period,
        } = spec.regions[ch.region].kind
        else {
            unreachable!("validated: channel regions are fifos");
        };
        // One message per iteration; buffering mirrors how many whole
        // messages the FIFO can hold.
        let depth = (capacity as u64 / ch.words).max(1) as usize;
        let channel = net.add_channel(format!("ch{ci}"), depth);
        if ch.compute > 0 {
            producer_actions.push(Action::Compute(ch.compute));
        }
        producer_actions.push(Action::Send {
            channel,
            bytes: ch.words * 4,
        });
        consumers.push((ci, channel, ch.words * drain_period, ch.hw_unit));
    }
    net.add_process(Process::new("producer", producer_actions).with_iterations(spec.iterations));
    let mut placement = vec![Resource::Software(0)];
    for (ci, channel, drain, hw_unit) in consumers {
        net.add_process(
            Process::new(
                format!("consumer{ci}"),
                vec![Action::Receive { channel }, Action::Compute(drain)],
            )
            .with_iterations(spec.iterations),
        );
        placement.push(Resource::Hardware(hw_unit));
    }
    let config = MessageConfig {
        hw_speedup: 1.0, // consumer Compute is already hardware time
        ..MessageConfig::default()
    };
    (net, Placement::from_assignment(placement), config)
}

fn realize_message(spec: &SystemSpec) -> Result<LevelRun, ConformError> {
    let (net, placement, config) = message_network(spec);
    let report = simulate(&net, &placement, &config)?;
    Ok(LevelRun {
        level: AbstractionLevel::Message,
        cycles: report.finish_time,
        per_channel_bytes: report.per_channel_bytes.clone(),
        irqs: None,
        digest: None,
        write_order: None,
        messages: Some(report.messages),
        kernel_events: report.events,
    })
}

/// Realizes `spec` at all four levels.
///
/// # Errors
///
/// Propagates assembler, bus, ISS, and message-kernel failures; a
/// failure *is* a conformance finding (the generator only emits specs
/// that pass [`SystemSpec::validate`]).
pub fn run_system(spec: &SystemSpec) -> Result<SystemRun, ConformError> {
    Ok(SystemRun {
        pin: realize_iss(spec, true)?,
        register: realize_iss(spec, false)?,
        driver: realize_driver(spec),
        message: realize_message(spec)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_ir::workload::sysgen::{random_system, SysConfig};

    #[test]
    fn default_system_runs_at_all_levels() {
        let spec = random_system(&SysConfig::default()).unwrap();
        let run = run_system(&spec).unwrap();
        for level in run.levels() {
            assert!(level.cycles > 0, "{:?}", level.level);
            assert!(level.kernel_events > 0, "{:?}", level.level);
        }
        assert!(
            run.pin.cycles >= run.register.cycles,
            "pin sees wait states"
        );
    }

    #[test]
    fn program_is_deterministic_and_assembles() {
        let spec = random_system(&SysConfig::default()).unwrap();
        let a = conformance_program(&spec);
        assert_eq!(a, conformance_program(&spec));
        assemble(&a).unwrap();
    }

    #[test]
    fn irq_checksum_reaches_the_digest() {
        // Two specs differing only in UART payload must digest
        // differently: the IRQ bytes are architected state.
        let spec = random_system(&SysConfig {
            max_irq_bytes: 6,
            seed: 11,
            ..SysConfig::default()
        })
        .unwrap();
        let Some(_) = uart_of(&spec) else {
            panic!("seed 11 wires a uart; regenerate the test seed");
        };
        let mut altered = spec.clone();
        for r in &mut altered.regions {
            if let DeviceKind::Uart { irq_rx } = &mut r.kind {
                irq_rx[0] ^= 0x7F;
            }
        }
        let a = run_system(&spec).unwrap();
        let b = run_system(&altered).unwrap();
        assert_ne!(a.pin.digest, b.pin.digest);
    }
}
