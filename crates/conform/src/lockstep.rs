//! ISS-vs-RTL-CPU lockstep: per-retired-instruction architectural-state
//! comparison between a register-level CR32 and a pin-accurate one.
//!
//! Both simulators execute the *same* randomly generated, timing-closed,
//! straight-line program (no branches, no reads of timing-dependent
//! device registers), so every retired instruction must leave identical
//! architectural state — program counter, register file, halt flag — no
//! matter how differently the two model the bus.
//!
//! A checker that silently stops checking is worse than no checker, so
//! the harness carries a deliberate-fault [`self_test`]: it injects an
//! off-by-one into one register of one side mid-run and demands that the
//! checker *see* it. Running the self-test with checking disabled fails
//! loudly — that is the point.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use std::fmt::Write as _;

use codesign_isa::asm::assemble;
use codesign_isa::cpu::{Cpu, MMIO_BASE};
use codesign_isa::instr::{Reg, NUM_REGS};
use codesign_rtl::bus::{BusTiming, DrainFifo, Ram, SystemBus, Uart};
use codesign_sim::pinproto::PinPhy;

use crate::ConformError;

/// Memory-map layout shared by both lockstep CPUs.
const FIFO_BASE: u32 = 0x000;
const RAM_BASE: u32 = 0x100;
const UART_BASE: u32 = 0x200;
const REGION_SIZE: u32 = 0x100;

/// One lockstep run's parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockstepConfig {
    /// Seed for the random straight-line program.
    pub seed: u64,
    /// Number of random body instructions to generate.
    pub instructions: u32,
    /// Whether the per-instruction comparison is performed. Disabling
    /// it exists *only* so [`self_test`] can prove the comparison
    /// matters; the sweep never disables it.
    pub enabled: bool,
    /// Inject an off-by-one into `r3` of the pin-level CPU after this
    /// many retired instructions (the self-test's deliberate fault).
    pub fault_after: Option<u64>,
}

impl Default for LockstepConfig {
    fn default() -> Self {
        LockstepConfig {
            seed: 0xC0DE,
            instructions: 200,
            enabled: true,
            fault_after: None,
        }
    }
}

/// The verdict of one lockstep run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockstepOutcome {
    /// Every retired instruction left identical architectural state.
    Agreed {
        /// Instructions retired by both CPUs.
        instructions: u64,
    },
    /// The two CPUs disagreed.
    Diverged {
        /// 1-based index of the first disagreeing retirement.
        instruction: u64,
        /// What differed.
        detail: String,
    },
}

/// Generates the random timing-closed straight-line program.
///
/// Timing closure means: every operation's architectural effect is
/// independent of bus wait states — ALU ops, internal loads/stores,
/// RAM reads/writes over the bus, *blind* FIFO pushes (capacity covers
/// every push, so none is rejected), and UART transmits. Nothing reads
/// a timing-dependent register (FIFO count, UART status), and there are
/// no branches, so both CPUs retire the same instruction stream.
/// Returns the program text and the number of FIFO pushes it performs.
#[must_use]
pub fn lockstep_program(seed: u64, instructions: u32) -> (String, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = String::new();
    let _ = writeln!(s, "    li r13, {}", MMIO_BASE + u64::from(FIFO_BASE));
    let _ = writeln!(s, "    li r14, {}", MMIO_BASE + u64::from(RAM_BASE));
    let _ = writeln!(s, "    li r15, {}", MMIO_BASE + u64::from(UART_BASE));
    for r in 1..=7u8 {
        let _ = writeln!(s, "    li r{r}, {}", rng.gen_range(1..=1000));
    }
    let reg = |rng: &mut StdRng| rng.gen_range(1..=7u8);
    const ALU: [&str; 8] = ["add", "sub", "xor", "and", "or", "mul", "min", "max"];
    let mut pushes = 0usize;
    for _ in 0..instructions {
        match rng.gen_range(0..9u8) {
            0 => {
                let op = ALU[rng.gen_range(0..ALU.len())];
                let _ = writeln!(
                    s,
                    "    {op} r{}, r{}, r{}",
                    reg(&mut rng),
                    reg(&mut rng),
                    reg(&mut rng)
                );
            }
            1 => {
                let _ = writeln!(
                    s,
                    "    addi r{}, r{}, {}",
                    reg(&mut rng),
                    reg(&mut rng),
                    rng.gen_range(-64..=64)
                );
            }
            2 => {
                let _ = writeln!(
                    s,
                    "    li r{}, {}",
                    reg(&mut rng),
                    rng.gen_range(0..=100_000)
                );
            }
            3 => {
                let _ = writeln!(
                    s,
                    "    sd r{}, r0, {}",
                    reg(&mut rng),
                    rng.gen_range(0..64u32) * 8
                );
            }
            4 => {
                let _ = writeln!(
                    s,
                    "    ld r{}, r0, {}",
                    reg(&mut rng),
                    rng.gen_range(0..64u32) * 8
                );
            }
            5 => {
                let _ = writeln!(
                    s,
                    "    sw r{}, r14, {}",
                    reg(&mut rng),
                    rng.gen_range(0..32u32) * 4
                );
            }
            6 => {
                let _ = writeln!(
                    s,
                    "    lw r{}, r14, {}",
                    reg(&mut rng),
                    rng.gen_range(0..32u32) * 4
                );
            }
            7 => {
                let _ = writeln!(s, "    sw r{}, r13, 0", reg(&mut rng));
                pushes += 1;
            }
            _ => {
                let _ = writeln!(s, "    sw r{}, r15, 0", reg(&mut rng));
            }
        }
    }
    s.push_str("    halt\n");
    (s, pushes)
}

/// Builds one lockstep CPU; `pin_level` installs the gate-level phy.
fn build_cpu(program_text: &str, pushes: usize, pin_level: bool) -> Result<Cpu, ConformError> {
    let mut bus = SystemBus::new(BusTiming::default());
    // Capacity covers every push and the drain is glacial, so no push
    // is ever rejected and occupancy never feeds back into execution.
    bus.map(
        FIFO_BASE,
        REGION_SIZE,
        Box::new(DrainFifo::new(pushes.max(1), 1 << 20)),
    )?;
    bus.map(
        RAM_BASE,
        REGION_SIZE,
        Box::new(Ram::new("lockstep", REGION_SIZE)),
    )?;
    bus.map(UART_BASE, REGION_SIZE, Box::new(Uart::new()))?;
    if pin_level {
        let regions = [
            (FIFO_BASE, REGION_SIZE),
            (RAM_BASE, REGION_SIZE),
            (UART_BASE, REGION_SIZE),
        ];
        bus.set_phy(Box::new(PinPhy::new(&regions)?));
    }
    let mut cpu = Cpu::new(1024);
    cpu.attach_bus(bus);
    cpu.load_program(&assemble(program_text)?);
    Ok(cpu)
}

/// Compares architectural state; `Some(detail)` on the first mismatch.
fn compare(a: &Cpu, b: &Cpu) -> Option<String> {
    if a.pc() != b.pc() {
        return Some(format!(
            "pc: register-level {} vs pin-level {}",
            a.pc(),
            b.pc()
        ));
    }
    if a.halted() != b.halted() {
        return Some(format!(
            "halt flag: register-level {} vs pin-level {}",
            a.halted(),
            b.halted()
        ));
    }
    let (ra, rb) = (a.regs(), b.regs());
    for i in 0..NUM_REGS {
        if ra[i] != rb[i] {
            return Some(format!(
                "r{i}: register-level {} vs pin-level {}",
                ra[i], rb[i]
            ));
        }
    }
    None
}

/// Runs the two CPUs in lockstep.
///
/// # Errors
///
/// Propagates ISS/bus faults; the generated program is fault-free by
/// construction, so any error is itself a finding.
pub fn run_lockstep(cfg: &LockstepConfig) -> Result<LockstepOutcome, ConformError> {
    let (text, pushes) = lockstep_program(cfg.seed, cfg.instructions);
    let mut register_cpu = build_cpu(&text, pushes, false)?;
    let mut pin_cpu = build_cpu(&text, pushes, true)?;

    let mut retired = 0u64;
    loop {
        let more_a = register_cpu.step()?;
        let more_b = pin_cpu.step()?;
        retired += 1;
        if cfg.fault_after == Some(retired) {
            let r3 = Reg::new(3);
            pin_cpu.set_reg(r3, pin_cpu.reg(r3).wrapping_add(1));
        }
        if cfg.enabled {
            if let Some(detail) = compare(&register_cpu, &pin_cpu) {
                return Ok(LockstepOutcome::Diverged {
                    instruction: retired,
                    detail,
                });
            }
        }
        if !more_a || !more_b {
            return Ok(LockstepOutcome::Agreed {
                instructions: retired,
            });
        }
    }
}

/// Proves the lockstep comparison actually fires: injects an off-by-one
/// into the pin-level CPU's `r3` after 20 retired instructions and
/// demands a divergence report.
///
/// # Errors
///
/// Returns [`ConformError::SelfTest`] — loudly — when the checker fails
/// to see the injected fault. Calling with `enabled = false` *always*
/// fails: a disabled checker cannot certify anything.
pub fn self_test(enabled: bool) -> Result<(), ConformError> {
    let cfg = LockstepConfig {
        seed: 0x10C2_57E9,
        instructions: 120,
        enabled,
        fault_after: Some(20),
    };
    match run_lockstep(&cfg)? {
        LockstepOutcome::Diverged { instruction, .. } if enabled && instruction >= 20 => Ok(()),
        outcome => Err(ConformError::SelfTest {
            detail: format!(
                "injected an off-by-one into r3 after 20 retired instructions, \
                 but the checker (enabled={enabled}) reported {outcome:?}; \
                 every lockstep verdict is untrustworthy until this passes"
            ),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_runs_agree_across_seeds() {
        for seed in 0..8u64 {
            let cfg = LockstepConfig {
                seed,
                ..LockstepConfig::default()
            };
            match run_lockstep(&cfg).unwrap() {
                LockstepOutcome::Agreed { instructions } => {
                    assert!(instructions > u64::from(cfg.instructions))
                }
                LockstepOutcome::Diverged {
                    instruction,
                    detail,
                } => {
                    panic!("seed {seed} diverged at {instruction}: {detail}")
                }
            }
        }
    }

    #[test]
    fn self_test_detects_the_injected_fault() {
        self_test(true).unwrap();
    }

    #[test]
    fn self_test_fails_loudly_when_checking_is_disabled() {
        let err = self_test(false).unwrap_err();
        assert!(matches!(err, ConformError::SelfTest { .. }));
        assert!(err.to_string().contains("FAILED"), "{err}");
    }

    #[test]
    fn program_generation_is_deterministic() {
        assert_eq!(lockstep_program(7, 50), lockstep_program(7, 50));
        assert_ne!(lockstep_program(7, 50).0, lockstep_program(8, 50).0);
    }
}
