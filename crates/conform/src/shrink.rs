//! Shrinks a failing generator configuration to a minimal reproduction.
//!
//! The generator's knobs were designed so that lowering any of them only
//! removes behavior (fewer channels, fewer iterations, smaller messages
//! …), which makes a failing [`SysConfig`] shrinkable by per-knob binary
//! search: for each knob, find the smallest value in `[floor, current]`
//! at which the failure predicate still fires, re-verifying every
//! candidate because failures need not be monotone in any single knob.
//! Passes repeat until a whole pass changes nothing (fixpoint), bounded
//! by [`MAX_PASSES`].

use codesign_ir::workload::sysgen::SysConfig;

/// Upper bound on shrink passes; each pass walks all eight knobs, and a
/// fixpoint is almost always reached in two.
pub const MAX_PASSES: usize = 4;

/// One shrinkable knob: name, floor, getter, setter.
type Knob = (
    &'static str,
    u64,
    fn(&SysConfig) -> u64,
    fn(&mut SysConfig, u64),
);

/// Fixed shrink order: structure first (channels, iterations), then
/// per-channel magnitudes, then decoys and IRQ wiring.
const KNOBS: [Knob; 8] = [
    (
        "channels",
        1,
        |c| c.channels as u64,
        |c, v| {
            c.channels = v as usize;
        },
    ),
    (
        "iterations",
        1,
        |c| u64::from(c.iterations),
        |c, v| {
            c.iterations = v as u32;
        },
    ),
    (
        "max_message_words",
        1,
        |c| c.max_message_words,
        |c, v| {
            c.max_message_words = v;
        },
    ),
    (
        "max_compute",
        0,
        |c| c.max_compute,
        |c, v| {
            c.max_compute = v;
        },
    ),
    (
        "max_fifo_capacity",
        1,
        |c| c.max_fifo_capacity as u64,
        |c, v| {
            c.max_fifo_capacity = v as usize;
        },
    ),
    (
        "max_drain_period",
        1,
        |c| c.max_drain_period,
        |c, v| {
            c.max_drain_period = v;
        },
    ),
    (
        "extra_devices",
        0,
        |c| c.extra_devices as u64,
        |c, v| {
            c.extra_devices = v as usize;
        },
    ),
    (
        "max_irq_bytes",
        0,
        |c| u64::from(c.max_irq_bytes),
        |c, v| {
            c.max_irq_bytes = v as u8;
        },
    ),
];

/// Shrinks `cfg` to a minimal configuration on which `fails` still
/// returns `true`. If `fails(cfg)` is already `false` the input is
/// returned unchanged — there is nothing to reproduce.
///
/// Every value the result commits to has been re-verified against the
/// predicate, so the returned configuration is guaranteed failing (when
/// the input was), never merely assumed.
#[must_use]
pub fn shrink(cfg: &SysConfig, fails: impl Fn(&SysConfig) -> bool) -> SysConfig {
    let mut best = cfg.clone();
    if !fails(&best) {
        return best;
    }
    for _ in 0..MAX_PASSES {
        let mut changed = false;
        for (_, floor, get, set) in KNOBS {
            let current = get(&best);
            if current <= floor {
                continue;
            }
            // Invariant: `hi` always fails. Bisect down to the lowest
            // failing value, re-running the predicate on every probe.
            let (mut lo, mut hi) = (floor, current);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                let mut candidate = best.clone();
                set(&mut candidate, mid);
                if fails(&candidate) {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            if hi < current {
                set(&mut best, hi);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_exact_threshold() {
        // Fails iff channels >= 2 and iterations >= 3: the minimum is
        // exactly (2, 3) with every other knob at its floor.
        let cfg = SysConfig::default();
        let min = shrink(&cfg, |c| c.channels >= 2 && c.iterations >= 3);
        assert_eq!(min.channels, 2);
        assert_eq!(min.iterations, 3);
        assert_eq!(min.max_message_words, 1);
        assert_eq!(min.max_compute, 0);
        assert_eq!(min.max_fifo_capacity, 1);
        assert_eq!(min.max_drain_period, 1);
        assert_eq!(min.extra_devices, 0);
        assert_eq!(min.max_irq_bytes, 0);
        assert!(min.validate().is_ok(), "shrunk config must stay valid");
    }

    #[test]
    fn passing_config_is_returned_unchanged() {
        let cfg = SysConfig::default();
        assert_eq!(shrink(&cfg, |_| false), cfg);
    }

    #[test]
    fn result_always_fails_the_predicate() {
        // A deliberately non-monotone predicate: fails on even values of
        // max_drain_period (and the original). The committed result must
        // itself fail, whatever path the bisection took.
        let cfg = SysConfig {
            max_drain_period: 12,
            ..SysConfig::default()
        };
        let fails = |c: &SysConfig| c.max_drain_period.is_multiple_of(2);
        let min = shrink(&cfg, fails);
        assert!(fails(&min), "shrink committed a passing config: {min:?}");
    }
}
