//! Property-based tests for the job server's hard contracts:
//!
//! 1. the retry/backoff schedule is a pure, bounded function of
//!    `(config, job key)` — deterministic across calls, never above
//!    the ceiling, exactly `max_attempts - 1` entries;
//! 2. the bounded queue never exceeds its bound and sheds **exactly**
//!    the excess, in agreement with a reference model, whatever the
//!    push/pop interleaving;
//! 3. drain during load loses no accepted job: every accepted job gets
//!    exactly one terminal reply (`ok`, `error`, or `draining`),
//!    whatever mix of panicking, flaky, and slow jobs is in flight when
//!    the drain lands.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::mpsc::channel;
use std::time::Duration;

use codesign_serve::{
    backoff_schedule, BoundedQueue, JobError, JobRunner, Priority, Request, RetryConfig, Server,
    ServerConfig, SubmitOutcome,
};
use codesign_trace::Tracer;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Contract 1: backoff schedules are deterministic and bounded.
    #[test]
    fn backoff_is_deterministic_and_bounded(
        max_attempts in 1u32..12,
        base in 1u64..50,
        max in 1u64..500,
        seed in 0u64..u64::MAX,
        key in 0u64..u64::MAX,
    ) {
        let cfg = RetryConfig { max_attempts, base_delay_ms: base, max_delay_ms: max, seed };
        let a = backoff_schedule(&cfg, key);
        let b = backoff_schedule(&cfg, key);
        prop_assert_eq!(&a, &b, "schedule must be a pure function of (config, key)");
        prop_assert_eq!(a.len(), (max_attempts - 1) as usize);
        for (i, d) in a.iter().enumerate() {
            prop_assert!(*d <= max, "retry {} delay {} exceeds ceiling {}", i, d, max);
        }
    }

    /// Contract 2: the queue honors its bound exactly, sheds exactly
    /// the excess, and dequeues in the same order as a reference model
    /// (three FIFOs scanned high→low).
    #[test]
    fn queue_matches_the_reference_model(
        cap in 1usize..12,
        ops in proptest::collection::vec((0u8..4, 0u32..1000), 1..120),
    ) {
        let mut queue = BoundedQueue::new(cap);
        let mut model: [VecDeque<u32>; 3] = Default::default();
        let mut shed = 0u32;
        let mut model_shed = 0u32;
        for (op, item) in ops {
            match op {
                // 0..=2: push at priority class `op`.
                0..=2 => {
                    let prio = [Priority::High, Priority::Normal, Priority::Low][op as usize];
                    if queue.push(item, prio).is_err() {
                        shed += 1;
                    }
                    if model.iter().map(VecDeque::len).sum::<usize>() >= cap {
                        model_shed += 1;
                    } else {
                        model[op as usize].push_back(item);
                    }
                }
                // 3: pop.
                _ => {
                    let got = queue.pop();
                    let want = model.iter_mut().find_map(VecDeque::pop_front);
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert!(queue.len() <= cap, "queue above bound");
            prop_assert_eq!(queue.len(), model.iter().map(VecDeque::len).sum::<usize>());
            prop_assert_eq!(shed, model_shed, "shed exactly the excess");
        }
    }
}

/// A runner whose behaviour is scripted by the request kind; used by
/// the drain property.
struct ChaosScript;

impl JobRunner for ChaosScript {
    fn run(&self, request: &Request, attempt: u32) -> Result<String, JobError> {
        match request.kind.as_str() {
            "ok" => Ok("done".to_string()),
            "slow" => {
                std::thread::sleep(Duration::from_millis(5));
                Ok("slow done".to_string())
            }
            "panic" => panic!("chaos panic"),
            "flaky" => {
                if attempt < 3 {
                    Err(JobError::transient("hardware_fault", "glitch"))
                } else {
                    Ok("healed".to_string())
                }
            }
            other => Err(JobError::permanent("unknown_kind", other)),
        }
    }
}

proptest! {
    // Each case spins up a real thread pool; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Contract 3: drain-during-load loses no accepted job. Submit a
    /// random mix, drain at a random point in the stream, then check
    /// replies == accepted + rejected-with-reason for every submission.
    #[test]
    fn drain_during_load_loses_no_accepted_job(
        kinds in proptest::collection::vec(0u8..4, 1..40),
        drain_at in 0usize..40,
        workers in 1usize..4,
        cap in 1usize..16,
    ) {
        let server = Server::new(
            ChaosScript,
            ServerConfig {
                workers,
                queue_capacity: cap,
                retry: RetryConfig {
                    max_attempts: 3,
                    base_delay_ms: 1,
                    max_delay_ms: 2,
                    seed: 11,
                },
                max_preemptions: 64,
            },
            &Tracer::off(),
        );
        let (tx, rx) = channel();
        let mut accepted = 0u64;
        let mut not_accepted = 0u64; // shed or rejected-while-draining
        for (i, k) in kinds.iter().enumerate() {
            if i == drain_at {
                server.drain();
            }
            let kind = ["ok", "slow", "panic", "flaky"][*k as usize];
            let req = Request {
                id: format!("p{i}"),
                kind: kind.to_string(),
                priority: [Priority::High, Priority::Normal, Priority::Low][i % 3],
                deadline_ms: None,
                chaos: None,
                params: BTreeMap::new(),
            };
            match server.submit(req, &tx) {
                SubmitOutcome::Accepted => accepted += 1,
                SubmitOutcome::Shed | SubmitOutcome::Draining => not_accepted += 1,
            }
        }
        let stats = server.shutdown();
        prop_assert_eq!(stats.accepted, accepted);
        // Exactly one terminal reply per accepted job...
        prop_assert_eq!(stats.terminal(), accepted, "stats: {:?}", stats);
        // ...and one rejection reply per non-accepted submission, so the
        // channel holds exactly one reply per submission overall.
        drop(tx);
        let replies: Vec<String> = rx.into_iter().collect();
        prop_assert_eq!(replies.len() as u64, accepted + not_accepted);
        // No reply id appears twice (no duplicated results).
        let mut ids: Vec<&str> = replies
            .iter()
            .map(|r| {
                let start = r.find("\"id\":\"").expect("id field") + 6;
                let end = r[start..].find('"').expect("close quote") + start;
                &r[start..end]
            })
            .collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), before, "duplicated reply ids");
    }
}
