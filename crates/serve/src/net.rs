//! Transports: line-oriented serving over stdin/stdout and TCP.
//!
//! Both transports speak the same protocol and share one dispatch
//! routine: each input line is parsed, `stats`/`shutdown` are handled
//! at the transport layer, and everything else is submitted to the
//! server. Replies stream back in completion order through a per-client
//! channel drained by a dedicated writer, so slow jobs never block the
//! reader and a client can keep many jobs in flight on one connection.
//!
//! A malformed line yields one `status:"error"` reply and the
//! connection lives on — chaos clients deliberately interleave garbage
//! with real jobs to prove exactly that.
//!
//! `shutdown` is the graceful-drain trigger for both transports (the
//! workspace vendors no signal-handling crate, so SIGTERM cannot be
//! hooked without `unsafe` libc bindings; EOF on stdin drains too,
//! covering driver scripts that just close the pipe).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::time::Duration;

use crate::protocol::{escape, parse_request, reply_error};
use crate::server::{Handle, JobRunner, Server, StatsSnapshot};

/// What a dispatched line asked for.
enum Dispatch {
    /// Submitted (or rejected with a reply) — keep reading.
    Continue,
    /// A `shutdown` request: drain and stop. Carries the request id so
    /// the final stats reply can be addressed.
    Shutdown { id: String },
}

/// The stats reply: final or in-flight counters addressed to `id`.
fn reply_stats(id: &str, stats: &StatsSnapshot) -> String {
    format!(
        "{{\"id\":\"{}\",\"status\":\"stats\",\"stats\":{}}}",
        escape(id),
        stats.to_json()
    )
}

fn dispatch_line<R: JobRunner>(line: &str, handle: &Handle<R>, tx: &Sender<String>) -> Dispatch {
    let line = line.trim();
    if line.is_empty() {
        return Dispatch::Continue;
    }
    match parse_request(line) {
        Err(e) => {
            // One typed error per bad line; the connection survives.
            let _ = tx.send(reply_error(None, e.code(), &e.to_string()));
            Dispatch::Continue
        }
        Ok(req) => match req.kind.as_str() {
            "stats" => {
                let _ = tx.send(reply_stats(&req.id, &handle.stats()));
                Dispatch::Continue
            }
            "wait" => {
                // Barrier: block reading until every job accepted so far
                // has resolved, then report. Lets a batch script collect
                // all results before a strict `shutdown`.
                handle.await_quiescence();
                let _ = tx.send(reply_stats(&req.id, &handle.stats()));
                Dispatch::Continue
            }
            "shutdown" => Dispatch::Shutdown { id: req.id },
            _ => {
                handle.submit(req, tx);
                Dispatch::Continue
            }
        },
    }
}

/// Serves line requests from `input`, writing replies to `output`, until
/// EOF or a `shutdown` request; then drains gracefully and (for
/// `shutdown`) emits a final `stats` reply. Returns the final counters.
///
/// This is the `--stdio` transport and the unit-testable core of the
/// TCP one.
pub fn serve_lines<R: JobRunner>(
    server: Server<R>,
    input: impl BufRead,
    mut output: impl Write,
) -> std::io::Result<StatsSnapshot> {
    let handle = server.handle();
    let (tx, rx) = channel::<String>();
    // The writer thread decouples job completion from the read loop.
    let writer = std::thread::spawn(move || -> Vec<String> {
        // Replies are collected and the caller writes them: keeps the
        // output handle un-shared. (Bounded by the job count.)
        rx.into_iter().collect()
    });
    let mut shutdown_id = None;
    for line in input.lines() {
        let line = line?;
        match dispatch_line(&line, &handle, &tx) {
            Dispatch::Continue => {}
            Dispatch::Shutdown { id } => {
                shutdown_id = Some(id);
                break;
            }
        }
    }
    if shutdown_id.is_none() {
        // EOF without an explicit shutdown: the script closed the pipe
        // and expects its results — finish accepted work, then stop.
        // (`shutdown` is the strict drain: queued jobs are flushed.)
        handle.await_quiescence();
    }
    let stats = server.shutdown();
    if let Some(id) = shutdown_id {
        let _ = tx.send(reply_stats(&id, &stats));
    }
    drop(tx);
    for reply in writer.join().expect("reply writer panicked") {
        writeln!(output, "{reply}")?;
    }
    output.flush()?;
    Ok(stats)
}

/// Streaming variant of [`serve_lines`] used by the TCP transport: the
/// writer thread owns the output and flushes each reply as it lands.
fn connection_loop<R: JobRunner>(
    stream: &TcpStream,
    handle: &Handle<R>,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let write_half = stream.try_clone()?;
    let (tx, rx) = channel::<String>();
    let writer = std::thread::spawn(move || {
        let mut out = std::io::BufWriter::new(write_half);
        for reply in rx {
            if writeln!(out, "{reply}").and_then(|()| out.flush()).is_err() {
                return; // client went away; pending sends are dropped
            }
        }
    });
    // A read timeout keeps idle connections from pinning the acceptor
    // open past shutdown.
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    let mut lines = reader;
    let mut buf = String::new();
    loop {
        match lines.read_line(&mut buf) {
            Ok(0) => break, // EOF: client closed its half
            Ok(_) => {
                match dispatch_line(&buf, handle, &tx) {
                    Dispatch::Continue => {}
                    Dispatch::Shutdown { id } => {
                        // Graceful drain: stop admissions, flush the
                        // queue, let in-flight work finish, then report
                        // and stop.
                        handle.drain();
                        handle.await_quiescence();
                        let _ = tx.send(reply_stats(&id, &handle.stats()));
                        stop.store(true, Ordering::SeqCst);
                        break;
                    }
                }
                buf.clear();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // A timeout can fire mid-line, with the line's head
                // already appended to `buf`; keep it — the next
                // `read_line` call appends the tail. Clearing here
                // would split one request into two garbage lines and
                // orphan the client's job.
                if stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    drop(tx);
    let _ = writer.join();
    Ok(())
}

/// Serves the job protocol on `listener` until some connection sends
/// `shutdown`. Each connection gets its own reader thread and reply
/// writer; all of them share one server (and therefore one queue, one
/// worker pool, one eval-cache tenant store). Returns the final
/// counters after the drain completes and every connection thread
/// exits.
pub fn serve_tcp<R: JobRunner>(
    server: Server<R>,
    listener: TcpListener,
) -> std::io::Result<StatsSnapshot> {
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let mut connections = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let handle = server.handle();
                let stop = Arc::clone(&stop);
                connections.push(std::thread::spawn(move || {
                    let _ = connection_loop(&stream, &handle, &stop);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
    }
    for c in connections {
        let _ = c.join();
    }
    Ok(server.shutdown())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Request;
    use crate::server::{JobError, ServerConfig};
    use codesign_trace::Tracer;
    use std::io::Cursor;

    struct EchoRunner;

    impl JobRunner for EchoRunner {
        fn run(&self, request: &Request, _attempt: u32) -> Result<String, JobError> {
            match request.kind.as_str() {
                "echo" => Ok(format!("echo:{}", request.id)),
                other => Err(JobError::permanent("unknown_kind", other)),
            }
        }
    }

    fn output_lines(bytes: &[u8]) -> Vec<String> {
        String::from_utf8(bytes.to_vec())
            .unwrap()
            .lines()
            .map(ToString::to_string)
            .collect()
    }

    #[test]
    fn stdio_round_trip_with_garbage_and_shutdown() {
        let server = Server::new(EchoRunner, ServerConfig::default(), &Tracer::off());
        let input = "\
{\"id\":\"a\",\"kind\":\"echo\"}\n\
this is not json\n\
{\"id\":\"b\",\"kind\":\"nope\"}\n\
{\"id\":\"s\",\"kind\":\"wait\"}\n\
{\"id\":\"z\",\"kind\":\"shutdown\"}\n";
        let mut out = Vec::new();
        let stats = serve_lines(server, Cursor::new(input), &mut out).unwrap();
        let lines = output_lines(&out);
        assert!(lines.iter().any(|l| l.contains("echo:a")), "{lines:?}");
        assert!(
            lines.iter().any(|l| l.contains("\"code\":\"bad_json\"")),
            "{lines:?}"
        );
        assert!(
            lines
                .iter()
                .any(|l| l.contains("\"code\":\"unknown_kind\"")),
            "{lines:?}"
        );
        assert!(
            lines
                .iter()
                .any(|l| l.contains("\"id\":\"s\",\"status\":\"stats\"")),
            "{lines:?}"
        );
        // The shutdown reply carries the final counters.
        assert!(
            lines
                .iter()
                .any(|l| l.contains("\"id\":\"z\",\"status\":\"stats\"")),
            "{lines:?}"
        );
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.ok, 1);
        assert_eq!(stats.failed, 1);
    }

    #[test]
    fn eof_without_shutdown_still_drains() {
        let server = Server::new(EchoRunner, ServerConfig::default(), &Tracer::off());
        let input = "{\"id\":\"only\",\"kind\":\"echo\"}\n";
        let mut out = Vec::new();
        let stats = serve_lines(server, Cursor::new(input), &mut out).unwrap();
        assert_eq!(stats.ok, 1);
        assert_eq!(stats.terminal(), stats.accepted);
    }

    #[test]
    fn a_line_split_across_the_read_timeout_is_reassembled() {
        // The connection reader's 200ms read timeout can fire while a
        // request line is only partially received. The partial head
        // must survive the timeout and join its tail — not be dropped
        // (orphaning the job) or dispatched as garbage.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = Server::new(EchoRunner, ServerConfig::default(), &Tracer::off());
        let acceptor = std::thread::spawn(move || serve_tcp(server, listener).unwrap());

        let mut s = TcpStream::connect(addr).unwrap();
        s.set_nodelay(true).unwrap();
        s.write_all(b"{\"id\":\"sp").unwrap();
        s.flush().unwrap();
        // Two full timeout windows: the reader definitely sees
        // WouldBlock with the head already buffered.
        std::thread::sleep(Duration::from_millis(500));
        s.write_all(b"lit\",\"kind\":\"echo\"}\n").unwrap();
        s.flush().unwrap();
        let mut r = BufReader::new(s.try_clone().unwrap());
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert!(line.contains("echo:split"), "{line}");

        let mut s = TcpStream::connect(addr).unwrap();
        writeln!(s, "{{\"id\":\"down\",\"kind\":\"shutdown\"}}").unwrap();
        let stats = acceptor.join().unwrap();
        assert_eq!(stats.ok, 1);
        assert_eq!(stats.terminal(), stats.accepted);
    }

    #[test]
    fn tcp_serves_multiple_clients_and_shuts_down() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = Server::new(EchoRunner, ServerConfig::default(), &Tracer::off());
        let acceptor = std::thread::spawn(move || serve_tcp(server, listener).unwrap());

        let client = |id: &str| -> Vec<String> {
            let mut s = TcpStream::connect(addr).unwrap();
            writeln!(s, "{{\"id\":\"{id}\",\"kind\":\"echo\"}}").unwrap();
            let mut r = BufReader::new(s.try_clone().unwrap());
            let mut line = String::new();
            r.read_line(&mut line).unwrap();
            vec![line.trim().to_string()]
        };
        let a = client("c1");
        let b = client("c2");
        assert!(a[0].contains("echo:c1"), "{a:?}");
        assert!(b[0].contains("echo:c2"), "{b:?}");

        let mut s = TcpStream::connect(addr).unwrap();
        writeln!(s, "{{\"id\":\"down\",\"kind\":\"shutdown\"}}").unwrap();
        let mut r = BufReader::new(s.try_clone().unwrap());
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert!(line.contains("\"status\":\"stats\""), "{line}");

        let stats = acceptor.join().unwrap();
        assert_eq!(stats.ok, 2);
        assert_eq!(stats.terminal(), stats.accepted);
    }
}
