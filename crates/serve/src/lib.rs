//! # codesign-serve
//!
//! Co-simulation as a service: the transport- and policy-hardened core
//! of the `codesign serve` job server.
//!
//! Adams & Thomas frame co-design as an iterative loop — partition,
//! co-simulate, evaluate, repeat — and in practice that loop is run by
//! *teams* against shared compute: many tenants submitting partition,
//! exploration, co-simulation, fault-campaign, and conformance jobs
//! against one warm evaluation cache. This crate provides the serving
//! substrate those workloads need to share a process safely:
//!
//! * a **line-oriented JSON protocol** ([`protocol`]) where malformed
//!   input becomes a typed, machine-readable error reply — never a
//!   panic, never a dropped connection;
//! * a **bounded three-class priority queue** ([`queue`]) whose
//!   admission bound is the backpressure signal: overload sheds
//!   explicitly with `overloaded` replies, never silently;
//! * **seeded, bounded retry backoff** ([`retry`]) for failures the
//!   fault taxonomy classifies as transient — deterministic schedules,
//!   replayable chaos campaigns;
//! * a **panic-isolated worker pool** ([`server`]) with per-job
//!   queue-wait deadlines, graceful drain (in-flight jobs finish,
//!   queued jobs are flushed with `draining` replies, every accepted
//!   job gets exactly one terminal reply), and honest counters;
//! * **stdin and TCP transports** ([`net`]) sharing one dispatch path.
//!
//! The crate is deliberately generic over a [`server::JobRunner`]: the
//! concrete job registry (which knows how to run a co-simulation and
//! render it byte-identically to the CLI) lives in the `codesign` core
//! crate, which depends on this one — not the other way around.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod net;
pub mod protocol;
pub mod queue;
pub mod retry;
pub mod server;

pub use net::{serve_lines, serve_tcp};
pub use protocol::{parse_request, Priority, Request, RequestError, Value};
pub use queue::BoundedQueue;
pub use retry::{backoff_delay, backoff_schedule, job_key, RetryConfig};
pub use server::{
    Handle, JobError, JobRunner, RunOutcome, Server, ServerConfig, StatsSnapshot, SubmitOutcome,
};
