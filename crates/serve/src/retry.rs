//! Seeded, bounded exponential backoff for transient job failures.
//!
//! Retry is reserved for failures classified *transient* by the fault
//! taxonomy (`codesign-fault`'s `retryable`: hardware faults model
//! recoverable bus glitches; everything else is a deterministic
//! property of the run and would only recur). The schedule is a pure
//! function of `(config, job key)` — deterministic jitter comes from a
//! splitmix64 stream, never a wall clock — so a chaos campaign replays
//! bit-identically and a property test can pin the bounds.

/// Retry policy for transient job failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// Total attempts including the first (1 = never retry).
    pub max_attempts: u32,
    /// Delay before the first retry, milliseconds.
    pub base_delay_ms: u64,
    /// Hard ceiling on any single delay, milliseconds.
    pub max_delay_ms: u64,
    /// Server-level seed folded into every job's jitter stream.
    pub seed: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_attempts: 3,
            base_delay_ms: 5,
            max_delay_ms: 100,
            seed: 0x5EED,
        }
    }
}

/// The finalizer of splitmix64 — the workspace's standard seed spreader.
#[must_use]
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a job id — the per-job key the jitter stream is split by.
#[must_use]
pub fn job_key(id: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in id.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The delay in milliseconds before retry number `retry` (0-based: the
/// delay between the first failure and the second attempt is
/// `backoff_delay(cfg, key, 0)`). Exponential in `retry` with ±0..50%
/// deterministic jitter, clamped to `max_delay_ms`.
#[must_use]
pub fn backoff_delay(cfg: &RetryConfig, key: u64, retry: u32) -> u64 {
    let exp = cfg
        .base_delay_ms
        .saturating_mul(1u64.checked_shl(retry).unwrap_or(u64::MAX))
        .min(cfg.max_delay_ms);
    let jitter_span = exp / 2;
    if jitter_span == 0 {
        return exp;
    }
    let jitter = splitmix64(cfg.seed ^ key ^ (u64::from(retry) << 32)) % (jitter_span + 1);
    (exp + jitter).min(cfg.max_delay_ms)
}

/// The whole schedule: one delay per permitted retry
/// (`max_attempts - 1` entries).
#[must_use]
pub fn backoff_schedule(cfg: &RetryConfig, key: u64) -> Vec<u64> {
    (0..cfg.max_attempts.saturating_sub(1))
        .map(|r| backoff_delay(cfg, key, r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_sized() {
        let cfg = RetryConfig::default();
        let a = backoff_schedule(&cfg, job_key("job-17"));
        assert_eq!(a, backoff_schedule(&cfg, job_key("job-17")));
        assert_eq!(a.len(), 2, "3 attempts = 2 retries");
        // A different job gets a different jitter stream (with these
        // constants the first delays differ; pinned to catch a seed
        // plumbing regression).
        assert_ne!(a, backoff_schedule(&cfg, job_key("job-18")));
    }

    #[test]
    fn delays_never_exceed_the_ceiling() {
        let cfg = RetryConfig {
            max_attempts: 12,
            base_delay_ms: 7,
            max_delay_ms: 50,
            seed: 9,
        };
        for (i, d) in backoff_schedule(&cfg, job_key("x")).iter().enumerate() {
            assert!(*d <= cfg.max_delay_ms, "retry {i}: {d}");
        }
    }

    #[test]
    fn one_attempt_means_no_retries() {
        let cfg = RetryConfig {
            max_attempts: 1,
            ..RetryConfig::default()
        };
        assert!(backoff_schedule(&cfg, 0).is_empty());
    }

    #[test]
    fn huge_retry_index_saturates_instead_of_overflowing() {
        let cfg = RetryConfig {
            max_attempts: 80,
            base_delay_ms: 3,
            max_delay_ms: 40,
            seed: 1,
        };
        assert!(backoff_delay(&cfg, 5, 70) <= 40);
    }
}
