//! The line-oriented JSON job protocol.
//!
//! Every request is **one line**: a flat JSON object with scalar values
//! only. Two fields are mandatory — `id` (any string, echoed on every
//! reply) and `kind` (which job to run) — and three are interpreted by
//! the server itself: `priority` (`"high"`/`"normal"`/`"low"`, default
//! normal), `deadline_ms` (wall-clock queue-wait budget), and `chaos`
//! (fault-injection directive for chaos testing). Everything else is
//! passed through to the [`JobRunner`](crate::server::JobRunner)
//! untouched.
//!
//! Every reply is also one line, and **every accepted job gets exactly
//! one terminal reply**:
//!
//! ```text
//! {"id":"j1","status":"ok","attempts":1,"result":"<escaped JSON report>"}
//! {"id":"j2","status":"error","code":"watchdog","message":"..."}
//! {"id":"j3","status":"shed","code":"overloaded","message":"..."}
//! {"id":"j4","status":"draining","code":"draining","message":"..."}
//! ```
//!
//! The `result` field is the *exact* byte string the equivalent CLI
//! invocation would print, JSON-escaped — which is what makes
//! served-vs-direct byte-identity checkable at all.
//!
//! Malformed input never panics and never kills the connection: each
//! bad line yields one `status:"error"` reply with a stable
//! machine-readable code from [`RequestError::code`], and the reader
//! moves on to the next line.

use std::collections::BTreeMap;
use std::fmt;

/// A scalar JSON value — the only value shape requests may carry.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A (fully unescaped) string.
    Str(String),
    /// An integer (no decimal point or exponent in the source).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
}

impl Value {
    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Job priority: three classes, strict precedence at dequeue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Served before everything else.
    High = 0,
    /// The default class.
    Normal = 1,
    /// Served only when nothing else waits.
    Low = 2,
}

impl Priority {
    /// All classes, highest first (dequeue order).
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    /// The wire label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Parses a wire label.
    #[must_use]
    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "low" => Some(Priority::Low),
            _ => None,
        }
    }
}

/// One parsed job request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen id, echoed verbatim on the reply.
    pub id: String,
    /// Which job to run (`"cosim"`, `"explore"`, ... — the runner's
    /// registry decides what exists).
    pub kind: String,
    /// Queue class.
    pub priority: Priority,
    /// Wall-clock budget for *queue wait*, in milliseconds. A job still
    /// queued past its deadline is failed with code `deadline`, never
    /// run. `None` = wait forever.
    pub deadline_ms: Option<u64>,
    /// Chaos directive (`"panic"`, `"stall"`, `"transient:K"`) — honored
    /// by runners built for chaos testing, rejected by none.
    pub chaos: Option<String>,
    /// Every remaining field, passed through to the runner.
    pub params: BTreeMap<String, Value>,
}

/// Why a request line was rejected. [`RequestError::code`] is the
/// stable wire identity of each case; tests pin the codes.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestError {
    /// The line is not syntactically valid JSON.
    BadJson {
        /// What the parser choked on.
        detail: String,
    },
    /// The line parsed but is not a JSON object.
    NotObject,
    /// A value was an array or nested object (the protocol is flat).
    UnsupportedValue {
        /// The offending key.
        key: String,
    },
    /// A mandatory field (`id`, `kind`) is absent.
    MissingField {
        /// The absent field.
        field: &'static str,
    },
    /// A server-interpreted field has the wrong type or range.
    BadField {
        /// The offending field.
        field: String,
        /// What was wrong with it.
        detail: String,
    },
    /// `priority` is not `high`/`normal`/`low`.
    BadPriority {
        /// The value that was sent.
        got: String,
    },
}

impl RequestError {
    /// The stable machine-readable code sent in the error reply.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            RequestError::BadJson { .. } => "bad_json",
            RequestError::NotObject => "not_object",
            RequestError::UnsupportedValue { .. } => "unsupported_value",
            RequestError::MissingField { .. } => "missing_field",
            RequestError::BadField { .. } => "bad_field",
            RequestError::BadPriority { .. } => "bad_priority",
        }
    }
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::BadJson { detail } => write!(f, "malformed JSON: {detail}"),
            RequestError::NotObject => write!(f, "request must be a JSON object"),
            RequestError::UnsupportedValue { key } => {
                write!(f, "field `{key}` is an array or object; requests are flat")
            }
            RequestError::MissingField { field } => {
                write!(f, "missing required field `{field}`")
            }
            RequestError::BadField { field, detail } => {
                write!(f, "bad field `{field}`: {detail}")
            }
            RequestError::BadPriority { got } => {
                write!(f, "bad priority `{got}` (high|normal|low)")
            }
        }
    }
}

impl std::error::Error for RequestError {}

/// Escapes a string for embedding in a JSON string literal.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, what: impl Into<String>) -> RequestError {
        RequestError::BadJson {
            detail: format!("{} at byte {}", what.into(), self.pos),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\r' || b == b'\n' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), RequestError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn parse_string(&mut self) -> Result<String, RequestError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are rejected, not paired: the
                            // protocol's payloads are reports this
                            // workspace rendered, all BMP-or-escaped.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(self.err(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the whole character.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_scalar(&mut self, key: &str) -> Result<Value, RequestError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'{' | b'[') => Err(RequestError::UnsupportedValue {
                key: key.to_string(),
            }),
            Some(b't') => self.parse_word("true", Value::Bool(true)),
            Some(b'f') => self.parse_word("false", Value::Bool(false)),
            Some(b'n') => self.parse_word("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.err(format!("unexpected `{}`", other as char))),
            None => Err(self.err("unexpected end of line")),
        }
    }

    fn parse_word(&mut self, word: &str, value: Value) -> Result<Value, RequestError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, RequestError> {
        let start = self.pos;
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err(format!("bad number `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err(format!("bad number `{text}`")))
        }
    }

    /// Parses the whole line as a flat object.
    fn parse_object(&mut self) -> Result<BTreeMap<String, Value>, RequestError> {
        self.skip_ws();
        if self.peek() != Some(b'{') {
            // Distinguish "valid JSON, wrong shape" (array/scalar →
            // `not_object`) from line noise (→ `bad_json`).
            return match self.peek() {
                Some(b'[') => Err(RequestError::NotObject),
                Some(_) => match self.parse_scalar("") {
                    Ok(_) if self.pos == self.bytes.len() => Err(RequestError::NotObject),
                    Ok(_) => Err(self.err("trailing characters")),
                    Err(RequestError::BadJson { detail }) => Err(RequestError::BadJson { detail }),
                    Err(_) => Err(RequestError::NotObject),
                },
                None => Err(self.err("empty line")),
            };
        }
        self.pos += 1;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
        } else {
            loop {
                self.skip_ws();
                let key = self.parse_string()?;
                self.skip_ws();
                self.expect(b':')?;
                let value = self.parse_scalar(&key)?;
                map.insert(key, value);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        break;
                    }
                    _ => return Err(self.err("expected `,` or `}`")),
                }
            }
        }
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after object"));
        }
        Ok(map)
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Parses one request line. Never panics, whatever the input.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let mut map = Parser::new(line).parse_object()?;
    let take_str = |map: &mut BTreeMap<String, Value>,
                    field: &'static str|
     -> Result<Option<String>, RequestError> {
        match map.remove(field) {
            None => Ok(None),
            Some(Value::Str(s)) => Ok(Some(s)),
            Some(other) => Err(RequestError::BadField {
                field: field.to_string(),
                detail: format!("expected a string, got {other:?}"),
            }),
        }
    };
    let id = take_str(&mut map, "id")?.ok_or(RequestError::MissingField { field: "id" })?;
    let kind = take_str(&mut map, "kind")?.ok_or(RequestError::MissingField { field: "kind" })?;
    let priority = match take_str(&mut map, "priority")? {
        None => Priority::Normal,
        Some(p) => Priority::parse(&p).ok_or(RequestError::BadPriority { got: p })?,
    };
    let deadline_ms = match map.remove("deadline_ms") {
        None | Some(Value::Null) => None,
        Some(Value::Int(n)) if n >= 0 => Some(n as u64),
        Some(other) => {
            return Err(RequestError::BadField {
                field: "deadline_ms".to_string(),
                detail: format!("expected a non-negative integer, got {other:?}"),
            })
        }
    };
    let chaos = take_str(&mut map, "chaos")?;
    Ok(Request {
        id,
        kind,
        priority,
        deadline_ms,
        chaos,
        params: map,
    })
}

// ---------------------------------------------------------------------
// Replies
// ---------------------------------------------------------------------

/// Renders the terminal `ok` reply. `result` is embedded as an escaped
/// JSON string so multi-line reports survive the line protocol, and
/// `attempts` says how many runs (1 = no retries) it took.
#[must_use]
pub fn reply_ok(id: &str, attempts: u32, result: &str) -> String {
    format!(
        "{{\"id\":\"{}\",\"status\":\"ok\",\"attempts\":{attempts},\"result\":\"{}\"}}",
        escape(id),
        escape(result)
    )
}

/// Renders a terminal `error` reply with a stable machine code.
#[must_use]
pub fn reply_error(id: Option<&str>, code: &str, message: &str) -> String {
    let id = match id {
        Some(id) => format!("\"{}\"", escape(id)),
        None => "null".to_string(),
    };
    format!(
        "{{\"id\":{id},\"status\":\"error\",\"code\":\"{}\",\"message\":\"{}\"}}",
        escape(code),
        escape(message)
    )
}

/// Renders the load-shed reply: the queue was full and the job was
/// **not** accepted. Explicit, never silent.
#[must_use]
pub fn reply_shed(id: &str, queued: usize, cap: usize) -> String {
    format!(
        "{{\"id\":\"{}\",\"status\":\"shed\",\"code\":\"overloaded\",\
         \"message\":\"queue full ({queued}/{cap}); resubmit later\"}}",
        escape(id)
    )
}

/// Renders the drain rejection: the server is shutting down. Sent both
/// for new submissions during drain and for queued-but-unstarted jobs
/// flushed by the drain itself.
#[must_use]
pub fn reply_draining(id: &str) -> String {
    format!(
        "{{\"id\":\"{}\",\"status\":\"draining\",\"code\":\"draining\",\
         \"message\":\"server is draining; job not run\"}}",
        escape(id)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_request() {
        let r = parse_request(
            r#"{"id":"j1","kind":"cosim","priority":"high","deadline_ms":500,"chaos":"panic","spec":"sys demo\n","budget":3,"sharing":true}"#,
        )
        .unwrap();
        assert_eq!(r.id, "j1");
        assert_eq!(r.kind, "cosim");
        assert_eq!(r.priority, Priority::High);
        assert_eq!(r.deadline_ms, Some(500));
        assert_eq!(r.chaos.as_deref(), Some("panic"));
        assert_eq!(r.params["spec"].as_str(), Some("sys demo\n"));
        assert_eq!(r.params["budget"].as_int(), Some(3));
        assert_eq!(r.params["sharing"].as_bool(), Some(true));
    }

    #[test]
    fn defaults_are_normal_priority_no_deadline() {
        let r = parse_request(r#"{"id":"a","kind":"faults"}"#).unwrap();
        assert_eq!(r.priority, Priority::Normal);
        assert_eq!(r.deadline_ms, None);
        assert_eq!(r.chaos, None);
        assert!(r.params.is_empty());
    }

    #[test]
    fn every_malformed_shape_gets_its_own_code() {
        let cases: [(&str, &str); 8] = [
            ("not json at all", "bad_json"),
            ("{\"id\":\"x\",", "bad_json"),
            ("[1,2,3]", "not_object"),
            (
                r#"{"id":"x","kind":"k","nested":{"a":1}}"#,
                "unsupported_value",
            ),
            (r#"{"kind":"k"}"#, "missing_field"),
            (r#"{"id":"x"}"#, "missing_field"),
            (
                r#"{"id":"x","kind":"k","priority":"urgent"}"#,
                "bad_priority",
            ),
            (r#"{"id":"x","kind":"k","deadline_ms":-4}"#, "bad_field"),
        ];
        for (line, code) in cases {
            let err = parse_request(line).expect_err(line);
            assert_eq!(err.code(), code, "line: {line}, err: {err}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" \\ end\u{1}";
        let wire = format!(r#"{{"id":"{}","kind":"k"}}"#, escape(original));
        let r = parse_request(&wire).unwrap();
        assert_eq!(r.id, original);
    }

    #[test]
    fn unicode_payloads_survive() {
        let r = parse_request(r#"{"id":"jé","kind":"k","note":"héllo ☃"}"#).unwrap();
        assert_eq!(r.id, "jé");
        assert_eq!(r.params["note"].as_str(), Some("héllo ☃"));
    }

    #[test]
    fn replies_are_single_lines() {
        let replies = [
            reply_ok("a", 2, "{\n  \"x\": 1\n}\n"),
            reply_error(Some("b"), "watchdog", "stalled\nbadly"),
            reply_error(None, "bad_json", "oops"),
            reply_shed("c", 64, 64),
            reply_draining("d"),
        ];
        for r in &replies {
            assert!(!r.contains('\n'), "{r}");
        }
        assert!(replies[0].contains("\\n"));
        assert!(replies[2].contains("\"id\":null"));
    }

    #[test]
    fn numbers_parse_to_the_right_shapes() {
        let r = parse_request(r#"{"id":"x","kind":"k","a":-7,"b":2.5,"c":null}"#).unwrap();
        assert_eq!(r.params["a"].as_int(), Some(-7));
        assert_eq!(r.params["b"], Value::Float(2.5));
        assert_eq!(r.params["c"], Value::Null);
    }
}
