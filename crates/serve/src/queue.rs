//! The bounded three-class priority queue with explicit load-shedding.
//!
//! Admission control is the server's backpressure mechanism: the queue
//! holds at most `capacity` jobs **total** across all three classes,
//! and a push past the bound *returns the job to the caller* — the
//! caller must reply `overloaded`, so shedding is always explicit and
//! observable, never a silent drop. Dequeue order is strict priority
//! (high before normal before low) and FIFO within a class, which keeps
//! the server's behaviour a pure function of the submission sequence.
//!
//! The queue itself is deliberately synchronous and lock-free to test:
//! the server wraps it in its own mutex. Property tests drive it
//! against a reference model (a sorted list with stable order) to pin
//! the bound, the shed-exactly-the-excess rule, and the dequeue order.

use std::collections::VecDeque;

use crate::protocol::Priority;

/// A bounded priority queue. `T` is the queued job payload.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    classes: [VecDeque<T>; 3],
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// An empty queue admitting at most `capacity` jobs (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            classes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            capacity: capacity.max(1),
        }
    }

    /// The admission bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently queued, all classes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.classes.iter().map(VecDeque::len).sum()
    }

    /// Whether nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.classes.iter().all(VecDeque::is_empty)
    }

    /// Admits `item` at `priority`, or **returns it back** when the
    /// queue is at capacity — the caller owns the shed decision's
    /// visible consequence (an `overloaded` reply).
    pub fn push(&mut self, item: T, priority: Priority) -> Result<(), T> {
        if self.len() >= self.capacity {
            return Err(item);
        }
        self.classes[priority as usize].push_back(item);
        Ok(())
    }

    /// Removes the oldest job of the highest non-empty class.
    pub fn pop(&mut self) -> Option<T> {
        self.classes.iter_mut().find_map(VecDeque::pop_front)
    }

    /// Empties the queue in dequeue order — the drain path, where every
    /// flushed job still gets its `draining` reply.
    pub fn drain_all(&mut self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(item) = self.pop() {
            out.push(item);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_priority_then_fifo() {
        let mut q = BoundedQueue::new(8);
        q.push("n1", Priority::Normal).unwrap();
        q.push("l1", Priority::Low).unwrap();
        q.push("h1", Priority::High).unwrap();
        q.push("n2", Priority::Normal).unwrap();
        q.push("h2", Priority::High).unwrap();
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec!["h1", "h2", "n1", "n2", "l1"]);
    }

    #[test]
    fn bound_is_total_across_classes() {
        let mut q = BoundedQueue::new(2);
        q.push(1, Priority::High).unwrap();
        q.push(2, Priority::Low).unwrap();
        // Full: even a high-priority push is shed, and the item comes back.
        assert_eq!(q.push(3, Priority::High), Err(3));
        assert_eq!(q.len(), 2);
        q.pop().unwrap();
        q.push(3, Priority::High).unwrap();
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn capacity_zero_is_clamped_to_one() {
        let mut q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.push(1, Priority::Normal).unwrap();
        assert_eq!(q.push(2, Priority::Normal), Err(2));
    }

    #[test]
    fn drain_flushes_in_dequeue_order() {
        let mut q = BoundedQueue::new(4);
        q.push("l", Priority::Low).unwrap();
        q.push("h", Priority::High).unwrap();
        q.push("n", Priority::Normal).unwrap();
        assert_eq!(q.drain_all(), vec!["h", "n", "l"]);
        assert!(q.is_empty());
    }
}
