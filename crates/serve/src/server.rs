//! The panic-isolated worker pool: admission, retry, drain, accounting.
//!
//! One [`Server`] owns `workers` OS threads looping over a shared
//! [`BoundedQueue`]. The lifecycle of every submitted job:
//!
//! ```text
//! submit ── full? ──────────────▶ shed   (reply `overloaded`, never queued)
//!    │           draining? ─────▶ reject (reply `draining`, never queued)
//!    ▼
//! queued ── drain flushes ──────▶ reply `draining`
//!    │      deadline_ms expired ▶ reply error `deadline` (never run)
//!    ▼
//! running ── ok ────────────────▶ reply `ok` (attempts counted)
//!    │       preempted ─────────▶ checkpointed, requeued (not terminal)
//!    │       panic ─────────────▶ reply error `panic`; the worker survives
//!    │       transient failure ─▶ seeded backoff, requeued (bounded retries)
//!    └────── final failure ─────▶ reply error with the failure's code
//! ```
//!
//! The invariant the chaos benchmark asserts: **every accepted job gets
//! exactly one terminal reply** (`ok`, `error`, or flushed `draining`),
//! whatever combination of panics, watchdog trips, retries, and drain
//! happens around it — at quiescence,
//! `accepted == ok + failed + drained`.
//!
//! Panic isolation uses `catch_unwind` per job, so a crashing job kills
//! neither its worker thread nor its sibling jobs; the runner sees only
//! `&self`, and any interior state it keeps must stay sound across an
//! unwind (the stock runners share only atomics and the sharded eval
//! cache). Retries re-enter through a *delayed* set that bypasses the
//! admission bound — a job admitted once is never shed on re-entry.

use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use codesign_trace::Tracer;

use crate::protocol::{reply_draining, reply_error, reply_ok, reply_shed, Request};
use crate::queue::BoundedQueue;
use crate::retry::{backoff_delay, job_key, RetryConfig};

/// A job failure as the runner reports it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// Stable machine-readable code (`"watchdog"`, `"budget"`,
    /// `"unknown_kind"`, ...).
    pub code: String,
    /// Human-readable detail.
    pub message: String,
    /// Whether the failure is transient — eligible for seeded-backoff
    /// retry. Mirrors `codesign_fault::retryable`.
    pub transient: bool,
}

impl JobError {
    /// A permanent (non-retryable) failure.
    #[must_use]
    pub fn permanent(code: impl Into<String>, message: impl Into<String>) -> Self {
        JobError {
            code: code.into(),
            message: message.into(),
            transient: false,
        }
    }

    /// A transient (retryable) failure.
    #[must_use]
    pub fn transient(code: impl Into<String>, message: impl Into<String>) -> Self {
        JobError {
            code: code.into(),
            message: message.into(),
            transient: true,
        }
    }
}

/// How one dispatch of a job ended, short of an error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// The job finished; the string is its terminal `ok` payload.
    Done(String),
    /// The job ran out of its execution slice and checkpointed. The
    /// server requeues it and hands `state` back on the next dispatch —
    /// a preemption is *not* a terminal outcome and does not consume a
    /// retry attempt.
    Preempted {
        /// Opaque resume blob (for cosim jobs, a replay checkpoint).
        state: Vec<u8>,
    },
}

/// What the server runs. Implementations live with the job registry
/// (the `codesign` core crate), keeping this crate free of a dependency
/// cycle; the server only needs *a* runner.
///
/// `attempt` is 1-based and lets chaos runners model transient faults
/// deterministically ("fail the first K attempts"). The returned string
/// must be the exact bytes the equivalent CLI invocation prints.
pub trait JobRunner: Send + Sync + 'static {
    /// Runs one job. May panic: the server isolates it.
    fn run(&self, request: &Request, attempt: u32) -> Result<String, JobError>;

    /// Runs one *slice* of a job. Runners that support checkpoint
    /// preemption override this: when the slice budget expires they
    /// return [`RunOutcome::Preempted`] with a resume blob, and receive
    /// it back as `resume` on the next dispatch. The default runs the
    /// job to completion via [`JobRunner::run`] (never preempts, never
    /// sees a resume blob).
    fn run_slice(
        &self,
        request: &Request,
        attempt: u32,
        resume: Option<&[u8]>,
    ) -> Result<RunOutcome, JobError> {
        debug_assert!(resume.is_none(), "default runners never preempt");
        self.run(request, attempt).map(RunOutcome::Done)
    }
}

/// Pool shape and retry policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads (minimum 1).
    pub workers: usize,
    /// Total queue bound across the three priority classes.
    pub queue_capacity: usize,
    /// Retry policy for transient failures.
    pub retry: RetryConfig,
    /// Checkpoint preemptions one job may accumulate before it is
    /// failed with code `preempt_limit` (guards against a runner that
    /// never completes a slice).
    pub max_preemptions: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            retry: RetryConfig::default(),
            max_preemptions: 64,
        }
    }
}

/// Where a submission landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Queued; a terminal reply will follow.
    Accepted,
    /// Shed at admission (`overloaded` reply already sent).
    Shed,
    /// Rejected because the server is draining (reply already sent).
    Draining,
}

/// Monotonic counters, readable while the server runs.
#[derive(Debug, Default)]
struct Stats {
    accepted: AtomicU64,
    ok: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    drained: AtomicU64,
    rejected: AtomicU64,
    retried: AtomicU64,
    panicked: AtomicU64,
    watchdogged: AtomicU64,
    deadline_expired: AtomicU64,
    preempted: AtomicU64,
}

/// A point-in-time copy of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Jobs admitted to the queue.
    pub accepted: u64,
    /// Jobs finished successfully.
    pub ok: u64,
    /// Jobs finished with a terminal error (panics and deadline
    /// expiries included).
    pub failed: u64,
    /// Submissions shed at admission (never accepted).
    pub shed: u64,
    /// **Accepted** jobs flushed by drain before running.
    pub drained: u64,
    /// Submissions rejected at admission because the server was
    /// draining (never accepted).
    pub rejected: u64,
    /// Retry re-queues performed.
    pub retried: u64,
    /// Jobs that panicked (isolated; each also counts as failed).
    pub panicked: u64,
    /// Failures whose code was `watchdog` (counted per occurrence).
    pub watchdogged: u64,
    /// Jobs failed at dequeue because their queue-wait deadline passed.
    pub deadline_expired: u64,
    /// Checkpoint preemptions performed (slice expired, job requeued;
    /// counted per occurrence — not terminal).
    pub preempted: u64,
}

impl StatsSnapshot {
    /// Terminal replies delivered to accepted jobs. Every accepted job
    /// ends as exactly one of ok/failed/drained, so at quiescence
    /// `terminal() == accepted`.
    #[must_use]
    pub fn terminal(&self) -> u64 {
        self.ok + self.failed + self.drained
    }

    /// One-line JSON rendering (the `stats` request's reply body).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"accepted\":{},\"ok\":{},\"failed\":{},\"shed\":{},\"drained\":{},\
             \"rejected\":{},\"retried\":{},\"panicked\":{},\"watchdogged\":{},\
             \"deadline_expired\":{},\"preempted\":{}}}",
            self.accepted,
            self.ok,
            self.failed,
            self.shed,
            self.drained,
            self.rejected,
            self.retried,
            self.panicked,
            self.watchdogged,
            self.deadline_expired,
            self.preempted
        )
    }
}

struct Job {
    request: Request,
    reply: Sender<String>,
    attempt: u32,
    accepted_at: Instant,
    /// Checkpoint blob from a preempted slice; its presence also marks
    /// the job as started, exempting it from the queue-wait deadline.
    resume: Option<Vec<u8>>,
    preemptions: u32,
}

/// A retry waiting out its backoff. Ordered by readiness (earliest
/// first), sequence-number tie-broken, so the heap is deterministic.
struct Delayed {
    ready_at: Instant,
    seq: u64,
    job: Job,
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Self) -> bool {
        self.ready_at == other.ready_at && self.seq == other.seq
    }
}
impl Eq for Delayed {}
impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: invert so the earliest pops first.
        other
            .ready_at
            .cmp(&self.ready_at)
            .then(other.seq.cmp(&self.seq))
    }
}

struct State {
    queue: BoundedQueue<Job>,
    delayed: BinaryHeap<Delayed>,
    seq: u64,
    draining: bool,
    in_flight: usize,
}

struct Inner<R> {
    runner: R,
    cfg: ServerConfig,
    state: Mutex<State>,
    cv: Condvar,
    stats: Stats,
    tracer: Tracer,
    started: Instant,
}

impl<R> Inner<R> {
    fn submit(&self, request: Request, reply: &Sender<String>) -> SubmitOutcome {
        let mut state = self.state.lock().expect("server state");
        if state.draining {
            let _ = reply.send(reply_draining(&request.id));
            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return SubmitOutcome::Draining;
        }
        let priority = request.priority;
        let job = Job {
            request,
            reply: reply.clone(),
            attempt: 1,
            accepted_at: Instant::now(),
            resume: None,
            preemptions: 0,
        };
        match state.queue.push(job, priority) {
            Ok(()) => {
                self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                self.cv.notify_one();
                SubmitOutcome::Accepted
            }
            Err(job) => {
                let _ = job.reply.send(reply_shed(
                    &job.request.id,
                    state.queue.len(),
                    state.queue.capacity(),
                ));
                self.stats.shed.fetch_add(1, Ordering::Relaxed);
                SubmitOutcome::Shed
            }
        }
    }

    fn drain(&self) {
        let mut state = self.state.lock().expect("server state");
        state.draining = true;
        let mut flushed = state.queue.drain_all();
        flushed.extend(
            std::mem::take(&mut state.delayed)
                .into_sorted_vec()
                .into_iter()
                .map(|d| d.job),
        );
        drop(state);
        for job in flushed {
            let _ = job.reply.send(reply_draining(&job.request.id));
            self.stats.drained.fetch_add(1, Ordering::Relaxed);
        }
        self.cv.notify_all();
    }

    fn stats_snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            accepted: self.stats.accepted.load(Ordering::Relaxed),
            ok: self.stats.ok.load(Ordering::Relaxed),
            failed: self.stats.failed.load(Ordering::Relaxed),
            shed: self.stats.shed.load(Ordering::Relaxed),
            drained: self.stats.drained.load(Ordering::Relaxed),
            rejected: self.stats.rejected.load(Ordering::Relaxed),
            retried: self.stats.retried.load(Ordering::Relaxed),
            panicked: self.stats.panicked.load(Ordering::Relaxed),
            watchdogged: self.stats.watchdogged.load(Ordering::Relaxed),
            deadline_expired: self.stats.deadline_expired.load(Ordering::Relaxed),
            preempted: self.stats.preempted.load(Ordering::Relaxed),
        }
    }

    fn queue_depth(&self) -> usize {
        self.state.lock().expect("server state").queue.len()
    }

    /// Blocks until every accepted job has its terminal reply. Only
    /// meaningful after [`Inner::drain`] (otherwise new acceptances can
    /// keep moving the goalposts).
    fn await_quiescence(&self) {
        loop {
            let s = self.stats_snapshot();
            if s.terminal() == s.accepted {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

/// A cloneable, shareable reference to a running server — what
/// transport connection threads hold.
pub struct Handle<R> {
    inner: Arc<Inner<R>>,
}

impl<R> Clone for Handle<R> {
    fn clone(&self) -> Self {
        Handle {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<R> std::fmt::Debug for Handle<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Handle")
            .field("stats", &self.inner.stats_snapshot())
            .finish_non_exhaustive()
    }
}

impl<R: JobRunner> Handle<R> {
    /// See [`Server::submit`].
    pub fn submit(&self, request: Request, reply: &Sender<String>) -> SubmitOutcome {
        self.inner.submit(request, reply)
    }

    /// See [`Server::drain`].
    pub fn drain(&self) {
        self.inner.drain();
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats_snapshot()
    }

    /// Jobs currently queued (excluding delayed retries and in-flight).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.inner.queue_depth()
    }

    /// Blocks until every accepted job has resolved. Call after
    /// [`Handle::drain`].
    pub fn await_quiescence(&self) {
        self.inner.await_quiescence();
    }
}

/// The job server: a bounded queue in front of a panic-isolated pool.
pub struct Server<R: JobRunner> {
    inner: Arc<Inner<R>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl<R: JobRunner> std::fmt::Debug for Server<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.workers.len())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl<R: JobRunner> Server<R> {
    /// Starts the pool. The tracer records one span per job run on a
    /// `serve` track (microsecond timestamps since server start).
    #[must_use]
    pub fn new(runner: R, cfg: ServerConfig, tracer: &Tracer) -> Self {
        let inner = Arc::new(Inner {
            runner,
            cfg,
            state: Mutex::new(State {
                queue: BoundedQueue::new(cfg.queue_capacity),
                delayed: BinaryHeap::new(),
                seq: 0,
                draining: false,
                in_flight: 0,
            }),
            cv: Condvar::new(),
            stats: Stats::default(),
            tracer: tracer.clone(),
            started: Instant::now(),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker thread")
            })
            .collect();
        Server { inner, workers }
    }

    /// A shareable reference for transport threads.
    #[must_use]
    pub fn handle(&self) -> Handle<R> {
        Handle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Submits one parsed request. The server itself sends the
    /// `overloaded`/`draining` reply on rejection; on acceptance the
    /// terminal reply arrives via `reply` once the job resolves.
    pub fn submit(&self, request: Request, reply: &Sender<String>) -> SubmitOutcome {
        self.inner.submit(request, reply)
    }

    /// Begins graceful drain: new submissions are rejected, queued and
    /// backoff-delayed jobs are flushed with `draining` replies, and
    /// in-flight jobs run to completion. Idempotent.
    pub fn drain(&self) {
        self.inner.drain();
    }

    /// Drains (if not already draining) and joins every worker. Returns
    /// the final counters.
    pub fn shutdown(self) -> StatsSnapshot {
        self.drain();
        for w in self.workers {
            let _ = w.join();
        }
        self.inner.stats_snapshot()
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats_snapshot()
    }

    /// Jobs currently queued (excluding delayed retries and in-flight).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.inner.queue_depth()
    }
}

fn worker_loop<R: JobRunner>(inner: &Inner<R>) {
    let track = inner.tracer.track("serve");
    let mut state = inner.state.lock().expect("server state");
    loop {
        let now = Instant::now();
        // A backoff-delayed retry that is ready takes precedence over
        // fresh work: it is older than anything still queued.
        let job = if state.delayed.peek().is_some_and(|d| d.ready_at <= now) {
            Some(state.delayed.pop().expect("peeked").job)
        } else {
            state.queue.pop()
        };
        let Some(job) = job else {
            if state.draining && state.delayed.is_empty() {
                return;
            }
            let timeout = state
                .delayed
                .peek()
                .map_or(Duration::from_millis(100), |d| {
                    d.ready_at.saturating_duration_since(now)
                });
            state = inner
                .cv
                .wait_timeout(state, timeout.min(Duration::from_millis(100)))
                .expect("server state")
                .0;
            continue;
        };

        // Queue-wait deadline: a job the client gave up on is failed,
        // never run — the cheapest form of load shedding under overload.
        // A preempted job is exempt: it already started running, and
        // from then on `deadline_ms` means its execution slice, not its
        // queue wait.
        if let Some(deadline_ms) = job.request.deadline_ms {
            if job.resume.is_none()
                && job.accepted_at.elapsed() > Duration::from_millis(deadline_ms)
            {
                inner.stats.deadline_expired.fetch_add(1, Ordering::Relaxed);
                inner.stats.failed.fetch_add(1, Ordering::Relaxed);
                let _ = job.reply.send(reply_error(
                    Some(&job.request.id),
                    "deadline",
                    &format!("queued longer than deadline_ms={deadline_ms}"),
                ));
                continue;
            }
        }

        state.in_flight += 1;
        drop(state);

        let t0 = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            inner
                .runner
                .run_slice(&job.request, job.attempt, job.resume.as_deref())
        }));
        let ts = inner.started.elapsed().as_micros() as u64;
        let dur = t0.elapsed().as_micros() as u64;
        inner.tracer.span(
            track,
            &format!("job:{}", job.request.kind),
            ts.saturating_sub(dur),
            dur,
            &[
                ("id", job.request.id.as_str().into()),
                ("attempt", u64::from(job.attempt).into()),
            ],
        );

        state = inner.state.lock().expect("server state");
        match outcome {
            Err(_) => {
                // The job panicked; this worker and its siblings live on.
                inner.stats.panicked.fetch_add(1, Ordering::Relaxed);
                inner.stats.failed.fetch_add(1, Ordering::Relaxed);
                let _ = job.reply.send(reply_error(
                    Some(&job.request.id),
                    "panic",
                    "job panicked; isolated by the worker pool",
                ));
            }
            Ok(Ok(RunOutcome::Done(result))) => {
                inner.stats.ok.fetch_add(1, Ordering::Relaxed);
                let _ = job
                    .reply
                    .send(reply_ok(&job.request.id, job.attempt, &result));
            }
            Ok(Ok(RunOutcome::Preempted { state: resume })) => {
                if state.draining {
                    // Drain already flushed the queues; a slice that
                    // lands now gets the same terminal `draining` reply
                    // a queued job would have.
                    inner.stats.drained.fetch_add(1, Ordering::Relaxed);
                    let _ = job.reply.send(reply_draining(&job.request.id));
                } else if job.preemptions >= inner.cfg.max_preemptions {
                    inner.stats.failed.fetch_add(1, Ordering::Relaxed);
                    let _ = job.reply.send(reply_error(
                        Some(&job.request.id),
                        "preempt_limit",
                        &format!(
                            "preempted {} times without completing (max_preemptions={})",
                            job.preemptions + 1,
                            inner.cfg.max_preemptions
                        ),
                    ));
                } else {
                    // Requeue through the delayed set (immediately
                    // ready): like a retry, a job admitted once is never
                    // shed on re-entry — but the attempt number is
                    // unchanged, because nothing failed.
                    inner.stats.preempted.fetch_add(1, Ordering::Relaxed);
                    let seq = state.seq;
                    state.seq += 1;
                    state.delayed.push(Delayed {
                        ready_at: Instant::now(),
                        seq,
                        job: Job {
                            resume: Some(resume),
                            preemptions: job.preemptions + 1,
                            ..job
                        },
                    });
                    inner.cv.notify_one();
                }
            }
            Ok(Err(e)) => {
                if e.code == "watchdog" {
                    inner.stats.watchdogged.fetch_add(1, Ordering::Relaxed);
                }
                if e.transient && job.attempt < inner.cfg.retry.max_attempts && !state.draining {
                    inner.stats.retried.fetch_add(1, Ordering::Relaxed);
                    let delay =
                        backoff_delay(&inner.cfg.retry, job_key(&job.request.id), job.attempt - 1);
                    let seq = state.seq;
                    state.seq += 1;
                    state.delayed.push(Delayed {
                        ready_at: Instant::now() + Duration::from_millis(delay),
                        seq,
                        job: Job {
                            attempt: job.attempt + 1,
                            ..job
                        },
                    });
                    inner.cv.notify_one();
                } else {
                    inner.stats.failed.fetch_add(1, Ordering::Relaxed);
                    let _ = job
                        .reply
                        .send(reply_error(Some(&job.request.id), &e.code, &e.message));
                }
            }
        }
        state.in_flight -= 1;
        inner.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Priority;
    use std::collections::BTreeMap;
    use std::sync::mpsc::channel;

    /// A scriptable runner: job kinds select behaviour.
    struct ScriptRunner;

    impl JobRunner for ScriptRunner {
        fn run(&self, request: &Request, attempt: u32) -> Result<String, JobError> {
            match request.kind.as_str() {
                "ok" => Ok(format!("ran {}", request.id)),
                "panic" => panic!("deliberate test panic"),
                "watchdog" => Err(JobError::permanent("watchdog", "stalled")),
                "flaky2" => {
                    if attempt <= 2 {
                        Err(JobError::transient("hardware_fault", "transient glitch"))
                    } else {
                        Ok(format!("recovered {}", request.id))
                    }
                }
                "always_transient" => Err(JobError::transient("hardware_fault", "never heals")),
                "slow" => {
                    std::thread::sleep(Duration::from_millis(30));
                    Ok("slow done".to_string())
                }
                other => Err(JobError::permanent("unknown_kind", other)),
            }
        }
    }

    fn req(id: &str, kind: &str) -> Request {
        Request {
            id: id.to_string(),
            kind: kind.to_string(),
            priority: Priority::Normal,
            deadline_ms: None,
            chaos: None,
            params: BTreeMap::new(),
        }
    }

    fn quick_cfg() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_capacity: 8,
            retry: RetryConfig {
                max_attempts: 3,
                base_delay_ms: 1,
                max_delay_ms: 4,
                seed: 7,
            },
            max_preemptions: 64,
        }
    }

    #[test]
    fn ok_jobs_reply_ok() {
        let server = Server::new(ScriptRunner, quick_cfg(), &Tracer::off());
        let (tx, rx) = channel();
        assert_eq!(server.submit(req("a", "ok"), &tx), SubmitOutcome::Accepted);
        let reply = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(reply.contains("\"status\":\"ok\""), "{reply}");
        assert!(reply.contains("\"attempts\":1"), "{reply}");
        let stats = server.shutdown();
        assert_eq!((stats.accepted, stats.ok), (1, 1));
    }

    #[test]
    fn a_panicking_job_kills_neither_workers_nor_siblings() {
        let server = Server::new(ScriptRunner, quick_cfg(), &Tracer::off());
        let (tx, rx) = channel();
        server.submit(req("boom", "panic"), &tx);
        for i in 0..4 {
            server.submit(req(&format!("s{i}"), "ok"), &tx);
        }
        let replies: Vec<String> = (0..5)
            .map(|_| rx.recv_timeout(Duration::from_secs(5)).unwrap())
            .collect();
        let panics = replies
            .iter()
            .filter(|r| r.contains("\"code\":\"panic\""))
            .count();
        let oks = replies
            .iter()
            .filter(|r| r.contains("\"status\":\"ok\""))
            .count();
        assert_eq!((panics, oks), (1, 4), "{replies:?}");
        let stats = server.shutdown();
        assert_eq!(stats.panicked, 1);
        assert_eq!(stats.ok, 4);
        assert_eq!(stats.terminal(), stats.accepted);
    }

    #[test]
    fn transient_failures_retry_until_recovery() {
        let server = Server::new(ScriptRunner, quick_cfg(), &Tracer::off());
        let (tx, rx) = channel();
        server.submit(req("f", "flaky2"), &tx);
        let reply = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(reply.contains("\"status\":\"ok\""), "{reply}");
        assert!(reply.contains("\"attempts\":3"), "{reply}");
        let stats = server.shutdown();
        assert_eq!(stats.retried, 2);
        assert_eq!(stats.ok, 1);
    }

    #[test]
    fn retries_are_bounded_then_fail_with_the_real_code() {
        let server = Server::new(ScriptRunner, quick_cfg(), &Tracer::off());
        let (tx, rx) = channel();
        server.submit(req("t", "always_transient"), &tx);
        let reply = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(reply.contains("\"code\":\"hardware_fault\""), "{reply}");
        let stats = server.shutdown();
        assert_eq!(stats.retried, 2, "max_attempts=3 means 2 retries");
        assert_eq!(stats.failed, 1);
    }

    #[test]
    fn watchdog_failures_are_counted() {
        let server = Server::new(ScriptRunner, quick_cfg(), &Tracer::off());
        let (tx, rx) = channel();
        server.submit(req("w", "watchdog"), &tx);
        let reply = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(reply.contains("\"code\":\"watchdog\""), "{reply}");
        let stats = server.shutdown();
        assert_eq!(stats.watchdogged, 1);
    }

    #[test]
    fn overload_sheds_explicitly() {
        // One worker, tiny queue, slow jobs: the burst must shed.
        let server = Server::new(
            ScriptRunner,
            ServerConfig {
                workers: 1,
                queue_capacity: 2,
                ..quick_cfg()
            },
            &Tracer::off(),
        );
        let (tx, rx) = channel();
        let mut outcomes = Vec::new();
        for i in 0..10 {
            outcomes.push(server.submit(req(&format!("b{i}"), "slow"), &tx));
        }
        let shed = outcomes
            .iter()
            .filter(|o| **o == SubmitOutcome::Shed)
            .count();
        assert!(shed > 0, "a 10-job burst into capacity 2 must shed");
        // Every submission resolves: shed replies arrive immediately,
        // accepted ones when their job finishes.
        for _ in 0..10 {
            let _ = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        let stats = server.shutdown();
        assert_eq!(stats.shed as usize, shed);
        assert_eq!(stats.accepted + stats.shed, 10);
        assert_eq!(stats.terminal(), stats.accepted);
    }

    #[test]
    fn drain_rejects_new_flushes_queued_finishes_in_flight() {
        let server = Server::new(
            ScriptRunner,
            ServerConfig {
                workers: 1,
                queue_capacity: 8,
                ..quick_cfg()
            },
            &Tracer::off(),
        );
        let (tx, rx) = channel();
        for i in 0..5 {
            server.submit(req(&format!("d{i}"), "slow"), &tx);
        }
        server.drain();
        assert_eq!(
            server.submit(req("late", "ok"), &tx),
            SubmitOutcome::Draining
        );
        let stats = server.shutdown();
        // 5 accepted; the in-flight one (and any popped before drain)
        // finish, the rest flush; the late one was never accepted.
        assert_eq!(stats.accepted, 5);
        assert_eq!(stats.terminal(), stats.accepted, "{stats:?}");
        assert!(stats.drained >= 1, "{stats:?}");
        assert_eq!(stats.rejected, 1);
        // 5 terminal replies for accepted + 1 draining for the late job.
        let mut replies = Vec::new();
        for _ in 0..6 {
            replies.push(rx.recv_timeout(Duration::from_secs(10)).unwrap());
        }
        assert!(replies.iter().any(|r| r.contains("\"id\":\"late\"")));
    }

    #[test]
    fn expired_deadlines_fail_without_running() {
        let server = Server::new(
            ScriptRunner,
            ServerConfig {
                workers: 1,
                queue_capacity: 8,
                ..quick_cfg()
            },
            &Tracer::off(),
        );
        let (tx, rx) = channel();
        // Head-of-line job holds the single worker long enough for the
        // zero-deadline job behind it to expire in queue.
        server.submit(req("head", "slow"), &tx);
        let mut expired = req("late", "ok");
        expired.deadline_ms = Some(0);
        server.submit(expired, &tx);
        let mut saw_deadline = false;
        for _ in 0..2 {
            let r = rx.recv_timeout(Duration::from_secs(10)).unwrap();
            if r.contains("\"code\":\"deadline\"") {
                saw_deadline = true;
            }
        }
        assert!(saw_deadline);
        let stats = server.shutdown();
        assert_eq!(stats.deadline_expired, 1);
    }

    #[test]
    fn handle_shares_the_server() {
        let server = Server::new(ScriptRunner, quick_cfg(), &Tracer::off());
        let handle = server.handle();
        let (tx, rx) = channel();
        handle.submit(req("h", "ok"), &tx);
        let reply = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(reply.contains("\"status\":\"ok\""));
        handle.drain();
        handle.await_quiescence();
        assert_eq!(handle.stats().ok, 1);
        let stats = server.shutdown();
        assert_eq!(stats.ok, 1);
    }

    #[test]
    fn stats_json_is_one_line_with_every_counter() {
        let json = StatsSnapshot::default().to_json();
        assert!(!json.contains('\n'));
        for key in [
            "accepted",
            "ok",
            "failed",
            "shed",
            "drained",
            "rejected",
            "retried",
            "panicked",
            "watchdogged",
            "deadline_expired",
            "preempted",
        ] {
            assert!(json.contains(&format!("\"{key}\":")), "{json}");
        }
    }

    /// A runner whose `sliced` jobs take `deadline_ms`-many preemptions
    /// to finish: each slice "executes" one unit, checkpoints the count,
    /// and resumes from it.
    struct SliceRunner;

    impl JobRunner for SliceRunner {
        fn run(&self, request: &Request, _attempt: u32) -> Result<String, JobError> {
            Ok(format!("ran {} unsliced", request.id))
        }

        fn run_slice(
            &self,
            request: &Request,
            attempt: u32,
            resume: Option<&[u8]>,
        ) -> Result<RunOutcome, JobError> {
            let Some(units) = request.deadline_ms else {
                return self.run(request, attempt).map(RunOutcome::Done);
            };
            let done = resume.map_or(0, |b| u64::from(b[0]));
            if done + 1 >= units {
                Ok(RunOutcome::Done(format!(
                    "ran {} in {units} slices",
                    request.id
                )))
            } else {
                Ok(RunOutcome::Preempted {
                    state: vec![(done + 1) as u8],
                })
            }
        }
    }

    #[test]
    fn preempted_jobs_resume_from_their_checkpoint_and_finish() {
        let server = Server::new(SliceRunner, quick_cfg(), &Tracer::off());
        let (tx, rx) = channel();
        let mut long = req("long", "sliced");
        long.deadline_ms = Some(4);
        server.submit(long, &tx);
        let reply = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(reply.contains("ran long in 4 slices"), "{reply}");
        assert!(reply.contains("\"attempts\":1"), "preemption is not retry");
        let stats = server.shutdown();
        assert_eq!(stats.preempted, 3, "4 slices = 3 preemptions");
        assert_eq!((stats.ok, stats.failed), (1, 0));
        assert_eq!(stats.terminal(), stats.accepted);
    }

    #[test]
    fn runaway_preemption_is_bounded() {
        let server = Server::new(
            SliceRunner,
            ServerConfig {
                max_preemptions: 5,
                ..quick_cfg()
            },
            &Tracer::off(),
        );
        let (tx, rx) = channel();
        let mut endless = req("endless", "sliced");
        endless.deadline_ms = Some(u64::MAX);
        server.submit(endless, &tx);
        let reply = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(reply.contains("\"code\":\"preempt_limit\""), "{reply}");
        let stats = server.shutdown();
        assert_eq!(stats.preempted, 5);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.terminal(), stats.accepted);
    }

    #[test]
    fn accounting_holds_under_preemption_and_drain() {
        // One worker so preempted jobs interleave with fresh ones, then
        // drain mid-flight: every accepted job must still get exactly
        // one terminal reply.
        let server = Server::new(
            SliceRunner,
            ServerConfig {
                workers: 1,
                queue_capacity: 16,
                ..quick_cfg()
            },
            &Tracer::off(),
        );
        let (tx, rx) = channel();
        for i in 0..6 {
            let mut job = req(&format!("p{i}"), "sliced");
            job.deadline_ms = Some(50);
            server.submit(job, &tx);
        }
        server.drain();
        let stats = server.shutdown();
        assert_eq!(stats.accepted, 6);
        assert_eq!(stats.terminal(), stats.accepted, "{stats:?}");
        for _ in 0..6 {
            let _ = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        }
    }
}
