//! Fault plans and the deterministic injector behind every fault model.
//!
//! A [`FaultPlan`] is pure data: per-ladder-level fault *rates*. A
//! [`FaultInjector`] turns a plan into decisions, drawing from one
//! deterministic substream per injection *site* (a site is a string like
//! `"reg:fifo"` or `"msg:0"`). Substream seeds are derived as
//! `seed ^ fnv1a(site)` and fed through the vendored `StdRng`
//! (xoshiro256++ seeded via SplitMix64), so:
//!
//! * identical seeds yield bit-identical campaigns — no wall clock or
//!   global RNG anywhere;
//! * sites are independent: adding a fault site (or reordering two
//!   sites' interleaved draws) never perturbs another site's stream;
//! * a zero rate consumes no randomness at all, which is what makes an
//!   empty plan provably bit-identical to the unwrapped baseline.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use codesign_trace::{Arg, Tracer, TrackId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bus-level fault rates (pin/transaction rung of the ladder).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BusRates {
    /// Probability a bus read or write has one data bit flipped.
    pub bit_flip: f64,
    /// Probability a bus transaction sticks and takes extra cycles.
    pub stuck: f64,
    /// Extra cycles a stuck transaction occupies the bus.
    pub stuck_cycles: u64,
}

/// Register-level fault rates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RegisterRates {
    /// Probability a register read returns a forged word.
    pub corrupt_read: f64,
    /// Probability a register write stores a forged word.
    pub corrupt_write: f64,
}

/// Interrupt-level fault rates, applied per IRQ-line sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IrqRates {
    /// Probability a pending interrupt is masked for one sample.
    pub drop: f64,
    /// Probability an idle line asserts a spurious interrupt.
    pub spurious: f64,
    /// Probability a just-cleared interrupt is re-asserted for one
    /// extra sample (a duplicated delivery).
    pub duplicate: f64,
}

/// Message-level fault rates, applied per `send`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MessageRates {
    /// Probability a send is lost.
    pub drop: f64,
    /// Probability a send is delivered twice.
    pub duplicate: f64,
    /// Probability a send is delayed by [`MessageRates::delay_cycles`].
    pub delay: f64,
    /// Extra transfer cycles added to a delayed send.
    pub delay_cycles: u64,
}

/// Fault rates for every rung of the abstraction ladder. Pure data; a
/// [`FaultInjector`] turns it into decisions.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Bus-level rates.
    pub bus: BusRates,
    /// Register-level rates.
    pub register: RegisterRates,
    /// Interrupt-level rates.
    pub irq: IrqRates,
    /// Message-level rates.
    pub message: MessageRates,
}

impl FaultPlan {
    /// A plan that injects nothing. Wrappers driven by a quiet plan are
    /// bit-identical to the unwrapped baseline (and consume no
    /// randomness, so they cannot perturb anything else either).
    #[must_use]
    pub fn quiet() -> Self {
        FaultPlan::default()
    }

    /// The standard campaign plan: rates low enough that many runs stay
    /// fault-free (exercising the *masked* class) but high enough that a
    /// 32-seed campaign reliably populates the other classes too.
    #[must_use]
    pub fn standard() -> Self {
        FaultPlan {
            bus: BusRates {
                bit_flip: 0.0005,
                stuck: 0.001,
                stuck_cycles: 40,
            },
            register: RegisterRates {
                corrupt_read: 0.0005,
                corrupt_write: 0.0005,
            },
            irq: IrqRates {
                drop: 0.02,
                spurious: 0.0001,
                duplicate: 0.02,
            },
            message: MessageRates {
                drop: 0.02,
                duplicate: 0.02,
                delay: 0.05,
                delay_cycles: 64,
            },
        }
    }

    /// Whether every rate is zero (the plan injects nothing).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bus.bit_flip == 0.0
            && self.bus.stuck == 0.0
            && self.register.corrupt_read == 0.0
            && self.register.corrupt_write == 0.0
            && self.irq.drop == 0.0
            && self.irq.spurious == 0.0
            && self.irq.duplicate == 0.0
            && self.message.drop == 0.0
            && self.message.duplicate == 0.0
            && self.message.delay == 0.0
    }
}

/// The kind of one injected fault, for records and trace instants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// One data bit flipped on a bus read.
    BitFlipRead,
    /// One data bit flipped on a bus write.
    BitFlipWrite,
    /// A bus transaction stuck for extra cycles.
    StuckTransaction,
    /// A register read returned a forged word.
    CorruptRead,
    /// A register write stored a forged word.
    CorruptWrite,
    /// A pending interrupt masked for one sample.
    IrqDropped,
    /// A spurious interrupt asserted on an idle line.
    IrqSpurious,
    /// A just-cleared interrupt re-asserted for one extra sample.
    IrqDuplicated,
    /// A message send lost.
    MsgDropped,
    /// A message send delivered twice.
    MsgDuplicated,
    /// A message send delayed.
    MsgDelayed,
    /// A transient engine-level hardware fault (retried by the
    /// coordinator when a retry policy is installed).
    TransientFault,
    /// An engine wedged permanently (caught by the watchdog).
    PermanentStall,
}

impl FaultKind {
    /// Stable label, used as the trace-instant name and in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::BitFlipRead => "bit-flip-read",
            FaultKind::BitFlipWrite => "bit-flip-write",
            FaultKind::StuckTransaction => "stuck-transaction",
            FaultKind::CorruptRead => "corrupt-read",
            FaultKind::CorruptWrite => "corrupt-write",
            FaultKind::IrqDropped => "irq-dropped",
            FaultKind::IrqSpurious => "irq-spurious",
            FaultKind::IrqDuplicated => "irq-duplicated",
            FaultKind::MsgDropped => "msg-dropped",
            FaultKind::MsgDuplicated => "msg-duplicated",
            FaultKind::MsgDelayed => "msg-delayed",
            FaultKind::TransientFault => "transient-fault",
            FaultKind::PermanentStall => "permanent-stall",
        }
    }
}

/// One injected fault: what, where, and when (site-local time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Site-local time of the injection (device cycles, engine local
    /// time, or message-engine time, depending on the site).
    pub time: u64,
    /// The injection site (e.g. `"reg:fifo"`, `"msg:0"`).
    pub site: String,
    /// What was injected.
    pub kind: FaultKind,
    /// Human-readable specifics (`"offset 0x4: 0x5a5a -> 0x1234"`).
    pub detail: String,
}

/// FNV-1a over the site name: cheap, stable, and good enough to spread
/// site substreams across the seed space (StdRng then runs the result
/// through SplitMix64).
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The seeded decision engine shared by every fault wrapper of one run.
///
/// Each injection site draws from its own substream (created lazily,
/// seeded `seed ^ fnv1a(site)`), every decision against a zero rate is
/// answered without consuming randomness, and every injected fault is
/// appended to an in-order [`FaultRecord`] log — optionally mirrored as
/// trace instants on a `faults` track.
#[derive(Debug)]
pub struct FaultInjector {
    seed: u64,
    streams: HashMap<String, StdRng>,
    records: Vec<FaultRecord>,
    tracer: Tracer,
    track: TrackId,
}

impl FaultInjector {
    /// Creates an injector for one run of a campaign.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let tracer = Tracer::off();
        let track = tracer.track("faults");
        FaultInjector {
            seed,
            streams: HashMap::new(),
            records: Vec::new(),
            tracer,
            track,
        }
    }

    /// The campaign seed this injector was created with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Mirrors every injected fault as an instant on `track_name` of
    /// `tracer`, timestamped with the fault's site-local time. Tracing
    /// is observational only.
    pub fn set_tracer(&mut self, tracer: &Tracer, track_name: &str) {
        self.tracer = tracer.clone();
        self.track = self.tracer.track(track_name);
    }

    fn stream(&mut self, site: &str) -> &mut StdRng {
        if !self.streams.contains_key(site) {
            self.streams.insert(
                site.to_string(),
                StdRng::seed_from_u64(self.seed ^ fnv1a(site)),
            );
        }
        self.streams.get_mut(site).expect("substream just inserted")
    }

    /// Decides whether a fault with probability `rate` strikes at
    /// `site`. A zero (or negative) rate returns `false` without
    /// touching the site's substream.
    pub fn decide(&mut self, site: &str, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        self.stream(site).gen_bool(rate)
    }

    /// A forged 32-bit word from `site`'s substream.
    pub fn rand_word(&mut self, site: &str) -> u32 {
        self.stream(site).gen::<u32>()
    }

    /// A bit index in `0..32` from `site`'s substream.
    pub fn rand_bit(&mut self, site: &str) -> u32 {
        self.stream(site).gen_range(0u32..32)
    }

    /// Logs one injected fault (and emits a trace instant if a tracer is
    /// installed).
    pub fn record(&mut self, time: u64, site: &str, kind: FaultKind, detail: String) {
        if self.tracer.is_on() {
            self.tracer.instant(
                self.track,
                kind.label(),
                time,
                &[("site", Arg::from(site)), ("detail", Arg::from(&*detail))],
            );
        }
        self.records.push(FaultRecord {
            time,
            site: site.to_string(),
            kind,
            detail,
        });
    }

    /// Every fault injected so far, in injection order.
    #[must_use]
    pub fn records(&self) -> &[FaultRecord] {
        &self.records
    }

    /// Number of faults injected so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.records.len() as u64
    }

    /// Serializes the injector's mutable state (substream positions and
    /// the fault log) for checkpointing. The seed is included so a
    /// restore can cross-check it; the tracer is observational and not
    /// serialized. Sites go out in sorted order so identical logical
    /// state always yields identical bytes.
    pub fn save_state(&self, w: &mut codesign_rtl::state::StateWriter) {
        w.u64(self.seed);
        let mut sites: Vec<&String> = self.streams.keys().collect();
        sites.sort();
        w.seq(sites.len());
        for site in sites {
            w.str(site);
            for limb in self.streams[site].state() {
                w.u64(limb);
            }
        }
        w.seq(self.records.len());
        for rec in &self.records {
            w.u64(rec.time);
            w.str(&rec.site);
            w.u8(fault_kind_tag(rec.kind));
            w.str(&rec.detail);
        }
    }

    /// Restores the injector's mutable state from a checkpoint taken by
    /// [`FaultInjector::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`codesign_rtl::RtlError::State`] on truncated or
    /// mismatched bytes (including a seed that differs from this
    /// injector's — a checkpoint only restores the run it was taken in).
    pub fn restore_state(
        &mut self,
        r: &mut codesign_rtl::state::StateReader<'_>,
    ) -> Result<(), codesign_rtl::RtlError> {
        let seed = r.u64()?;
        if seed != self.seed {
            return Err(codesign_rtl::RtlError::State {
                reason: format!(
                    "injector seed mismatch: checkpoint {seed}, run {}",
                    self.seed
                ),
            });
        }
        let n = r.seq(None)?;
        self.streams.clear();
        for _ in 0..n {
            let site = r.str()?.to_string();
            let mut limbs = [0u64; 4];
            for limb in &mut limbs {
                *limb = r.u64()?;
            }
            self.streams.insert(site, StdRng::from_state(limbs));
        }
        let n = r.seq(None)?;
        self.records.clear();
        for _ in 0..n {
            let time = r.u64()?;
            let site = r.str()?.to_string();
            let kind = fault_kind_from_tag(r.u8()?)?;
            let detail = r.str()?.to_string();
            self.records.push(FaultRecord {
                time,
                site,
                kind,
                detail,
            });
        }
        Ok(())
    }
}

/// Stable serialization tag for a [`FaultKind`].
fn fault_kind_tag(kind: FaultKind) -> u8 {
    match kind {
        FaultKind::BitFlipRead => 0,
        FaultKind::BitFlipWrite => 1,
        FaultKind::StuckTransaction => 2,
        FaultKind::CorruptRead => 3,
        FaultKind::CorruptWrite => 4,
        FaultKind::IrqDropped => 5,
        FaultKind::IrqSpurious => 6,
        FaultKind::IrqDuplicated => 7,
        FaultKind::MsgDropped => 8,
        FaultKind::MsgDuplicated => 9,
        FaultKind::MsgDelayed => 10,
        FaultKind::TransientFault => 11,
        FaultKind::PermanentStall => 12,
    }
}

fn fault_kind_from_tag(tag: u8) -> Result<FaultKind, codesign_rtl::RtlError> {
    Ok(match tag {
        0 => FaultKind::BitFlipRead,
        1 => FaultKind::BitFlipWrite,
        2 => FaultKind::StuckTransaction,
        3 => FaultKind::CorruptRead,
        4 => FaultKind::CorruptWrite,
        5 => FaultKind::IrqDropped,
        6 => FaultKind::IrqSpurious,
        7 => FaultKind::IrqDuplicated,
        8 => FaultKind::MsgDropped,
        9 => FaultKind::MsgDuplicated,
        10 => FaultKind::MsgDelayed,
        11 => FaultKind::TransientFault,
        12 => FaultKind::PermanentStall,
        other => {
            return Err(codesign_rtl::RtlError::State {
                reason: format!("unknown fault kind tag {other}"),
            })
        }
    })
}

/// A [`FaultInjector`] shared by every wrapper of one run. Simulation is
/// single-threaded, so `Rc<RefCell<..>>` suffices; wrappers borrow it
/// only for the duration of one decision.
pub type SharedInjector = Rc<RefCell<FaultInjector>>;

/// Creates a [`SharedInjector`] for one seeded run.
#[must_use]
pub fn shared(seed: u64) -> SharedInjector {
    Rc::new(RefCell::new(FaultInjector::new(seed)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_is_empty_and_standard_is_not() {
        assert!(FaultPlan::quiet().is_empty());
        assert!(!FaultPlan::standard().is_empty());
    }

    #[test]
    fn zero_rate_decisions_consume_no_randomness() {
        let mut a = FaultInjector::new(7);
        let mut b = FaultInjector::new(7);
        // `a` answers a thousand zero-rate queries first; its stream
        // must be untouched, so the next real draws agree with `b`'s.
        for _ in 0..1000 {
            assert!(!a.decide("site", 0.0));
        }
        for _ in 0..64 {
            assert_eq!(a.rand_word("site"), b.rand_word("site"));
        }
    }

    #[test]
    fn sites_draw_from_independent_substreams() {
        let mut a = FaultInjector::new(7);
        let mut b = FaultInjector::new(7);
        // Interleave draws on `noise` in one injector only; `site`'s
        // stream must not shift.
        let x: Vec<u32> = (0..16)
            .map(|_| {
                a.rand_word("noise");
                a.rand_word("site")
            })
            .collect();
        let y: Vec<u32> = (0..16).map(|_| b.rand_word("site")).collect();
        assert_eq!(x, y);
    }

    #[test]
    fn identical_seeds_yield_identical_decisions() {
        let mut a = FaultInjector::new(42);
        let mut b = FaultInjector::new(42);
        let da: Vec<bool> = (0..256).map(|_| a.decide("s", 0.3)).collect();
        let db: Vec<bool> = (0..256).map(|_| b.decide("s", 0.3)).collect();
        assert_eq!(da, db);
        let mut c = FaultInjector::new(43);
        let dc: Vec<bool> = (0..256).map(|_| c.decide("s", 0.3)).collect();
        assert_ne!(da, dc, "different seeds should differ somewhere");
    }

    #[test]
    fn records_are_kept_in_order_and_counted() {
        let mut inj = FaultInjector::new(1);
        inj.record(5, "a", FaultKind::BitFlipRead, "bit 3".into());
        inj.record(9, "b", FaultKind::MsgDropped, "64 bytes".into());
        assert_eq!(inj.count(), 2);
        assert_eq!(inj.records()[0].kind, FaultKind::BitFlipRead);
        assert_eq!(inj.records()[1].site, "b");
    }

    #[test]
    fn recorded_faults_become_trace_instants() {
        let tracer = Tracer::on();
        let mut inj = FaultInjector::new(1);
        inj.set_tracer(&tracer, "faults");
        inj.record(5, "a", FaultKind::CorruptRead, String::new());
        assert_eq!(tracer.event_count(), 1);
        codesign_trace::validate_chrome_trace(&tracer.to_chrome_json()).unwrap();
    }

    #[test]
    fn rand_bit_stays_in_word_range() {
        let mut inj = FaultInjector::new(3);
        for _ in 0..256 {
            assert!(inj.rand_bit("s") < 32);
        }
    }
}
