//! Engine-level faults: the wrapper that exercises the coordinator's
//! retry policy and no-progress watchdog.
//!
//! [`FaultyEngine`] wraps any [`SimEngine`] and injects two failure
//! shapes:
//!
//! * **transient faults** — with probability `transient` per
//!   `advance_to`, the call fails with
//!   [`SimError::Hardware`]`(`[`RtlError::BusFault`]`)` *before*
//!   touching the wrapped engine. A coordinator with a
//!   [`RetryPolicy`](codesign_sim::engine::RetryPolicy) absorbs these
//!   with bounded backoff (the *recovered* campaign class); without
//!   one they propagate (*detected*).
//! * **permanent stalls** — with probability `stall` per `advance_to`
//!   (or deterministically at [`FaultyEngine::with_stall_at`]), the
//!   engine wedges: its local clock freezes, it never reports done,
//!   and it withdraws its lookahead hint. The coordinator's watchdog
//!   converts the would-be infinite loop into a structured
//!   [`SimError::Watchdog`](codesign_sim::error::SimError::Watchdog)
//!   (the *hang-caught* class).
//!
//! With both rates zero the wrapper is an exact pass-through (it even
//! forwards `as_any`, so typed downcasts reach the wrapped engine).

use codesign_rtl::state::{StateReader, StateWriter};
use codesign_rtl::RtlError;
use codesign_sim::engine::SimEngine;
use codesign_sim::error::SimError;

use crate::plan::{FaultKind, SharedInjector};

/// Bus address reported by injected transient faults; recognizable in
/// diagnostics and distinct from any mapped device.
pub const TRANSIENT_FAULT_ADDR: u32 = 0xFA17_0000;

/// A [`SimEngine`] wrapper injecting transient hardware faults and
/// permanent stalls.
#[derive(Debug)]
pub struct FaultyEngine {
    inner: Box<dyn SimEngine>,
    injector: SharedInjector,
    site: String,
    transient: f64,
    stall: f64,
    stall_at: Option<u64>,
    stalled: bool,
}

impl FaultyEngine {
    /// Wraps `inner`; `transient` and `stall` are per-`advance_to`
    /// probabilities (zero disables the respective model).
    #[must_use]
    pub fn new(
        inner: Box<dyn SimEngine>,
        injector: SharedInjector,
        transient: f64,
        stall: f64,
    ) -> Self {
        let site = format!("engine:{}", inner.name());
        FaultyEngine {
            inner,
            injector,
            site,
            transient,
            stall,
            stall_at: None,
            stalled: false,
        }
    }

    /// Additionally wedges the engine permanently once a horizon at or
    /// beyond `t` is requested (deterministic, for tests).
    #[must_use]
    pub fn with_stall_at(mut self, t: u64) -> Self {
        self.stall_at = Some(t);
        self
    }

    /// The wrapped engine.
    #[must_use]
    pub fn inner(&self) -> &dyn SimEngine {
        self.inner.as_ref()
    }

    /// Whether the engine has wedged permanently.
    #[must_use]
    pub fn is_stalled(&self) -> bool {
        self.stalled
    }

    fn wedge(&mut self) {
        self.stalled = true;
        self.injector.borrow_mut().record(
            self.inner.local_time(),
            &self.site,
            FaultKind::PermanentStall,
            "engine wedged; clock frozen".into(),
        );
    }
}

impl SimEngine for FaultyEngine {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn local_time(&self) -> u64 {
        self.inner.local_time()
    }

    fn advance_to(&mut self, t: u64) -> Result<(), SimError> {
        if self.stalled {
            return Ok(());
        }
        if let Some(at) = self.stall_at {
            if t >= at {
                self.inner.advance_to(at.max(self.inner.local_time()))?;
                self.wedge();
                return Ok(());
            }
        }
        let (stall, transient) = {
            let mut inj = self.injector.borrow_mut();
            let stall = inj.decide(&self.site, self.stall);
            let transient = !stall && inj.decide(&self.site, self.transient);
            (stall, transient)
        };
        if stall {
            self.wedge();
            return Ok(());
        }
        if transient {
            self.injector.borrow_mut().record(
                self.inner.local_time(),
                &self.site,
                FaultKind::TransientFault,
                format!("advance to {t} failed transiently"),
            );
            return Err(SimError::Hardware(RtlError::BusFault {
                addr: TRANSIENT_FAULT_ADDR,
            }));
        }
        self.inner.advance_to(t)
    }

    fn is_done(&self) -> bool {
        // A wedged engine never finishes: the watchdog, not completion,
        // ends the run.
        !self.stalled && self.inner.is_done()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self.inner.as_any()
    }

    fn next_event_hint(&self) -> Option<u64> {
        if self.stalled || self.transient > 0.0 || self.stall > 0.0 {
            // A wrapper that can fault on any call can make no quiet
            // promise; stay fully conservative.
            return None;
        }
        match self.stall_at {
            Some(at) => Some(self.inner.next_event_hint()?.min(at)),
            None => self.inner.next_event_hint(),
        }
    }

    fn diagnostics(&self) -> String {
        if self.stalled {
            format!(
                "wedged by injected permanent stall at {}",
                self.local_time()
            )
        } else {
            self.inner.diagnostics()
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        self.inner.as_any_mut()
    }

    fn supports_snapshot(&self) -> bool {
        self.inner.supports_snapshot()
    }

    fn save_state(&self, w: &mut StateWriter) {
        // Wrapper latch first, then the wrapped engine. The injector's
        // substreams are shared state, checkpointed by the run harness.
        w.bool(self.stalled);
        self.inner.save_state(w);
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SimError> {
        self.stalled = r.bool()?;
        self.inner.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_sim::engine::{Coordinator, RetryPolicy};

    use crate::plan::shared;

    /// Work until `work`, clock follows the horizon (floor convention).
    #[derive(Debug)]
    struct Worker {
        name: &'static str,
        time: u64,
        work: u64,
    }

    impl SimEngine for Worker {
        fn name(&self) -> &str {
            self.name
        }
        fn local_time(&self) -> u64 {
            self.time
        }
        fn advance_to(&mut self, t: u64) -> Result<(), SimError> {
            self.time = t;
            Ok(())
        }
        fn is_done(&self) -> bool {
            self.time >= self.work
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn next_event_hint(&self) -> Option<u64> {
            Some(if self.is_done() { u64::MAX } else { self.work })
        }
    }

    fn worker(name: &'static str, work: u64) -> Box<dyn SimEngine> {
        Box::new(Worker {
            name,
            time: 0,
            work,
        })
    }

    #[test]
    fn quiet_wrapper_is_a_pass_through() {
        let mut baseline = Coordinator::new(16);
        baseline.add_engine(worker("w", 100));
        let expected = baseline.run(10_000).unwrap();

        let injector = shared(1);
        let mut coord = Coordinator::new(16);
        coord.add_engine(Box::new(FaultyEngine::new(
            worker("w", 100),
            injector.clone(),
            0.0,
            0.0,
        )));
        let stats = coord.run(10_000).unwrap();
        assert_eq!(stats, expected);
        assert_eq!(injector.borrow().count(), 0);
    }

    #[test]
    fn deterministic_stall_is_caught_by_the_watchdog() {
        let injector = shared(1);
        let mut coord = Coordinator::new(16);
        coord.add_engine(worker("healthy", 100));
        coord.add_engine(Box::new(
            FaultyEngine::new(worker("victim", 10_000), injector.clone(), 0.0, 0.0)
                .with_stall_at(48),
        ));
        let err = coord.run(u64::MAX).unwrap_err();
        let SimError::Watchdog { snapshot } = err else {
            panic!("expected watchdog, got {err:?}");
        };
        assert_eq!(snapshot.stuck(), vec!["victim"]);
        let stuck = &snapshot.engines[1];
        assert_eq!(stuck.local_time, 48);
        assert!(stuck.detail.contains("injected permanent stall"));
        assert_eq!(
            injector.borrow().records()[0].kind,
            FaultKind::PermanentStall
        );
    }

    #[test]
    fn transient_faults_are_absorbed_by_the_retry_policy() {
        let injector = shared(2);
        let mut coord = Coordinator::new(16);
        coord.set_retry(Some(RetryPolicy::default()));
        coord.add_engine(Box::new(FaultyEngine::new(
            worker("w", 4_000),
            injector.clone(),
            0.05,
            0.0,
        )));
        let stats = coord.run(u64::MAX).unwrap();
        assert_eq!(stats.time, 4_000, "retries must not change simulated time");
        assert!(stats.retries > 0, "a 5% rate over 250 rounds should fault");
        assert_eq!(injector.borrow().count(), stats.retries);
    }

    #[test]
    fn transient_faults_propagate_without_a_retry_policy() {
        let injector = shared(2);
        let mut coord = Coordinator::new(16);
        coord.add_engine(Box::new(FaultyEngine::new(
            worker("w", 4_000),
            injector,
            0.05,
            0.0,
        )));
        assert!(matches!(
            coord.run(u64::MAX),
            Err(SimError::Hardware(RtlError::BusFault {
                addr: TRANSIENT_FAULT_ADDR
            }))
        ));
    }

    #[test]
    fn downcasts_reach_the_wrapped_engine() {
        let injector = shared(1);
        let eng = FaultyEngine::new(worker("w", 10), injector, 0.0, 0.0);
        assert!(eng.as_any().downcast_ref::<Worker>().is_some());
    }
}
