//! Campaign bookkeeping: classifying seeded runs against a golden
//! reference and rendering the totals.
//!
//! A campaign runs each scenario once fault-free (the *golden* run,
//! fingerprinting every observable end-state) and then once per seed
//! with a [`FaultPlan`](crate::plan::FaultPlan) armed. Every seeded run
//! lands in exactly one [`RunClass`]:
//!
//! | class | meaning |
//! |---|---|
//! | `Masked` | finished with the golden fingerprint, no retries — the faults (if any struck) were absorbed by the system's own structure |
//! | `Recovered` | finished with the golden fingerprint after the coordinator's retry policy absorbed transient faults |
//! | `Detected` | a structured error surfaced (deadlock, bus fault, budget/timeout) — the system *noticed* |
//! | `Watchdog` | the run would have hung; the coordinator's no-progress watchdog converted it into a structured error |
//! | `Corrupted` | finished "successfully" but with a non-golden fingerprint — silent data corruption, the class fault campaigns exist to find |
//!
//! Per-scenario counts always sum to the number of seeded runs, which
//! the campaign gates assert.

use std::fmt::Write as _;

use codesign_sim::error::SimError;

/// The outcome class of one seeded run (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunClass {
    /// Golden fingerprint, no retries needed.
    Masked,
    /// Golden fingerprint after retried transient faults.
    Recovered,
    /// A structured error other than the watchdog.
    Detected,
    /// Hang caught by the coordinator's no-progress watchdog.
    Watchdog,
    /// Completed with a non-golden fingerprint (silent corruption).
    Corrupted,
}

impl RunClass {
    /// Stable lowercase label, used in reports and JSON.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RunClass::Masked => "masked",
            RunClass::Recovered => "recovered",
            RunClass::Detected => "detected",
            RunClass::Watchdog => "watchdog",
            RunClass::Corrupted => "corrupted",
        }
    }
}

/// Whether an error is *transient* — the class the coordinator's
/// [`RetryPolicy`](codesign_sim::engine::RetryPolicy) retries with
/// backoff: hardware faults model recoverable bus glitches, while
/// software errors, deadlocks, budget exhaustion, and watchdog trips
/// are deterministic properties of the run and would only recur.
///
/// The job server reuses this exact classification for *job-level*
/// retry: a job that failed with a transient error is re-queued on a
/// seeded backoff schedule; any other failure is final.
#[must_use]
pub fn retryable(err: &SimError) -> bool {
    matches!(err, SimError::Hardware(_))
}

/// A stable, machine-readable code naming an error's class, for
/// structured replies (`codesign serve`) and reports. One code per
/// [`SimError`] variant.
#[must_use]
pub fn error_code(err: &SimError) -> &'static str {
    match err {
        SimError::Deadlock { .. } => "deadlock",
        SimError::Budget { .. } => "budget",
        SimError::BadPlacement { .. } => "bad_placement",
        SimError::Software(_) => "software_fault",
        SimError::Hardware(_) => "hardware_fault",
        SimError::Watchdog { .. } => "watchdog",
        _ => "sim_error",
    }
}

/// Classifies one seeded run: its result (fingerprint on success),
/// the scenario's golden fingerprint, and how many coordinator retries
/// the run consumed.
#[must_use]
pub fn classify(result: &Result<String, SimError>, golden: &str, retries: u64) -> RunClass {
    match result {
        Err(SimError::Watchdog { .. }) => RunClass::Watchdog,
        Err(_) => RunClass::Detected,
        Ok(fp) if fp == golden => {
            if retries > 0 {
                RunClass::Recovered
            } else {
                RunClass::Masked
            }
        }
        Ok(_) => RunClass::Corrupted,
    }
}

/// Per-scenario campaign tallies.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScenarioReport {
    /// Scenario name (`"ladder_message"`, `"dsp_coprocessor"`, ...).
    pub scenario: String,
    /// Runs with the golden fingerprint and no retries.
    pub masked: u64,
    /// Runs with the golden fingerprint after retried faults.
    pub recovered: u64,
    /// Runs ending in a structured non-watchdog error.
    pub detected: u64,
    /// Hangs converted into errors by the watchdog.
    pub watchdog: u64,
    /// Runs completing with a non-golden fingerprint.
    pub corrupted: u64,
    /// Total faults injected across the scenario's seeded runs.
    pub faults_injected: u64,
}

impl ScenarioReport {
    /// An empty tally for `scenario`.
    #[must_use]
    pub fn new(scenario: impl Into<String>) -> Self {
        ScenarioReport {
            scenario: scenario.into(),
            ..ScenarioReport::default()
        }
    }

    /// Tallies one classified run.
    pub fn add(&mut self, class: RunClass) {
        match class {
            RunClass::Masked => self.masked += 1,
            RunClass::Recovered => self.recovered += 1,
            RunClass::Detected => self.detected += 1,
            RunClass::Watchdog => self.watchdog += 1,
            RunClass::Corrupted => self.corrupted += 1,
        }
    }

    /// Total classified runs (the per-class counts always sum to the
    /// seeded-run count; campaign gates assert this).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.masked + self.recovered + self.detected + self.watchdog + self.corrupted
    }
}

/// A whole campaign: every scenario's tallies plus the sweep
/// parameters, rendered as deterministic JSON (`BENCH_faults.json`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    /// First seed of the sweep; run `i` of each scenario uses
    /// `seed_base + i`.
    pub seed_base: u64,
    /// Seeded runs per scenario.
    pub seeds: u64,
    /// Per-scenario tallies.
    pub scenarios: Vec<ScenarioReport>,
}

impl CampaignReport {
    /// Renders the report as JSON. Deterministic: counts and seeds
    /// only, no wall-clock times, so identical campaigns produce
    /// byte-identical files.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut json = String::from("{\n  \"benchmark\": \"fault_campaign\",\n");
        let _ = writeln!(json, "  \"seed_base\": {},", self.seed_base);
        let _ = writeln!(json, "  \"seeds_per_scenario\": {},", self.seeds);
        json.push_str("  \"classes\": [\"masked\", \"recovered\", \"detected\", \"watchdog\", \"corrupted\"],\n");
        json.push_str("  \"scenarios\": [\n");
        for (i, s) in self.scenarios.iter().enumerate() {
            let _ = writeln!(
                json,
                "    {{\"scenario\": \"{}\", \"runs\": {}, \"masked\": {}, \"recovered\": {}, \
                 \"detected\": {}, \"watchdog\": {}, \"corrupted\": {}, \"faults_injected\": {}}}{}",
                s.scenario,
                s.total(),
                s.masked,
                s.recovered,
                s.detected,
                s.watchdog,
                s.corrupted,
                s.faults_injected,
                if i + 1 < self.scenarios.len() { "," } else { "" }
            );
        }
        json.push_str("  ]\n}\n");
        json
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_rtl::RtlError;
    use codesign_sim::error::WatchdogSnapshot;

    #[test]
    fn classification_covers_every_outcome_shape() {
        let golden = "t=100;a@100;";
        assert_eq!(
            classify(&Ok(golden.to_string()), golden, 0),
            RunClass::Masked
        );
        assert_eq!(
            classify(&Ok(golden.to_string()), golden, 3),
            RunClass::Recovered
        );
        assert_eq!(
            classify(&Ok("t=120;a@120;".to_string()), golden, 0),
            RunClass::Corrupted
        );
        assert_eq!(
            classify(
                &Err(SimError::Deadlock {
                    time: 5,
                    blocked: vec!["consumer".into()]
                }),
                golden,
                0
            ),
            RunClass::Detected
        );
        assert_eq!(
            classify(
                &Err(SimError::Hardware(RtlError::BusFault { addr: 1 })),
                golden,
                9
            ),
            RunClass::Detected
        );
        assert_eq!(
            classify(
                &Err(SimError::Watchdog {
                    snapshot: WatchdogSnapshot {
                        time: 0,
                        stalled_rounds: 64,
                        last_progress_round: 0,
                        engines: Vec::new()
                    }
                }),
                golden,
                0
            ),
            RunClass::Watchdog
        );
    }

    #[test]
    fn retryable_matches_the_coordinator_retry_class() {
        // Exactly the errors RetryPolicy retries are job-retryable.
        assert!(retryable(&SimError::Hardware(RtlError::BusFault {
            addr: 0xFA17
        })));
        for err in [
            SimError::Deadlock {
                time: 1,
                blocked: vec!["p".into()],
            },
            SimError::Budget { limit: 10 },
            SimError::Watchdog {
                snapshot: WatchdogSnapshot {
                    time: 0,
                    stalled_rounds: 64,
                    last_progress_round: 0,
                    engines: Vec::new(),
                },
            },
        ] {
            assert!(!retryable(&err), "{err}");
        }
    }

    #[test]
    fn error_codes_are_stable_and_distinct() {
        let codes = [
            error_code(&SimError::Deadlock {
                time: 1,
                blocked: Vec::new(),
            }),
            error_code(&SimError::Budget { limit: 1 }),
            error_code(&SimError::Hardware(RtlError::BusFault { addr: 1 })),
            error_code(&SimError::Watchdog {
                snapshot: WatchdogSnapshot {
                    time: 0,
                    stalled_rounds: 0,
                    last_progress_round: 0,
                    engines: Vec::new(),
                },
            }),
        ];
        assert_eq!(codes, ["deadlock", "budget", "hardware_fault", "watchdog"]);
    }

    #[test]
    fn tallies_sum_to_runs() {
        let mut s = ScenarioReport::new("ladder_message");
        for class in [
            RunClass::Masked,
            RunClass::Masked,
            RunClass::Recovered,
            RunClass::Detected,
            RunClass::Watchdog,
            RunClass::Corrupted,
        ] {
            s.add(class);
        }
        assert_eq!(s.total(), 6);
        assert_eq!(s.masked, 2);
    }

    #[test]
    fn json_is_deterministic_and_structured() {
        let mut s = ScenarioReport::new("ladder_message");
        s.add(RunClass::Masked);
        s.add(RunClass::Corrupted);
        s.faults_injected = 7;
        let report = CampaignReport {
            seed_base: 0xC0DE,
            seeds: 2,
            scenarios: vec![s],
        };
        let a = report.to_json();
        assert_eq!(a, report.to_json());
        assert!(a.contains("\"fault_campaign\""));
        assert!(a.contains("\"runs\": 2"));
        assert!(a.contains("\"faults_injected\": 7"));
        assert!(!a.contains("wall"), "no wall-clock times in the JSON");
    }
}
