//! # codesign-fault
//!
//! Deterministic fault injection for the co-design stack's abstraction
//! ladder (Adams & Thomas, DAC 1996, Figure 3).
//!
//! The paper's central claim about co-simulation is that the *interface
//! abstraction level* determines what a mixed HW/SW simulation can and
//! cannot observe. Fault injection sharpens that claim into something
//! measurable: a fault injected at one rung of the ladder is either
//! *masked* by the layers above it, *detected* by the system's own error
//! handling, or silently *corrupts* the result — and which of the three
//! happens is exactly the kind of cross-domain interaction the paper
//! says co-simulation exists to expose. This crate provides one fault
//! model per rung:
//!
//! | ladder level | fault model | wrapper |
//! |---|---|---|
//! | bus (pin/transaction) | single-bit flips, stuck transactions | [`bus::FaultySlave`], [`bus::FaultyPhy`] |
//! | register | whole-word corrupt read/write | [`bus::FaultySlave`] |
//! | interrupt | dropped / spurious / duplicated IRQs | [`bus::FaultySlave`] |
//! | message | dropped / duplicated / delayed sends | [`message::MessageFaultHook`] |
//! | engine | transient bus faults, permanent stalls | [`engine::FaultyEngine`] |
//!
//! Everything is driven by a seeded [`plan::FaultInjector`] whose
//! per-site substreams make campaigns fully deterministic: no wall
//! clock, no global RNG — identical seeds yield bit-identical runs, and
//! an empty [`plan::FaultPlan`] consumes no randomness at all, so a
//! quiet wrapper is bit-identical to the unwrapped baseline.
//!
//! [`campaign`] classifies each seeded run against a fault-free golden
//! reference — masked, recovered (transient faults absorbed by the
//! coordinator's retry policy), detected (a structured error), hung
//! (caught by the coordinator's watchdog), or silently corrupted — and
//! renders campaign totals as `BENCH_faults.json`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bus;
pub mod campaign;
pub mod engine;
pub mod message;
pub mod plan;

pub use bus::{FaultyPhy, FaultySlave};
pub use campaign::{classify, error_code, retryable, CampaignReport, RunClass, ScenarioReport};
pub use engine::FaultyEngine;
pub use message::MessageFaultHook;
pub use plan::{
    shared, BusRates, FaultInjector, FaultKind, FaultPlan, FaultRecord, IrqRates, MessageRates,
    RegisterRates, SharedInjector,
};
