//! Message-level faults: the top rung of the abstraction ladder.
//!
//! [`MessageFaultHook`] implements the
//! [`MessageFaults`](codesign_sim::message::MessageFaults) hook of the
//! message engine from a [`FaultPlan`]'s message rates: each send is
//! independently lost, duplicated, or delayed, with decisions drawn
//! from a per-channel substream (`"msg:<channel>"`) so that adding a
//! channel never perturbs another channel's fault pattern.
//!
//! The engine consults the hook in a canonical time-driven order, so a
//! given seed yields the same faults regardless of how the coordinator
//! subdivides horizons — and a quiet plan consumes no randomness,
//! keeping the hooked engine bit-identical to an unhooked one.

use codesign_sim::message::{MessageFaults, SendFault};

use crate::plan::{FaultKind, FaultPlan, MessageRates, SharedInjector};

/// A [`MessageFaults`] implementation driven by a seeded injector.
#[derive(Debug)]
pub struct MessageFaultHook {
    rates: MessageRates,
    injector: SharedInjector,
}

impl MessageFaultHook {
    /// Builds the hook from `plan`'s message rates.
    #[must_use]
    pub fn new(plan: &FaultPlan, injector: SharedInjector) -> Self {
        MessageFaultHook {
            rates: plan.message,
            injector,
        }
    }
}

impl MessageFaults for MessageFaultHook {
    fn on_send(&mut self, channel: usize, bytes: u64, time: u64) -> SendFault {
        let site = format!("msg:{channel}");
        let mut inj = self.injector.borrow_mut();
        if inj.decide(&site, self.rates.drop) {
            inj.record(
                time,
                &site,
                FaultKind::MsgDropped,
                format!("{bytes} bytes lost"),
            );
            return SendFault::Drop;
        }
        if inj.decide(&site, self.rates.duplicate) {
            inj.record(
                time,
                &site,
                FaultKind::MsgDuplicated,
                format!("{bytes} bytes delivered twice"),
            );
            return SendFault::Duplicate;
        }
        if inj.decide(&site, self.rates.delay) {
            let d = self.rates.delay_cycles;
            inj.record(
                time,
                &site,
                FaultKind::MsgDelayed,
                format!("{bytes} bytes held {d} cycles"),
            );
            return SendFault::Delay(d);
        }
        SendFault::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::plan::shared;

    fn hook(rates: MessageRates, seed: u64) -> (MessageFaultHook, SharedInjector) {
        let injector = shared(seed);
        let plan = FaultPlan {
            message: rates,
            ..FaultPlan::quiet()
        };
        (MessageFaultHook::new(&plan, injector.clone()), injector)
    }

    #[test]
    fn quiet_rates_never_fault_and_draw_nothing() {
        let (mut h, injector) = hook(MessageRates::default(), 3);
        for t in 0..256 {
            assert_eq!(h.on_send(0, 64, t), SendFault::None);
        }
        assert_eq!(injector.borrow().count(), 0);
    }

    #[test]
    fn certain_drop_wins_over_other_rates() {
        let (mut h, injector) = hook(
            MessageRates {
                drop: 1.0,
                duplicate: 1.0,
                delay: 1.0,
                delay_cycles: 5,
            },
            3,
        );
        assert_eq!(h.on_send(1, 64, 10), SendFault::Drop);
        let inj = injector.borrow();
        assert_eq!(inj.records()[0].kind, FaultKind::MsgDropped);
        assert_eq!(inj.records()[0].site, "msg:1");
        assert_eq!(inj.records()[0].time, 10);
    }

    #[test]
    fn delay_carries_the_configured_cycles() {
        let (mut h, _) = hook(
            MessageRates {
                delay: 1.0,
                delay_cycles: 64,
                ..MessageRates::default()
            },
            3,
        );
        assert_eq!(h.on_send(0, 8, 0), SendFault::Delay(64));
    }

    #[test]
    fn channels_have_independent_fault_streams() {
        let rates = MessageRates {
            drop: 0.5,
            ..MessageRates::default()
        };
        let (mut a, _) = hook(rates, 9);
        let (mut b, _) = hook(rates, 9);
        // `a` interleaves sends on channel 7; channel 0's pattern must
        // be unaffected.
        let fa: Vec<SendFault> = (0..64)
            .map(|t| {
                a.on_send(7, 1, t);
                a.on_send(0, 1, t)
            })
            .collect();
        let fb: Vec<SendFault> = (0..64).map(|t| b.on_send(0, 1, t)).collect();
        assert_eq!(fa, fb);
    }
}
