//! Bus-, register-, and interrupt-level fault wrappers.
//!
//! [`FaultySlave`] wraps any [`BusSlave`] and perturbs the three lowest
//! rungs of the abstraction ladder: single-bit flips on bus data
//! (bus level), whole-word forgeries on register reads/writes (register
//! level), and dropped/spurious/duplicated interrupts (interrupt
//! level). [`FaultyPhy`] wraps the bus's physical layer and models
//! stuck transactions that occupy the bus for extra cycles.
//!
//! Both wrappers are exact pass-throughs under a quiet plan: they
//! forward every call unchanged and consume no randomness, so a bus
//! built with quiet wrappers is bit-identical to one built without them
//! (`FaultySlave` even forwards `as_any`, so typed
//! [`SystemBus::device`](codesign_rtl::bus::SystemBus::device) lookups
//! still reach the wrapped device).

use std::cell::Cell;

use codesign_rtl::bus::{BusPhy, BusSlave, BusTiming};
use codesign_rtl::state::{StateReader, StateWriter};
use codesign_rtl::RtlError;

use crate::plan::{FaultKind, FaultPlan, SharedInjector};

/// A [`BusSlave`] wrapper injecting bus-, register-, and
/// interrupt-level faults per the plan.
#[derive(Debug)]
pub struct FaultySlave {
    inner: Box<dyn BusSlave>,
    plan: FaultPlan,
    injector: SharedInjector,
    site: String,
    /// Device-local clock, advanced by [`BusSlave::tick`]; timestamps
    /// the fault records.
    cycles: u64,
    /// Whether the wrapped device's IRQ line was high at the previous
    /// sample (drives the duplicated-delivery model). A `Cell` because
    /// [`BusSlave::irq_pending`] takes `&self`.
    irq_was_high: Cell<bool>,
}

impl FaultySlave {
    /// Wraps `inner`, drawing decisions for `site` from `injector`.
    #[must_use]
    pub fn new(inner: Box<dyn BusSlave>, plan: FaultPlan, injector: SharedInjector) -> Self {
        let site = format!("reg:{}", inner.name());
        FaultySlave {
            inner,
            plan,
            injector,
            site,
            cycles: 0,
            irq_was_high: Cell::new(false),
        }
    }
}

impl BusSlave for FaultySlave {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn read(&mut self, offset: u32) -> u32 {
        let value = self.inner.read(offset);
        let mut inj = self.injector.borrow_mut();
        if inj.decide(&self.site, self.plan.register.corrupt_read) {
            let forged = inj.rand_word(&self.site);
            inj.record(
                self.cycles,
                &self.site,
                FaultKind::CorruptRead,
                format!("offset {offset:#x}: {value:#010x} -> {forged:#010x}"),
            );
            return forged;
        }
        if inj.decide(&self.site, self.plan.bus.bit_flip) {
            let bit = inj.rand_bit(&self.site);
            inj.record(
                self.cycles,
                &self.site,
                FaultKind::BitFlipRead,
                format!("offset {offset:#x}: bit {bit} of {value:#010x}"),
            );
            return value ^ (1 << bit);
        }
        value
    }

    fn write(&mut self, offset: u32, value: u32) {
        let mut inj = self.injector.borrow_mut();
        let stored = if inj.decide(&self.site, self.plan.register.corrupt_write) {
            let forged = inj.rand_word(&self.site);
            inj.record(
                self.cycles,
                &self.site,
                FaultKind::CorruptWrite,
                format!("offset {offset:#x}: {value:#010x} -> {forged:#010x}"),
            );
            forged
        } else if inj.decide(&self.site, self.plan.bus.bit_flip) {
            let bit = inj.rand_bit(&self.site);
            inj.record(
                self.cycles,
                &self.site,
                FaultKind::BitFlipWrite,
                format!("offset {offset:#x}: bit {bit} of {value:#010x}"),
            );
            value ^ (1 << bit)
        } else {
            value
        };
        drop(inj);
        self.inner.write(offset, stored);
    }

    fn tick(&mut self) {
        self.cycles += 1;
        self.inner.tick();
    }

    fn irq_pending(&self) -> bool {
        let inner = self.inner.irq_pending();
        let mut inj = self.injector.borrow_mut();
        let out = if inner {
            if inj.decide(&self.site, self.plan.irq.drop) {
                inj.record(
                    self.cycles,
                    &self.site,
                    FaultKind::IrqDropped,
                    "pending irq masked for one sample".into(),
                );
                false
            } else {
                true
            }
        } else if self.irq_was_high.get() && inj.decide(&self.site, self.plan.irq.duplicate) {
            inj.record(
                self.cycles,
                &self.site,
                FaultKind::IrqDuplicated,
                "cleared irq re-asserted for one sample".into(),
            );
            true
        } else if inj.decide(&self.site, self.plan.irq.spurious) {
            inj.record(
                self.cycles,
                &self.site,
                FaultKind::IrqSpurious,
                "idle line asserted".into(),
            );
            true
        } else {
            false
        };
        self.irq_was_high.set(inner);
        out
    }

    fn wait_states(&self) -> u64 {
        self.inner.wait_states()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        // Transparent: typed `SystemBus::device` lookups reach the
        // wrapped device, so harnesses need not know whether a campaign
        // wrapped it.
        self.inner.as_any()
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self.inner.as_any_mut()
    }

    fn save_state(&self, w: &mut StateWriter) {
        // Wrapper clock and IRQ-edge latch first, then the wrapped
        // device's own state. The injector is shared across wrappers
        // and checkpointed separately by the run harness.
        w.u64(self.cycles);
        w.bool(self.irq_was_high.get());
        self.inner.save_state(w);
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), RtlError> {
        self.cycles = r.u64()?;
        self.irq_was_high.set(r.bool()?);
        self.inner.restore_state(r)
    }
}

/// A [`BusPhy`] wrapper injecting stuck transactions: with probability
/// `plan.bus.stuck`, a transaction occupies the bus for
/// `plan.bus.stuck_cycles` extra cycles (arbitration lost, a wedged
/// target inserting wait states).
///
/// Without an inner phy it reproduces the transaction-level timing a
/// bus uses when no physical layer is installed — exactly
/// [`BusTiming::transaction_cycles`], ignoring device wait states —
/// so installing a quiet `FaultyPhy` on a phy-less bus is
/// bit-identical to leaving the bus alone.
#[derive(Debug)]
pub struct FaultyPhy {
    inner: Option<Box<dyn BusPhy>>,
    timing: BusTiming,
    plan: FaultPlan,
    injector: SharedInjector,
    site: String,
    transactions: u64,
}

impl FaultyPhy {
    /// A stuck-transaction layer over transaction-level timing (no
    /// inner phy).
    #[must_use]
    pub fn new(timing: BusTiming, plan: FaultPlan, injector: SharedInjector) -> Self {
        FaultyPhy {
            inner: None,
            timing,
            plan,
            injector,
            site: "bus:phy".to_string(),
            transactions: 0,
        }
    }

    /// A stuck-transaction layer over an existing physical layer (e.g.
    /// the pin-protocol phy); `timing` is unused in this mode.
    #[must_use]
    pub fn over(inner: Box<dyn BusPhy>, plan: FaultPlan, injector: SharedInjector) -> Self {
        FaultyPhy {
            inner: Some(inner),
            timing: BusTiming::default(),
            plan,
            injector,
            site: "bus:phy".to_string(),
            transactions: 0,
        }
    }
}

impl BusPhy for FaultyPhy {
    fn transaction(&mut self, addr: u32, write: bool, value: u32, wait_states: u64) -> u64 {
        self.transactions += 1;
        let base = match self.inner.as_mut() {
            Some(phy) => phy.transaction(addr, write, value, wait_states),
            None => self.timing.transaction_cycles(),
        };
        let mut inj = self.injector.borrow_mut();
        if inj.decide(&self.site, self.plan.bus.stuck) {
            let extra = self.plan.bus.stuck_cycles;
            inj.record(
                self.transactions,
                &self.site,
                FaultKind::StuckTransaction,
                format!(
                    "{} {addr:#010x} held {extra} extra cycles",
                    if write { "write" } else { "read" }
                ),
            );
            base + extra
        } else {
            base
        }
    }

    fn events(&self) -> u64 {
        self.inner.as_ref().map_or(0, |phy| phy.events())
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.u64(self.transactions);
        if let Some(phy) = &self.inner {
            phy.save_state(w);
        }
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), RtlError> {
        self.transactions = r.u64()?;
        if let Some(phy) = self.inner.as_mut() {
            phy.restore_state(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_rtl::bus::{fifo_regs, DrainFifo, SystemBus};

    use crate::plan::{shared, BusRates, IrqRates, RegisterRates};

    fn faulty_bus(plan: FaultPlan, seed: u64) -> (SystemBus, SharedInjector) {
        let injector = shared(seed);
        let mut bus = SystemBus::new(BusTiming::default());
        bus.map(
            0x0,
            0x100,
            Box::new(FaultySlave::new(
                Box::new(DrainFifo::new(8, 10)),
                plan,
                injector.clone(),
            )),
        )
        .unwrap();
        (bus, injector)
    }

    #[test]
    fn quiet_slave_is_bit_identical_to_bare() {
        let mut bare = SystemBus::new(BusTiming::default());
        bare.map(0x0, 0x100, Box::new(DrainFifo::new(8, 10)))
            .unwrap();
        let (mut wrapped, injector) = faulty_bus(FaultPlan::quiet(), 1);
        for i in 0..32u32 {
            assert_eq!(
                bare.write(fifo_regs::DATA, i).unwrap(),
                wrapped.write(fifo_regs::DATA, i).unwrap()
            );
            bare.tick(3);
            wrapped.tick(3);
            assert_eq!(
                bare.read(fifo_regs::COUNT).unwrap(),
                wrapped.read(fifo_regs::COUNT).unwrap()
            );
        }
        assert_eq!(bare.stats(), wrapped.stats());
        assert_eq!(injector.borrow().count(), 0);
    }

    #[test]
    fn typed_device_lookup_sees_through_the_wrapper() {
        let (bus, _) = faulty_bus(FaultPlan::quiet(), 1);
        assert!(bus.device::<DrainFifo>().is_some());
    }

    #[test]
    fn corrupt_read_forges_the_word_and_records_it() {
        let plan = FaultPlan {
            register: RegisterRates {
                corrupt_read: 1.0,
                corrupt_write: 0.0,
            },
            ..FaultPlan::quiet()
        };
        let (mut bus, injector) = faulty_bus(plan, 7);
        bus.write(fifo_regs::DATA, 5).unwrap();
        let (count, _) = bus.read(fifo_regs::COUNT).unwrap();
        // The true count is 1; a rate-1.0 corrupt read forging exactly 1
        // for this seed would be astronomically unlucky.
        assert_ne!(count, 1);
        let inj = injector.borrow();
        assert_eq!(inj.count(), 1);
        assert_eq!(inj.records()[0].kind, FaultKind::CorruptRead);
    }

    #[test]
    fn bit_flip_read_changes_exactly_one_bit() {
        let plan = FaultPlan {
            bus: BusRates {
                bit_flip: 1.0,
                ..BusRates::default()
            },
            ..FaultPlan::quiet()
        };
        let (mut bus, _) = faulty_bus(plan, 3);
        for i in 0..8u32 {
            bus.write(fifo_regs::DATA, i).unwrap();
        }
        // Writes were bit-flipped too, but COUNT only counts words; read
        // the true count through the fifo and compare with the faulted
        // read's hamming distance.
        let truth = 8u32;
        let (read, _) = bus.read(fifo_regs::COUNT).unwrap();
        assert_eq!((read ^ truth).count_ones(), 1);
    }

    #[test]
    fn stuck_transactions_stretch_bus_cycles() {
        let plan = FaultPlan {
            bus: BusRates {
                stuck: 1.0,
                stuck_cycles: 40,
                ..BusRates::default()
            },
            ..FaultPlan::quiet()
        };
        let injector = shared(5);
        let mut bus = SystemBus::new(BusTiming::default());
        bus.map(0x0, 0x100, Box::new(DrainFifo::new(8, 10)))
            .unwrap();
        bus.set_phy(Box::new(FaultyPhy::new(
            BusTiming::default(),
            plan,
            injector.clone(),
        )));
        let cycles = bus.write(fifo_regs::DATA, 1).unwrap();
        assert_eq!(cycles, BusTiming::default().transaction_cycles() + 40);
        assert_eq!(
            injector.borrow().records()[0].kind,
            FaultKind::StuckTransaction
        );
    }

    #[test]
    fn quiet_phy_reproduces_transaction_level_timing() {
        let injector = shared(5);
        let mut bare = SystemBus::new(BusTiming::default());
        bare.map(0x0, 0x100, Box::new(DrainFifo::new(8, 10)))
            .unwrap();
        let mut wrapped = SystemBus::new(BusTiming::default());
        wrapped
            .map(0x0, 0x100, Box::new(DrainFifo::new(8, 10)))
            .unwrap();
        wrapped.set_phy(Box::new(FaultyPhy::new(
            BusTiming::default(),
            FaultPlan::quiet(),
            injector,
        )));
        assert_eq!(
            bare.write(fifo_regs::DATA, 9).unwrap(),
            wrapped.write(fifo_regs::DATA, 9).unwrap()
        );
        assert_eq!(
            bare.read(fifo_regs::COUNT).unwrap(),
            wrapped.read(fifo_regs::COUNT).unwrap()
        );
    }

    #[derive(Debug)]
    struct IrqProbe {
        pending: bool,
    }

    impl BusSlave for IrqProbe {
        fn name(&self) -> &str {
            "probe"
        }
        fn read(&mut self, _offset: u32) -> u32 {
            0
        }
        fn write(&mut self, _offset: u32, value: u32) {
            self.pending = value != 0;
        }
        fn irq_pending(&self) -> bool {
            self.pending
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn irq_slave(irq: IrqRates, seed: u64) -> (FaultySlave, SharedInjector) {
        let injector = shared(seed);
        let plan = FaultPlan {
            irq,
            ..FaultPlan::quiet()
        };
        (
            FaultySlave::new(
                Box::new(IrqProbe { pending: false }),
                plan,
                injector.clone(),
            ),
            injector,
        )
    }

    #[test]
    fn dropped_irq_masks_a_pending_line() {
        let (mut slave, injector) = irq_slave(
            IrqRates {
                drop: 1.0,
                ..IrqRates::default()
            },
            11,
        );
        slave.write(0, 1);
        assert!(!slave.irq_pending(), "pending irq should be masked");
        assert_eq!(injector.borrow().records()[0].kind, FaultKind::IrqDropped);
    }

    #[test]
    fn duplicated_irq_replays_after_the_line_clears() {
        let (mut slave, injector) = irq_slave(
            IrqRates {
                duplicate: 1.0,
                ..IrqRates::default()
            },
            11,
        );
        slave.write(0, 1);
        assert!(slave.irq_pending());
        slave.write(0, 0); // acked: inner line drops
        assert!(slave.irq_pending(), "cleared irq should replay once");
        assert_eq!(
            injector.borrow().records()[0].kind,
            FaultKind::IrqDuplicated
        );
    }

    #[test]
    fn spurious_irq_asserts_an_idle_line() {
        let (slave, injector) = irq_slave(
            IrqRates {
                spurious: 1.0,
                ..IrqRates::default()
            },
            11,
        );
        assert!(slave.irq_pending(), "idle line should assert spuriously");
        assert_eq!(injector.borrow().records()[0].kind, FaultKind::IrqSpurious);
    }

    #[test]
    fn quiet_irq_path_is_transparent() {
        let (mut slave, injector) = irq_slave(IrqRates::default(), 11);
        assert!(!slave.irq_pending());
        slave.write(0, 1);
        assert!(slave.irq_pending());
        slave.write(0, 0);
        assert!(!slave.irq_pending());
        assert_eq!(injector.borrow().count(), 0);
    }
}
