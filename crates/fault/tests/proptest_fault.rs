//! Property-based tests for the fault-injection contracts:
//!
//! 1. an empty [`FaultPlan`] is bit-identical to the un-instrumented
//!    baseline (wrappers are exact pass-throughs and consume no
//!    randomness);
//! 2. identical seeds yield identical campaigns (same outcomes, same
//!    fault records);
//! 3. the coordinator's no-progress watchdog never fires on healthy
//!    random engine mixes, including mixes wrapped in quiet fault
//!    wrappers.

use codesign_fault::{shared, FaultPlan, FaultyEngine, FaultyPhy, FaultySlave, MessageFaultHook};
use codesign_ir::workload::tgff::{random_process_network, NetworkConfig};
use codesign_rtl::bus::{fifo_regs, BusTiming, DrainFifo, SystemBus};
use codesign_sim::engine::{Coordinator, SimEngine};
use codesign_sim::message::{MessageConfig, MessageEngine, Placement, Resource};
use codesign_sim::SimError;
use proptest::prelude::*;

/// Busy until `work`, then done; optionally promises its completion
/// time (same scripted engine the sim crate's coordination properties
/// use).
#[derive(Debug)]
struct ScriptedWorker {
    name: String,
    work: u64,
    time: u64,
    hinted: bool,
}

impl SimEngine for ScriptedWorker {
    fn name(&self) -> &str {
        &self.name
    }
    fn local_time(&self) -> u64 {
        self.time
    }
    fn advance_to(&mut self, t: u64) -> Result<(), SimError> {
        self.time = t.min(self.work);
        Ok(())
    }
    fn is_done(&self) -> bool {
        self.time >= self.work
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn next_event_hint(&self) -> Option<u64> {
        self.hinted.then_some(self.work)
    }
}

fn arb_network() -> impl Strategy<Value = codesign_ir::process::ProcessNetwork> {
    (2usize..8, any::<u64>(), 0.0f64..1.0, 1u32..10).prop_map(
        |(processes, seed, channel_prob, iterations)| {
            random_process_network(&NetworkConfig {
                processes,
                seed,
                channel_prob,
                iterations,
                ..NetworkConfig::default()
            })
        },
    )
}

fn placement_from_seed(n: usize, seed: u64) -> Placement {
    let mut hw = 0u32;
    Placement::from_assignment(
        (0..n)
            .map(|i| {
                if (seed >> (i % 64)) & 1 == 1 {
                    hw += 1;
                    Resource::Hardware(hw - 1)
                } else {
                    Resource::Software(0)
                }
            })
            .collect(),
    )
}

/// Runs a network-engine under the (watchdog-armed) coordinator, with
/// an optional fault plan hooked in, and fingerprints everything
/// observable.
fn run_network(
    net: &codesign_ir::process::ProcessNetwork,
    placement: &Placement,
    plan: Option<(&FaultPlan, u64)>,
) -> String {
    let mut engine = MessageEngine::new(
        "net",
        net.clone(),
        placement.clone(),
        MessageConfig::default(),
    )
    .expect("valid placement");
    let mut fault_log = String::new();
    if let Some((plan, seed)) = plan {
        let injector = shared(seed);
        engine.set_faults(Box::new(MessageFaultHook::new(plan, injector.clone())));
        let mut coord = Coordinator::new(16);
        coord.add_engine(Box::new(engine));
        let mut fp = fingerprint(&mut coord);
        for r in injector.borrow().records() {
            fault_log.push_str(&format!("{:?};", r));
        }
        fp.push_str(&fault_log);
        fp
    } else {
        let mut coord = Coordinator::new(16);
        coord.add_engine(Box::new(engine));
        fingerprint(&mut coord)
    }
}

fn fingerprint(coord: &mut Coordinator) -> String {
    let mut fp = match coord.run(u64::MAX) {
        Ok(stats) => format!("ok@{};", stats.time),
        Err(e) => format!("{e:?};"),
    };
    for engine in coord.engines() {
        fp.push_str(&format!("{}@{}:", engine.name(), engine.local_time()));
        if let Some(m) = engine.as_any().downcast_ref::<MessageEngine>() {
            fp.push_str(&format!("{:?};", m.report()));
        }
    }
    fp
}

/// Drives `ops` through a bus and fingerprints every observable value
/// and cycle count. With `wrapped`, the fifo is behind a quiet
/// [`FaultySlave`] and the bus behind a quiet [`FaultyPhy`].
fn run_bus(ops: &[(bool, u8)], wrapped: bool) -> String {
    let injector = shared(99);
    let mut bus = SystemBus::new(BusTiming::default());
    let fifo = Box::new(DrainFifo::new(8, 7));
    if wrapped {
        bus.map(
            0x0,
            0x100,
            Box::new(FaultySlave::new(fifo, FaultPlan::quiet(), injector.clone())),
        )
        .unwrap();
        bus.set_phy(Box::new(FaultyPhy::new(
            BusTiming::default(),
            FaultPlan::quiet(),
            injector.clone(),
        )));
    } else {
        bus.map(0x0, 0x100, fifo).unwrap();
    }
    let mut fp = String::new();
    for &(is_read, v) in ops {
        let r = if is_read {
            bus.read(fifo_regs::COUNT)
        } else {
            bus.write(fifo_regs::DATA, u32::from(v)).map(|cyc| (0, cyc))
        };
        fp.push_str(&format!("{r:?};"));
        bus.tick(u64::from(v % 5));
    }
    fp.push_str(&format!("{:?};irqs={}", bus.stats(), bus.irq_pending()));
    if wrapped {
        assert_eq!(
            injector.borrow().count(),
            0,
            "quiet wrappers must not inject"
        );
    }
    fp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Contract 1a: an empty plan hooked into the message engine is
    /// bit-identical to no hook at all.
    #[test]
    fn empty_plan_message_runs_are_bit_identical(
        net in arb_network(),
        pseed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let placement = placement_from_seed(net.len(), pseed);
        let bare = run_network(&net, &placement, None);
        let quiet = run_network(&net, &placement, Some((&FaultPlan::quiet(), seed)));
        prop_assert_eq!(bare, quiet);
    }

    /// Contract 1b: quiet bus wrappers (slave and phy) are exact
    /// pass-throughs for arbitrary transaction sequences.
    #[test]
    fn empty_plan_bus_sequences_are_bit_identical(
        ops in prop::collection::vec((any::<bool>(), any::<u8>()), 1..64),
    ) {
        prop_assert_eq!(run_bus(&ops, false), run_bus(&ops, true));
    }

    /// Contract 2: identical seeds yield identical faulty outcomes and
    /// identical fault records, run to run.
    #[test]
    fn identical_seeds_yield_identical_campaign_runs(
        net in arb_network(),
        pseed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let placement = placement_from_seed(net.len(), pseed);
        let plan = FaultPlan::standard();
        let a = run_network(&net, &placement, Some((&plan, seed)));
        let b = run_network(&net, &placement, Some((&plan, seed)));
        prop_assert_eq!(a, b);
    }

    /// Contract 3: the default-on watchdog stays silent on healthy
    /// random engine mixes — message networks plus hinted/hint-free
    /// scripted workers, some behind quiet fault wrappers.
    #[test]
    fn watchdog_never_fires_on_healthy_mixes(
        net in arb_network(),
        pseed in any::<u64>(),
        workers in prop::collection::vec((0u64..600, any::<bool>(), any::<bool>()), 0..4),
        quantum in 1u64..64,
    ) {
        let placement = placement_from_seed(net.len(), pseed);
        let injector = shared(1);
        let mut coord = Coordinator::new(quantum);
        coord.add_engine(Box::new(
            MessageEngine::new("net", net.clone(), placement, MessageConfig::default())
                .expect("valid placement"),
        ));
        for (i, &(work, hinted, wrap)) in workers.iter().enumerate() {
            let worker = Box::new(ScriptedWorker {
                name: format!("w{i}"),
                work,
                time: 0,
                hinted,
            });
            if wrap {
                coord.add_engine(Box::new(FaultyEngine::new(
                    worker,
                    injector.clone(),
                    0.0,
                    0.0,
                )));
            } else {
                coord.add_engine(worker);
            }
        }
        let result = coord.run(u64::MAX);
        prop_assert!(
            !matches!(result, Err(SimError::Watchdog { .. })),
            "watchdog fired on a healthy mix: {result:?}"
        );
        prop_assert!(result.is_ok(), "healthy mix failed: {result:?}");
    }
}
