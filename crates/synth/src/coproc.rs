//! Application-specific co-processor co-synthesis (paper Section 4.5,
//! Figure 8).
//!
//! The complete Type II flow over a kernel application:
//!
//! 1. [`characterize`] — measure each kernel's *software* cost by
//!    compiling it with `codesign-isa` and executing it on the
//!    instruction-set simulator, and its *hardware* cost by synthesizing
//!    it with `codesign-hls`; build the task graph from those measured
//!    numbers (not estimates of estimates).
//! 2. [`partition_app`] — run any `codesign-partition` algorithm under
//!    any objective over the characterized graph.
//! 3. [`realize`] — build the partitioned system and run it: hardware
//!    kernels become FSMD co-processors behind bus ports driven by
//!    generated operand-marshalling stubs; software kernels run as
//!    compiled CR32 programs; every result is verified against the CDFG
//!    interpreter. The total measured cycles include the real MMIO
//!    traffic, so "communication overhead" is observed, not modeled.

use codesign_hls::{synthesize, Constraints, SynthesisResult};
use codesign_ir::cdfg::Cdfg;
use codesign_ir::task::{Task, TaskGraph, TaskId};
use codesign_isa::asm::assemble;
use codesign_isa::codegen::{compile, CompiledKernel};
use codesign_isa::cpu::{Cpu, MMIO_BASE};
use codesign_partition::algorithms::{
    gclp, hw_first, kernighan_lin, portfolio, simulated_annealing, sw_first, AnnealingSchedule,
};
use codesign_partition::area::{HwAreaModel, NaiveArea, SharedArea};
use codesign_partition::cost::Objective;
use codesign_partition::eval::{EvalConfig, Evaluation};
use codesign_partition::{Partition, Side};
use codesign_rtl::bus::{coproc_regs, BusTiming, CoprocessorPort, SystemBus};
use codesign_rtl::fsmd::FsmdSim;
use codesign_trace::{Arg, Tracer};

use crate::error::SynthError;

/// One kernel invocation pattern in the application.
#[derive(Debug, Clone)]
pub struct AppTask {
    /// The kernel.
    pub kernel: Cdfg,
    /// How many times it runs per application iteration.
    pub invocations: u64,
    /// Inputs used both for characterization and verification.
    pub inputs: Vec<i64>,
}

/// A kernel application: independent tasks invoked repeatedly (the
/// "computationally intensive tasks" the co-processor off-loads).
#[derive(Debug, Clone)]
pub struct Application {
    /// The tasks.
    pub tasks: Vec<AppTask>,
}

impl Application {
    /// The default DSP suite: every library kernel with deterministic
    /// small inputs (small enough to survive the 32-bit co-processor
    /// port unchanged).
    #[must_use]
    pub fn dsp_suite() -> Self {
        let tasks = codesign_ir::workload::kernels::all()
            .into_iter()
            .map(|kernel| {
                let inputs: Vec<i64> = (0..kernel.input_count())
                    .map(|i| (i as i64 * 7 - 11) % 50)
                    .collect();
                AppTask {
                    kernel,
                    invocations: 50,
                    inputs,
                }
            })
            .collect();
        Application { tasks }
    }
}

/// The application with measured software and synthesized hardware costs.
#[derive(Debug)]
pub struct CharacterizedApp {
    graph: TaskGraph,
    tasks: Vec<AppTask>,
    compiled: Vec<CompiledKernel>,
    synthesized: Vec<SynthesisResult>,
    /// Measured single-invocation software cycles per task.
    sw_cycles_once: Vec<u64>,
}

impl CharacterizedApp {
    /// The measured task graph.
    #[must_use]
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    /// The synthesized hardware implementation of one task.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn synthesized(&self, t: TaskId) -> &SynthesisResult {
        &self.synthesized[t.index()]
    }
}

/// Fixed per-invocation MMIO overhead estimate used during
/// characterization: one 32-bit write per input, start, one status poll,
/// one read per output, each a bus transaction.
fn mmio_overhead(kernel: &Cdfg, bus_cycles_per_txn: u64) -> u64 {
    (kernel.input_count() as u64 + 2 + kernel.output_count() as u64) * bus_cycles_per_txn
}

/// Measures software cost on the ISS and hardware cost through HLS for
/// every task; returns the characterized application.
///
/// # Errors
///
/// Propagates compilation, execution, and synthesis failures.
pub fn characterize(app: &Application) -> Result<CharacterizedApp, SynthError> {
    let bus_txn = BusTiming::default().transaction_cycles();
    let mut graph = TaskGraph::new("coproc_app");
    let mut compiled = Vec::new();
    let mut synthesized = Vec::new();
    let mut sw_once = Vec::new();
    for t in &app.tasks {
        let ck = compile(&t.kernel)?;
        let (out, stats) = ck.execute(&t.inputs)?;
        let expected = t.kernel.evaluate(&t.inputs)?;
        if out != expected {
            return Err(SynthError::BadSpec {
                reason: format!("kernel {} compiles incorrectly", t.kernel.name()),
            });
        }
        let hw = synthesize(&t.kernel, &Constraints::default())?;
        let hw_cycles = (hw.latency + mmio_overhead(&t.kernel, bus_txn)) * t.invocations;
        graph.add_task(
            Task::new(t.kernel.name(), stats.cycles * t.invocations)
                .with_hw_cycles(hw_cycles)
                .with_hw_area(hw.area)
                .with_kernel(t.kernel.name()),
        );
        sw_once.push(stats.cycles);
        compiled.push(ck);
        synthesized.push(hw);
    }
    Ok(CharacterizedApp {
        graph,
        tasks: app.tasks.clone(),
        compiled,
        synthesized,
        sw_cycles_once: sw_once,
    })
}

/// The characterized application as a message-level process network
/// (the top of the paper's Figure 3 applied to the Figure 8 scenario):
/// each kernel becomes a pipeline process that computes a frame of
/// `batch` back-to-back invocations at its *measured* software cost and
/// ships the batched outputs to a collector process, `invocations`
/// frames over buffered channels. Block processing is the usual DSP
/// pipeline shape — the batch amortizes per-message synchronization the
/// same way frames amortize interrupt overhead on real hardware.
/// Returns the network plus per-process hardware speedups (measured
/// software cycles over synthesized datapath latency, 1.0 for the
/// collector), so placing a process in hardware via
/// `MessageConfig::hw_speedups` reproduces the characterized speedup.
/// The co-simulation benchmarks mount this as a `MessageEngine` under a
/// `Coordinator`.
#[must_use]
pub fn process_network(
    app: &CharacterizedApp,
    invocations: u32,
    batch: u32,
) -> (codesign_ir::process::ProcessNetwork, Vec<f64>) {
    use codesign_ir::process::{Action, Process, ProcessNetwork};
    let batch = batch.max(1);
    let mut net = ProcessNetwork::new("dsp_coprocessor");
    let mut speedups = Vec::new();
    let mut collector_actions = Vec::new();
    for (i, t) in app.tasks.iter().enumerate() {
        let ch = net.add_channel(format!("out:{}", t.kernel.name()), 1);
        let bytes = 8 * u64::from(batch) * t.kernel.output_count() as u64;
        net.add_process(
            Process::new(
                t.kernel.name(),
                vec![
                    Action::Compute(app.sw_cycles_once[i] * u64::from(batch)),
                    Action::Send { channel: ch, bytes },
                ],
            )
            .with_iterations(invocations),
        );
        collector_actions.push(Action::Receive { channel: ch });
        let hw_latency = app.synthesized[i].latency.max(1);
        speedups.push((app.sw_cycles_once[i] as f64 / hw_latency as f64).max(1.0));
    }
    net.add_process(Process::new("collector", collector_actions).with_iterations(invocations));
    speedups.push(1.0);
    (net, speedups)
}

/// Which partitioning algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// COSYMA-style software-first greedy.
    SwFirst,
    /// Vulcan-style hardware-first greedy.
    HwFirst,
    /// Kernighan–Lin pass improvement.
    KernighanLin,
    /// Global criticality / local phase.
    Gclp,
    /// Simulated annealing with the given seed.
    Annealing(u64),
    /// Race every algorithm concurrently and keep the best result.
    Portfolio,
}

/// Partitions a characterized application.
///
/// `sharing_aware` selects the Vahid–Gajski shared-area estimator \[18\]
/// instead of the naive per-task sum — the E8 ablation.
///
/// # Errors
///
/// Propagates partitioning failures.
pub fn partition_app(
    app: &CharacterizedApp,
    objective: Objective,
    algorithm: Algorithm,
    sharing_aware: bool,
) -> Result<(Partition, Evaluation), SynthError> {
    let shared;
    let naive = NaiveArea;
    let model: &dyn HwAreaModel = if sharing_aware {
        shared = SharedArea::from_graph(&app.graph);
        &shared
    } else {
        &naive
    };
    let config = EvalConfig::new(objective, model);
    let result = match algorithm {
        Algorithm::SwFirst => sw_first(&app.graph, &config),
        Algorithm::HwFirst => hw_first(&app.graph, &config),
        Algorithm::KernighanLin => kernighan_lin(&app.graph, &config),
        Algorithm::Gclp => gclp(&app.graph, &config),
        Algorithm::Annealing(seed) => {
            simulated_annealing(&app.graph, &config, &AnnealingSchedule::default(), seed)
        }
        Algorithm::Portfolio => portfolio(&app.graph, &config),
    }?;
    Ok(result)
}

/// Measured outcome of executing the partitioned system.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedRunReport {
    /// Total cycles for one application iteration of every task,
    /// multiplied by invocation counts.
    pub total_cycles: u64,
    /// Cycles spent in bus transactions (hardware tasks only).
    pub bus_cycles: u64,
    /// Per task: `(name, side, cycles for all invocations)`.
    pub per_task: Vec<(String, Side, u64)>,
    /// Every task's outputs matched the CDFG interpreter.
    pub verified: bool,
}

/// Builds and executes the partitioned system: software tasks run as
/// compiled kernels, hardware tasks as bus-mounted FSMD co-processors
/// driven by generated marshalling stubs. Each task executes once on the
/// ISS for verification and cycle measurement; totals scale by
/// invocation counts.
///
/// # Errors
///
/// Propagates assembly/execution errors, and returns
/// [`SynthError::BadSpec`] if any output disagrees with the interpreter.
pub fn realize(
    app: &CharacterizedApp,
    partition: &Partition,
) -> Result<MixedRunReport, SynthError> {
    realize_traced(app, partition, &Tracer::off())
}

/// [`realize`] with a [`Tracer`]: each task becomes a span on the
/// `coproc` track — laid out end to end in cumulative application cycles,
/// with its side, bus cycles, and invocation count as arguments — and
/// hardware tasks additionally trace their stub's real MMIO transactions
/// on a per-task bus track. Tracing is observational only.
///
/// # Errors
///
/// As for [`realize`].
pub fn realize_traced(
    app: &CharacterizedApp,
    partition: &Partition,
    tracer: &Tracer,
) -> Result<MixedRunReport, SynthError> {
    if partition.len() != app.graph.len() {
        return Err(SynthError::BadSpec {
            reason: "partition does not cover the application".to_string(),
        });
    }
    let mut report = MixedRunReport {
        total_cycles: 0,
        bus_cycles: 0,
        per_task: Vec::new(),
        verified: true,
    };
    let track = tracer.track("coproc");
    for (i, task) in app.tasks.iter().enumerate() {
        let id = TaskId::from_index(i);
        let expected = task.kernel.evaluate(&task.inputs)?;
        let (cycles_once, bus_once, got) = match partition.side(id) {
            Side::Sw => {
                let (out, stats) = app.compiled[i].execute(&task.inputs)?;
                debug_assert_eq!(stats.cycles, app.sw_cycles_once[i]);
                (stats.cycles, 0, out)
            }
            Side::Hw => run_hw_task(app, i, task, tracer)?,
        };
        if tracer.is_on() {
            tracer.span(
                track,
                task.kernel.name(),
                report.total_cycles,
                (cycles_once * task.invocations).max(1),
                &[
                    (
                        "side",
                        Arg::from(match partition.side(id) {
                            Side::Sw => "sw",
                            Side::Hw => "hw",
                        }),
                    ),
                    ("bus_cycles", Arg::from(bus_once * task.invocations)),
                    ("invocations", Arg::from(task.invocations)),
                ],
            );
        }
        // The co-processor port is 32 bits wide; verification compares
        // modulo 2^32 for hardware tasks (the software path is exact).
        let ok = match partition.side(id) {
            Side::Sw => got == expected,
            Side::Hw => got
                .iter()
                .zip(&expected)
                .all(|(a, b)| (*a as u32) == (*b as u32)),
        };
        if !ok {
            report.verified = false;
        }
        let total = cycles_once * task.invocations;
        report.total_cycles += total;
        report.bus_cycles += bus_once * task.invocations;
        report
            .per_task
            .push((task.kernel.name().to_string(), partition.side(id), total));
    }
    Ok(report)
}

/// Runs one hardware task: mounts the synthesized FSMD on a bus and
/// executes the generated operand-marshalling stub.
fn run_hw_task(
    app: &CharacterizedApp,
    index: usize,
    task: &AppTask,
    tracer: &Tracer,
) -> Result<(u64, u64, Vec<i64>), SynthError> {
    let fsmd = app.synthesized[index].fsmd.clone();
    let mut bus = SystemBus::new(BusTiming::default());
    bus.set_tracer(tracer, &format!("hw:{}:bus", task.kernel.name()));
    bus.map(
        0x0,
        0x10000,
        Box::new(CoprocessorPort::new(FsmdSim::new(fsmd)?)),
    )?;

    // Stub: load each input from memory, write to the port, start, poll,
    // read each output back to memory.
    use std::fmt::Write as _;
    let mut src = String::new();
    let _ = writeln!(src, "    li r10, {MMIO_BASE}");
    for i in 0..task.kernel.input_count() {
        let _ = writeln!(src, "    ld r11, r0, {}", 0x100 + 8 * i);
        let _ = writeln!(
            src,
            "    sw r11, r10, {}",
            coproc_regs::INPUT_BASE + 4 * i as u32
        );
    }
    let _ = writeln!(src, "    sw r10, r10, {}", coproc_regs::START);
    let _ = writeln!(src, "poll:");
    let _ = writeln!(src, "    lw r11, r10, {}", coproc_regs::STATUS);
    let _ = writeln!(src, "    beq r11, r0, poll");
    for j in 0..task.kernel.output_count() {
        let _ = writeln!(
            src,
            "    lw r11, r10, {}",
            coproc_regs::OUTPUT_BASE + 4 * j as u32
        );
        let _ = writeln!(src, "    sd r11, r0, {}", 0x800 + 8 * j);
    }
    let _ = writeln!(src, "    halt");
    let program = assemble(&src)?;

    let mut cpu = Cpu::new(0x10000);
    cpu.attach_bus(bus);
    cpu.load_program(&program);
    for (i, &v) in task.inputs.iter().enumerate() {
        cpu.store_word(0x100 + 8 * i as u64, v)?;
    }
    let stats = cpu.run(10_000_000)?;
    let out: Result<Vec<i64>, _> = (0..task.kernel.output_count())
        .map(|j| cpu.load_word(0x800 + 8 * j as u64))
        .collect();
    Ok((stats.cycles, stats.bus_cycles, out?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_app() -> Application {
        let mut app = Application::dsp_suite();
        app.tasks.truncate(5); // fir, iir, fft4, dct8, matmul
        app
    }

    #[test]
    fn characterization_measures_real_costs() {
        let app = characterize(&small_app()).unwrap();
        let g = app.graph();
        assert_eq!(g.len(), 5);
        for (_, t) in g.iter() {
            assert!(t.sw_cycles() > 0 && t.hw_cycles() > 0, "{}", t.name());
            assert!(t.hw_area() > 0.0);
        }
        // Compute-heavy kernels win in hardware even after paying MMIO…
        for name in ["dct8", "matmul3"] {
            let t = g.iter().find(|(_, t)| t.name() == name).unwrap().1;
            assert!(t.hw_cycles() < t.sw_cycles(), "{name}");
        }
        // …while tiny kernels can be communication-dominated (Section 3.3:
        // transfer overhead can erase the hardware advantage).
        let fft = g.iter().find(|(_, t)| t.name() == "fft4").unwrap().1;
        assert!(fft.hw_cycles() * 3 > fft.sw_cycles(), "fft4 is comm-bound");
    }

    #[test]
    fn all_sw_realization_matches_characterized_costs() {
        let app = characterize(&small_app()).unwrap();
        let report = realize(&app, &Partition::all_sw(5)).unwrap();
        assert!(report.verified);
        assert_eq!(report.total_cycles, app.graph().total_sw_cycles());
        assert_eq!(report.bus_cycles, 0);
    }

    #[test]
    fn all_hw_realization_is_faster_and_verified() {
        let app = characterize(&small_app()).unwrap();
        let sw = realize(&app, &Partition::all_sw(5)).unwrap();
        let hw = realize(&app, &Partition::all_hw(5)).unwrap();
        assert!(hw.verified, "hardware outputs must match the interpreter");
        assert!(
            hw.total_cycles < sw.total_cycles,
            "hw {} vs sw {}",
            hw.total_cycles,
            sw.total_cycles
        );
        assert!(hw.bus_cycles > 0, "hardware pays real MMIO traffic");
    }

    #[test]
    fn partitioned_system_meets_deadline_cheaper_than_all_hw() {
        let app = characterize(&small_app()).unwrap();
        let g = app.graph();
        let all_hw_time: u64 = g.iter().map(|(_, t)| t.hw_cycles()).sum();
        let deadline = all_hw_time + (g.total_sw_cycles() - all_hw_time) / 3;
        let (partition, eval) = partition_app(
            &app,
            Objective::cost_driven(deadline),
            Algorithm::HwFirst,
            false,
        )
        .unwrap();
        assert!(eval.meets_deadline);
        assert!(partition.hw_count() < 5, "some tasks moved back to sw");
        let report = realize(&app, &partition).unwrap();
        assert!(report.verified);
    }

    #[test]
    fn sharing_aware_estimation_admits_more_hardware() {
        let app = characterize(&small_app()).unwrap();
        let g = app.graph();
        let all_hw_time: u64 = g.iter().map(|(_, t)| t.hw_cycles()).sum();
        let deadline = all_hw_time * 2;
        let objective = Objective::cost_driven(deadline);
        let (p_naive, _) =
            partition_app(&app, objective.clone(), Algorithm::KernighanLin, false).unwrap();
        let (p_shared, _) = partition_app(&app, objective, Algorithm::KernighanLin, true).unwrap();
        assert!(
            p_shared.hw_count() >= p_naive.hw_count(),
            "sharing makes hardware cheaper: {} vs {}",
            p_shared.hw_count(),
            p_naive.hw_count()
        );
    }

    #[test]
    fn traced_realization_matches_untraced() {
        let app = characterize(&small_app()).unwrap();
        let mut partition = Partition::all_sw(5);
        partition.flip(TaskId::from_index(3)); // one hw task
        let plain = realize(&app, &partition).unwrap();
        let tracer = Tracer::on();
        let traced = realize_traced(&app, &partition, &tracer).unwrap();
        assert_eq!(plain, traced);
        // One span per task plus the hw task's bus transactions.
        assert!(tracer.event_count() > 5);
        codesign_trace::validate_chrome_trace(&tracer.to_chrome_json()).unwrap();
    }

    #[test]
    fn bad_partition_size_rejected() {
        let app = characterize(&small_app()).unwrap();
        assert!(matches!(
            realize(&app, &Partition::all_sw(2)),
            Err(SynthError::BadSpec { .. })
        ));
    }
}
