//! Multi-threaded co-processor co-synthesis (paper Section 4.5.1,
//! Figure 9).
//!
//! "A slight generalization of the custom co-processor arrangement is one
//! in which the custom co-processor … comprise\[s\] more than one
//! controller and datapath and, consequently, is able to implement
//! concurrent threads of control." Partitioning such systems, after
//! Adams & Thomas's multiple-process behavioral synthesis \[10\],
//! "considers minimizing the communication between the hardware and
//! software components and maximizing the concurrency between them".
//!
//! Here the specification is a `codesign-ir` process network. Software
//! processes share the CPU; each hardware process gets its own
//! controller/datapath pair. Candidate placements are evaluated by
//! message-level co-simulation \[3\], which naturally charges cross
//! -boundary messages and rewards concurrency — so the [`comm_aware`]
//! search optimizes exactly what the paper says matters, and the
//! [`compute_only`] search (which ranks processes by raw compute, the
//! naive strategy) is its E9 ablation.

use codesign_hls::{synthesize, Constraints};
use codesign_ir::process::{ProcessId, ProcessNetwork};
use codesign_ir::workload::kernels;
use codesign_isa::codegen::compile;
use codesign_sim::message::{
    simulate, simulate_traced, MessageConfig, MessageReport, Placement, Resource,
};
use codesign_trace::{Arg, Tracer};

use crate::error::SynthError;

/// Configuration for multi-threaded co-processor partitioning.
#[derive(Debug, Clone)]
pub struct MthreadConfig {
    /// Maximum hardware processes (controller/datapath pairs the area
    /// budget affords).
    pub max_hw_processes: usize,
    /// Co-simulation parameters (communication model, hardware speedup,
    /// context switch).
    pub sim: MessageConfig,
}

impl Default for MthreadConfig {
    fn default() -> Self {
        MthreadConfig {
            max_hw_processes: 2,
            sim: MessageConfig::default(),
        }
    }
}

/// A chosen placement and its simulated behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct MthreadOutcome {
    /// The process placement.
    pub placement: Placement,
    /// Message-level co-simulation report.
    pub report: MessageReport,
    /// Indices of the hardware processes.
    pub hw_processes: Vec<usize>,
}

/// Builds the placement implied by a hardware process set: each listed
/// process gets its own controller/datapath pair, everything else shares
/// software processor 0. Public so callers that evaluate placements
/// outside the greedy search (e.g. the co-simulation benchmarks mounting
/// a network under a `Coordinator`) build them identically.
#[must_use]
pub fn placement_for(net: &ProcessNetwork, hw: &[usize]) -> Placement {
    let mut next_hw = 0u32;
    let assignment = (0..net.len())
        .map(|i| {
            if hw.contains(&i) {
                let r = Resource::Hardware(next_hw);
                next_hw += 1;
                r
            } else {
                Resource::Software(0)
            }
        })
        .collect();
    Placement::from_assignment(assignment)
}

/// Greedy communication/concurrency-aware partitioning: starting
/// all-software, repeatedly apply the single- or pair-move that most
/// reduces the *simulated* finish time (which accounts for boundary
/// traffic and overlap), until the hardware budget is filled or no move
/// helps. The pair lookahead matters for chatty process pairs: moving
/// one alone drags their channel across the boundary, so only a joint
/// move reveals the gain — exactly the communication-localizing behavior
/// the paper attributes to \[10\].
///
/// # Errors
///
/// Propagates co-simulation failures.
pub fn comm_aware(net: &ProcessNetwork, cfg: &MthreadConfig) -> Result<MthreadOutcome, SynthError> {
    comm_aware_traced(net, cfg, &Tracer::off())
}

/// [`comm_aware`] with a [`Tracer`]: every candidate placement the greedy
/// search evaluates becomes an instant event on the `mthread-search`
/// track (timestamped by evaluation index, with the tried move and its
/// simulated finish time as arguments), each accepted move an instant
/// named `accept`, and the winning placement is re-simulated with the
/// tracer so its full message-level trace is captured. Tracing is
/// observational only; the search result is identical either way.
///
/// # Errors
///
/// As for [`comm_aware`].
pub fn comm_aware_traced(
    net: &ProcessNetwork,
    cfg: &MthreadConfig,
    tracer: &Tracer,
) -> Result<MthreadOutcome, SynthError> {
    let n = net.len();
    let budget = cfg.max_hw_processes.min(n);
    let track = tracer.track("mthread-search");
    let evals = std::cell::Cell::new(0u64);
    let mut hw: Vec<usize> = Vec::new();
    let mut best = simulate(net, &placement_for(net, &hw), &cfg.sim)?;
    loop {
        let mut improvement: Option<(Vec<usize>, MessageReport)> = None;
        let consider = |added: Vec<usize>,
                        improvement: &mut Option<(Vec<usize>, MessageReport)>|
         -> Result<(), SynthError> {
            let mut candidate = hw.clone();
            candidate.extend(&added);
            let report = simulate(net, &placement_for(net, &candidate), &cfg.sim)?;
            if tracer.is_on() {
                tracer.instant(
                    track,
                    "candidate",
                    evals.get(),
                    &[
                        ("moved", Arg::from(format!("{added:?}"))),
                        ("finish_time", Arg::from(report.finish_time)),
                        ("cross_bytes", Arg::from(report.cross_boundary_bytes)),
                    ],
                );
            }
            evals.set(evals.get() + 1);
            // Prefer the smaller move on equal finish times.
            let better = report.finish_time < best.finish_time
                && improvement.as_ref().is_none_or(|(moved, r)| {
                    report.finish_time < r.finish_time
                        || (report.finish_time == r.finish_time && added.len() < moved.len())
                });
            if better {
                *improvement = Some((added, report));
            }
            Ok(())
        };
        if hw.len() < budget {
            for p in 0..n {
                if !hw.contains(&p) {
                    consider(vec![p], &mut improvement)?;
                }
            }
        }
        if hw.len() + 2 <= budget {
            for p in 0..n {
                for q in p + 1..n {
                    if !hw.contains(&p) && !hw.contains(&q) {
                        consider(vec![p, q], &mut improvement)?;
                    }
                }
            }
        }
        match improvement {
            Some((added, report)) => {
                if tracer.is_on() {
                    tracer.instant(
                        track,
                        "accept",
                        evals.get(),
                        &[
                            ("moved", Arg::from(format!("{added:?}"))),
                            ("finish_time", Arg::from(report.finish_time)),
                        ],
                    );
                }
                hw.extend(added);
                best = report;
            }
            None => break,
        }
    }
    let placement = placement_for(net, &hw);
    if tracer.is_on() {
        // Capture the winning placement's full message-level trace.
        best = simulate_traced(net, &placement, &cfg.sim, tracer)?;
    }
    Ok(MthreadOutcome {
        placement,
        report: best,
        hw_processes: hw,
    })
}

/// Calibrates per-process hardware speedups from each process's kernel:
/// the kernel is compiled and *measured* on the instruction-set
/// simulator (software side) and synthesized by behavioral synthesis
/// (hardware side); the speedup is their ratio. Processes without a
/// kernel keep the configured default — this is the multiple-process
/// behavioral synthesis discipline of \[10\], where each hardware thread
/// of control is a synthesized controller/datapath pair, not an assumed
/// constant. Also returns the per-process standalone hardware area (0
/// for kernel-less processes), which *adds* across a multi-threaded
/// co-processor's concurrent pairs.
///
/// # Errors
///
/// Propagates compilation, execution, and synthesis failures.
pub fn calibrate(
    net: &ProcessNetwork,
    default_speedup: f64,
) -> Result<(Vec<f64>, Vec<f64>), SynthError> {
    let mut speedups = Vec::with_capacity(net.len());
    let mut areas = Vec::with_capacity(net.len());
    for (_, process) in net.iter() {
        match process.kernel().and_then(kernels::by_name) {
            Some(kernel) => {
                let compiled = compile(&kernel)?;
                let inputs: Vec<i64> = (0..kernel.input_count())
                    .map(|i| i as i64 % 13 - 6)
                    .collect();
                let (_, stats) = compiled.execute(&inputs)?;
                let hw = synthesize(&kernel, &Constraints::default())?;
                speedups.push((stats.cycles as f64 / hw.latency.max(1) as f64).max(1.0));
                areas.push(hw.area);
            }
            None => {
                speedups.push(default_speedup);
                areas.push(0.0);
            }
        }
    }
    Ok((speedups, areas))
}

/// [`comm_aware`] with calibrated speedups: runs [`calibrate`] first and
/// feeds the measured per-process speedups into the co-simulation, then
/// reports the placement together with the hardware area its
/// controller/datapath pairs occupy (areas add — concurrent pairs cannot
/// share functional units).
///
/// # Errors
///
/// Propagates calibration and co-simulation failures.
pub fn comm_aware_calibrated(
    net: &ProcessNetwork,
    cfg: &MthreadConfig,
) -> Result<(MthreadOutcome, f64), SynthError> {
    let (speedups, areas) = calibrate(net, cfg.sim.hw_speedup)?;
    let mut calibrated = cfg.clone();
    calibrated.sim.hw_speedups = Some(speedups);
    let outcome = comm_aware(net, &calibrated)?;
    let hw_area: f64 = outcome.hw_processes.iter().map(|&p| areas[p]).sum();
    Ok((outcome, hw_area))
}

/// The naive strategy: fill the hardware budget with the processes that
/// have the most raw compute, ignoring communication and concurrency —
/// the ablation arm of experiment E9.
///
/// # Errors
///
/// Propagates co-simulation failures.
pub fn compute_only(
    net: &ProcessNetwork,
    cfg: &MthreadConfig,
) -> Result<MthreadOutcome, SynthError> {
    let mut by_compute: Vec<usize> = (0..net.len()).collect();
    by_compute
        .sort_by_key(|&i| std::cmp::Reverse(net.process(ProcessId::from_index(i)).total_compute()));
    let hw: Vec<usize> = by_compute
        .into_iter()
        .take(cfg.max_hw_processes.min(net.len()))
        .collect();
    let placement = placement_for(net, &hw);
    let report = simulate(net, &placement, &cfg.sim)?;
    Ok(MthreadOutcome {
        placement,
        report,
        hw_processes: hw,
    })
}

/// Exhaustive search over every subset within the hardware budget —
/// the reference optimum for small networks.
///
/// # Errors
///
/// Propagates co-simulation failures; returns
/// [`SynthError::Infeasible`] for empty networks.
pub fn exhaustive(net: &ProcessNetwork, cfg: &MthreadConfig) -> Result<MthreadOutcome, SynthError> {
    let n = net.len();
    if n == 0 {
        return Err(SynthError::Infeasible {
            reason: "empty process network".to_string(),
        });
    }
    let mut best: Option<MthreadOutcome> = None;
    for mask in 0u64..(1 << n) {
        let hw: Vec<usize> = (0..n).filter(|i| mask >> i & 1 == 1).collect();
        if hw.len() > cfg.max_hw_processes {
            continue;
        }
        let placement = placement_for(net, &hw);
        let report = simulate(net, &placement, &cfg.sim)?;
        if best
            .as_ref()
            .is_none_or(|b| report.finish_time < b.report.finish_time)
        {
            best = Some(MthreadOutcome {
                placement,
                report,
                hw_processes: hw,
            });
        }
    }
    Ok(best.expect("at least the empty subset was evaluated"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_ir::process::{Action, Process};
    use codesign_ir::workload::tgff::{random_process_network, NetworkConfig};

    fn pipeline() -> ProcessNetwork {
        // Four stages: two heavy compute stages chatting over a heavy
        // channel, and two light ones.
        let mut net = ProcessNetwork::new("pipe");
        let c01 = net.add_channel("c01", 0);
        let c12 = net.add_channel("c12", 0);
        let c23 = net.add_channel("c23", 0);
        net.add_process(
            Process::new(
                "src",
                vec![
                    Action::Compute(200),
                    Action::Send {
                        channel: c01,
                        bytes: 16,
                    },
                ],
            )
            .with_iterations(16),
        );
        net.add_process(
            Process::new(
                "heavy_a",
                vec![
                    Action::Receive { channel: c01 },
                    Action::Compute(5_000),
                    Action::Send {
                        channel: c12,
                        bytes: 2_048,
                    },
                ],
            )
            .with_iterations(16),
        );
        net.add_process(
            Process::new(
                "heavy_b",
                vec![
                    Action::Receive { channel: c12 },
                    Action::Compute(5_000),
                    Action::Send {
                        channel: c23,
                        bytes: 16,
                    },
                ],
            )
            .with_iterations(16),
        );
        net.add_process(
            Process::new(
                "sink",
                vec![Action::Receive { channel: c23 }, Action::Compute(100)],
            )
            .with_iterations(16),
        );
        net
    }

    #[test]
    fn comm_aware_beats_all_software() {
        let net = pipeline();
        let cfg = MthreadConfig::default();
        let all_sw = simulate(&net, &Placement::all_software(net.len()), &cfg.sim).unwrap();
        let outcome = comm_aware(&net, &cfg).unwrap();
        assert!(
            outcome.report.finish_time < all_sw.finish_time,
            "{} vs {}",
            outcome.report.finish_time,
            all_sw.finish_time
        );
        assert!(!outcome.hw_processes.is_empty());
    }

    #[test]
    fn comm_aware_never_loses_to_compute_only() {
        for seed in [1, 2, 3, 4] {
            let net = random_process_network(&NetworkConfig {
                processes: 6,
                seed,
                ..NetworkConfig::default()
            });
            let cfg = MthreadConfig::default();
            let aware = comm_aware(&net, &cfg).unwrap();
            let naive = compute_only(&net, &cfg).unwrap();
            assert!(
                aware.report.finish_time <= naive.report.finish_time,
                "seed {seed}: aware {} vs naive {}",
                aware.report.finish_time,
                naive.report.finish_time
            );
        }
    }

    #[test]
    fn comm_aware_moves_chatty_pair_together() {
        let net = pipeline();
        let cfg = MthreadConfig {
            max_hw_processes: 2,
            ..MthreadConfig::default()
        };
        let outcome = comm_aware(&net, &cfg).unwrap();
        // The two heavy, heavily-communicating stages are the right pair:
        // hardware gets both, so the 2 KiB channel stays local.
        assert!(
            outcome.hw_processes.contains(&1) && outcome.hw_processes.contains(&2),
            "hw set {:?}",
            outcome.hw_processes
        );
    }

    #[test]
    fn exhaustive_is_the_reference_optimum() {
        let net = pipeline();
        let cfg = MthreadConfig::default();
        let optimum = exhaustive(&net, &cfg).unwrap();
        let aware = comm_aware(&net, &cfg).unwrap();
        let naive = compute_only(&net, &cfg).unwrap();
        assert!(optimum.report.finish_time <= aware.report.finish_time);
        assert!(optimum.report.finish_time <= naive.report.finish_time);
    }

    #[test]
    fn traced_search_matches_untraced() {
        let net = pipeline();
        let cfg = MthreadConfig::default();
        let plain = comm_aware(&net, &cfg).unwrap();
        let tracer = Tracer::on();
        let traced = comm_aware_traced(&net, &cfg, &tracer).unwrap();
        assert_eq!(plain, traced);
        assert!(tracer.event_count() > 0);
        codesign_trace::validate_chrome_trace(&tracer.to_chrome_json()).unwrap();
    }

    #[test]
    fn budget_of_zero_keeps_everything_in_software() {
        let net = pipeline();
        let cfg = MthreadConfig {
            max_hw_processes: 0,
            ..MthreadConfig::default()
        };
        let outcome = comm_aware(&net, &cfg).unwrap();
        assert!(outcome.hw_processes.is_empty());
    }

    #[test]
    fn more_hw_budget_never_hurts() {
        let net = pipeline();
        let mut prev = u64::MAX;
        for budget in [0usize, 1, 2, 4] {
            let cfg = MthreadConfig {
                max_hw_processes: budget,
                ..MthreadConfig::default()
            };
            let outcome = comm_aware(&net, &cfg).unwrap();
            assert!(
                outcome.report.finish_time <= prev,
                "budget {budget}: {} > {prev}",
                outcome.report.finish_time
            );
            prev = outcome.report.finish_time;
        }
    }

    #[test]
    fn calibration_measures_kernel_backed_processes() {
        let mut net = ProcessNetwork::new("kcal");
        let ch = net.add_channel("c", 0);
        net.add_process(
            Process::new(
                "filter",
                vec![
                    Action::Compute(5_000),
                    Action::Send {
                        channel: ch,
                        bytes: 64,
                    },
                ],
            )
            .with_iterations(8)
            .with_kernel("dct8"),
        );
        net.add_process(
            Process::new(
                "plain",
                vec![Action::Receive { channel: ch }, Action::Compute(5_000)],
            )
            .with_iterations(8),
        );
        let (speedups, areas) = calibrate(&net, 8.0).unwrap();
        assert!(speedups[0] > 1.0, "dct8 measured: {}", speedups[0]);
        assert_ne!(speedups[0], 8.0, "calibrated, not defaulted");
        assert_eq!(speedups[1], 8.0, "kernel-less keeps the default");
        assert!(areas[0] > 0.0);
        assert_eq!(areas[1], 0.0);
    }

    #[test]
    fn calibrated_flow_reports_area_and_improves_on_software() {
        let mut net = ProcessNetwork::new("kflow");
        let ch = net.add_channel("c", 0);
        net.add_process(
            Process::new(
                "heavy",
                vec![
                    Action::Compute(20_000),
                    Action::Send {
                        channel: ch,
                        bytes: 64,
                    },
                ],
            )
            .with_iterations(8)
            .with_kernel("fir"),
        );
        net.add_process(
            Process::new(
                "light",
                vec![Action::Receive { channel: ch }, Action::Compute(500)],
            )
            .with_iterations(8),
        );
        let cfg = MthreadConfig::default();
        let (outcome, hw_area) = comm_aware_calibrated(&net, &cfg).unwrap();
        let all_sw = simulate(&net, &Placement::all_software(2), &cfg.sim).unwrap();
        assert!(outcome.report.finish_time < all_sw.finish_time);
        assert!(
            outcome.hw_processes.contains(&0),
            "the kernel process moves"
        );
        assert!(hw_area > 0.0, "hardware pairs have real synthesized area");
    }
}
