//! Heterogeneous multiprocessor co-synthesis (paper Section 4.2,
//! Figure 5).
//!
//! "The design involves both choosing the number and type of processing
//! elements and mapping tasks onto processing elements. The goal is to
//! meet some performance objective while minimizing the cost of the
//! hardware." Three solvers, matching the surveyed flows:
//!
//! * [`branch_and_bound`] — exact search in the spirit of SOS's integer
//!   linear program \[12\]: provably minimum-cost allocation, exponential
//!   worst case (the node counter makes the cost visible to E5);
//! * [`bin_packing`] — Beck's vector-bin-packing heuristic \[13\] with an
//!   upgrade/repair loop: polynomial, near-optimal;
//! * [`sensitivity_driven`] — Yen & Wolf's iterative improvement \[9\]:
//!   start over-provisioned, repeatedly take the cost-reducing
//!   modification with the best sensitivity that keeps the deadline.
//!
//! All evaluate candidate allocations with the same list scheduler, in
//! which tasks on one processing element serialize and cross-processor
//! edges pay the interconnection-network transfer cost.

use codesign_ir::task::{TaskGraph, TaskId};
use codesign_isa::proclib::ProcessorModel;
use codesign_partition::cost::EdgeCommModel;

use crate::error::SynthError;

/// Configuration for the multiprocessor solvers.
#[derive(Debug, Clone)]
pub struct MultiprocConfig {
    /// Processor library to allocate from.
    pub library: Vec<ProcessorModel>,
    /// End-to-end deadline in reference cycles.
    pub deadline: u64,
    /// Interconnection-network cost model.
    pub comm: EdgeCommModel,
    /// Instance cap per library type (bounds the exact search).
    pub max_instances: usize,
}

impl MultiprocConfig {
    /// Creates a config with the standard library and default network.
    #[must_use]
    pub fn new(deadline: u64) -> Self {
        MultiprocConfig {
            library: codesign_isa::proclib::standard_library(),
            deadline,
            comm: EdgeCommModel::default(),
            max_instances: 3,
        }
    }
}

/// A processor allocation and task mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Instantiated processors (indices into the library).
    pub instance_types: Vec<usize>,
    /// Per task: which instance executes it.
    pub assignment: Vec<usize>,
}

impl Allocation {
    /// Total processor cost under a library.
    #[must_use]
    pub fn cost(&self, library: &[ProcessorModel]) -> f64 {
        self.instance_types.iter().map(|&t| library[t].cost()).sum()
    }

    /// Number of processor instances.
    #[must_use]
    pub fn instance_count(&self) -> usize {
        self.instance_types.len()
    }
}

/// Outcome of one solver run.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiprocOutcome {
    /// The chosen allocation.
    pub allocation: Allocation,
    /// Its processor cost.
    pub cost: f64,
    /// Its schedule length.
    pub makespan: u64,
    /// Whether the solver guarantees optimality.
    pub optimal: bool,
    /// Search nodes explored (exact solver) or candidate evaluations
    /// (heuristics) — the runtime currency of experiment E5.
    pub explored: u64,
}

/// List-schedules the first `prefix` tasks of `order` under an
/// allocation; returns the makespan of the scheduled prefix.
fn prefix_makespan(
    graph: &TaskGraph,
    order: &[TaskId],
    prefix: usize,
    instance_types: &[usize],
    assignment: &[usize],
    cfg: &MultiprocConfig,
) -> u64 {
    let mut free = vec![0u64; instance_types.len()];
    let mut finish = vec![0u64; graph.len()];
    let mut makespan = 0;
    for &t in &order[..prefix] {
        let inst = assignment[t.index()];
        let speed = cfg.library[instance_types[inst]].speed();
        let mut ready = 0u64;
        for e in graph.edges().iter().filter(|e| e.dst == t) {
            // Predecessors precede t in a topological order; unscheduled
            // ones (outside the prefix) contribute zero, which keeps the
            // prefix makespan a valid lower bound.
            let mut r = finish[e.src.index()];
            if assignment.get(e.src.index()).copied() != Some(inst) && finish[e.src.index()] > 0 {
                r += cfg.comm.transfer_cycles(e.bytes);
            }
            ready = ready.max(r);
        }
        let duration = ((graph.task(t).sw_cycles() as f64 / speed).ceil() as u64).max(1);
        let start = ready.max(free[inst]);
        finish[t.index()] = start + duration;
        free[inst] = start + duration;
        makespan = makespan.max(finish[t.index()]);
    }
    makespan
}

/// Full-schedule makespan of a complete allocation.
#[must_use]
pub fn makespan(graph: &TaskGraph, allocation: &Allocation, cfg: &MultiprocConfig) -> u64 {
    let order = priority_order(graph);
    prefix_makespan(
        graph,
        &order,
        order.len(),
        &allocation.instance_types,
        &allocation.assignment,
        cfg,
    )
}

/// Topological order with bottom-level priority among ready tasks.
fn priority_order(graph: &TaskGraph) -> Vec<TaskId> {
    let levels = graph
        .bottom_levels(|_, t| t.sw_cycles())
        .expect("validated graphs are acyclic");
    let mut indegree: Vec<usize> = (0..graph.len())
        .map(|i| graph.predecessors(TaskId::from_index(i)).count())
        .collect();
    let mut ready: Vec<TaskId> = graph.ids().filter(|t| indegree[t.index()] == 0).collect();
    let mut order = Vec::with_capacity(graph.len());
    while !ready.is_empty() {
        ready.sort_by_key(|&t| std::cmp::Reverse(levels[t.index()]));
        let t = ready.remove(0);
        order.push(t);
        for s in graph.successors(t) {
            indegree[s.index()] -= 1;
            if indegree[s.index()] == 0 {
                ready.push(s);
            }
        }
    }
    order
}

/// Exact minimum-cost allocation by branch and bound (SOS-style \[12\]).
///
/// Searches assignments of tasks (in priority order) to open processor
/// instances or to a freshly opened instance of each library type,
/// pruning on cost (monotone) and on the prefix-schedule lower bound
/// against the deadline.
///
/// # Errors
///
/// Returns [`SynthError::Infeasible`] if no allocation meets the
/// deadline within the instance caps.
pub fn branch_and_bound(
    graph: &TaskGraph,
    cfg: &MultiprocConfig,
) -> Result<MultiprocOutcome, SynthError> {
    let order = priority_order(graph);
    let n = graph.len();
    let mut best: Option<(f64, Allocation, u64)> = None;
    let mut explored = 0u64;

    struct Frame {
        depth: usize,
        instance_types: Vec<usize>,
        assignment: Vec<usize>,
        cost: f64,
    }
    let mut stack = vec![Frame {
        depth: 0,
        instance_types: Vec::new(),
        assignment: vec![usize::MAX; n],
        cost: 0.0,
    }];

    while let Some(frame) = stack.pop() {
        explored += 1;
        if let Some((best_cost, _, _)) = &best {
            if frame.cost >= *best_cost - 1e-12 {
                continue;
            }
        }
        if frame.depth > 0 {
            let ms = prefix_makespan(
                graph,
                &order,
                frame.depth,
                &frame.instance_types,
                &frame.assignment,
                cfg,
            );
            if ms > cfg.deadline {
                continue;
            }
            if frame.depth == n {
                let alloc = Allocation {
                    instance_types: frame.instance_types,
                    assignment: frame.assignment,
                };
                let better = best.as_ref().is_none_or(|(c, _, m)| {
                    frame.cost < c - 1e-12 || (frame.cost < c + 1e-12 && ms < *m)
                });
                if better {
                    best = Some((frame.cost, alloc, ms));
                }
                continue;
            }
        }
        let t = order[frame.depth];
        // Children: every open instance, then one new instance per type
        // (symmetry-broken: new instances only append).
        let mut children = Vec::new();
        for inst in 0..frame.instance_types.len() {
            let mut a = frame.assignment.clone();
            a[t.index()] = inst;
            children.push(Frame {
                depth: frame.depth + 1,
                instance_types: frame.instance_types.clone(),
                assignment: a,
                cost: frame.cost,
            });
        }
        for (ty, proc_) in cfg.library.iter().enumerate() {
            let open_of_type = frame.instance_types.iter().filter(|&&x| x == ty).count();
            if open_of_type >= cfg.max_instances {
                continue;
            }
            let mut types = frame.instance_types.clone();
            types.push(ty);
            let mut a = frame.assignment.clone();
            a[t.index()] = types.len() - 1;
            children.push(Frame {
                depth: frame.depth + 1,
                instance_types: types,
                assignment: a,
                cost: frame.cost + proc_.cost(),
            });
        }
        // Cheapest-first exploration finds good incumbents early.
        children.sort_by(|a, b| b.cost.partial_cmp(&a.cost).expect("finite"));
        stack.extend(children);
    }

    match best {
        Some((cost, allocation, ms)) => Ok(MultiprocOutcome {
            allocation,
            cost,
            makespan: ms,
            optimal: true,
            explored,
        }),
        None => Err(SynthError::Infeasible {
            reason: format!("no allocation meets deadline {}", cfg.deadline),
        }),
    }
}

/// Beck-style vector bin packing \[13\] with an upgrade/repair loop.
///
/// Tasks (sorted by decreasing load) are first-fit packed into processor
/// "bins" whose capacity is the deadline scaled by processor speed; if
/// the real schedule then misses the deadline, the bottleneck instance
/// is upgraded to the next faster type or relieved of its largest task.
///
/// # Errors
///
/// Returns [`SynthError::Infeasible`] if repair cannot reach the
/// deadline.
pub fn bin_packing(
    graph: &TaskGraph,
    cfg: &MultiprocConfig,
) -> Result<MultiprocOutcome, SynthError> {
    const UTILIZATION: f64 = 0.9;
    let mut explored = 0u64;
    let mut tasks: Vec<TaskId> = graph.ids().collect();
    tasks.sort_by_key(|&t| std::cmp::Reverse(graph.task(t).sw_cycles()));

    // Cheapest library type able to run a task within the deadline.
    let cheapest_for = |load: u64| -> Option<usize> {
        cfg.library
            .iter()
            .enumerate()
            .filter(|(_, p)| (load as f64 / p.speed()) <= cfg.deadline as f64 * UTILIZATION)
            .min_by(|(_, a), (_, b)| a.cost().partial_cmp(&b.cost()).expect("finite"))
            .map(|(i, _)| i)
    };

    let mut instance_types: Vec<usize> = Vec::new();
    let mut bin_load: Vec<f64> = Vec::new(); // in deadline-normalized units
    let mut assignment = vec![usize::MAX; graph.len()];
    for &t in &tasks {
        let load = graph.task(t).sw_cycles();
        let placed = (0..instance_types.len()).find(|&b| {
            let p = &cfg.library[instance_types[b]];
            bin_load[b] + load as f64 / p.speed() <= cfg.deadline as f64 * UTILIZATION
        });
        let b = match placed {
            Some(b) => b,
            None => {
                let ty = cheapest_for(load).ok_or_else(|| SynthError::Infeasible {
                    reason: format!(
                        "task {} cannot meet deadline {} on any processor",
                        graph.task(t).name(),
                        cfg.deadline
                    ),
                })?;
                instance_types.push(ty);
                bin_load.push(0.0);
                instance_types.len() - 1
            }
        };
        bin_load[b] += load as f64 / cfg.library[instance_types[b]].speed();
        assignment[t.index()] = b;
    }

    // Repair: upgrade the bottleneck until the true schedule fits.
    let mut alloc = Allocation {
        instance_types,
        assignment,
    };
    for _ in 0..16 * cfg.library.len() {
        let ms = makespan(graph, &alloc, cfg);
        explored += 1;
        if ms <= cfg.deadline {
            return Ok(MultiprocOutcome {
                cost: alloc.cost(&cfg.library),
                makespan: ms,
                allocation: alloc,
                optimal: false,
                explored,
            });
        }
        // Bottleneck: instance with the largest total load.
        let mut loads = vec![0f64; alloc.instance_types.len()];
        for (i, &inst) in alloc.assignment.iter().enumerate() {
            let speed = cfg.library[alloc.instance_types[inst]].speed();
            loads[inst] += graph.task(TaskId::from_index(i)).sw_cycles() as f64 / speed;
        }
        let bottleneck = loads
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite"))
            .map(|(i, _)| i)
            .expect("at least one instance");
        // Upgrade to the next faster type, or offload the largest task.
        let current = alloc.instance_types[bottleneck];
        let faster = cfg
            .library
            .iter()
            .enumerate()
            .filter(|(_, p)| p.speed() > cfg.library[current].speed())
            .min_by(|(_, a), (_, b)| a.speed().partial_cmp(&b.speed()).expect("finite"));
        if let Some((ty, _)) = faster {
            alloc.instance_types[bottleneck] = ty;
        } else {
            // Already fastest: move its largest task to a new instance.
            let victim = alloc
                .assignment
                .iter()
                .enumerate()
                .filter(|(_, &inst)| inst == bottleneck)
                .max_by_key(|(i, _)| graph.task(TaskId::from_index(*i)).sw_cycles())
                .map(|(i, _)| i);
            let Some(v) = victim else {
                break;
            };
            let load = graph.task(TaskId::from_index(v)).sw_cycles();
            let ty = cheapest_for(load).ok_or_else(|| SynthError::Infeasible {
                reason: "cannot offload bottleneck".to_string(),
            })?;
            alloc.instance_types.push(ty);
            alloc.assignment[v] = alloc.instance_types.len() - 1;
        }
    }
    Err(SynthError::Infeasible {
        reason: format!("repair loop could not meet deadline {}", cfg.deadline),
    })
}

/// Yen–Wolf-style sensitivity-driven improvement \[9\]: start with one
/// fastest processor per task (maximally parallel, maximally expensive),
/// then repeatedly apply the cost-reducing modification — merging two
/// instances or downgrading an instance's type — with the best cost
/// saving that still meets the deadline.
///
/// # Errors
///
/// Returns [`SynthError::Infeasible`] if even the over-provisioned
/// start misses the deadline.
pub fn sensitivity_driven(
    graph: &TaskGraph,
    cfg: &MultiprocConfig,
) -> Result<MultiprocOutcome, SynthError> {
    let fastest = cfg
        .library
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.speed().partial_cmp(&b.speed()).expect("finite"))
        .map(|(i, _)| i)
        .ok_or_else(|| SynthError::Infeasible {
            reason: "empty processor library".to_string(),
        })?;
    let n = graph.len();
    let mut alloc = Allocation {
        instance_types: vec![fastest; n],
        assignment: (0..n).collect(),
    };
    let mut explored = 1u64;
    let start_ms = makespan(graph, &alloc, cfg);
    if start_ms > cfg.deadline {
        return Err(SynthError::Infeasible {
            reason: format!(
                "even one fastest processor per task needs {start_ms} > deadline {}",
                cfg.deadline
            ),
        });
    }

    loop {
        let current_cost = alloc.cost(&cfg.library);
        let mut best_move: Option<(Allocation, f64, u64)> = None;
        let mut consider = |candidate: Allocation, explored: &mut u64| {
            *explored += 1;
            let ms = makespan(graph, &candidate, cfg);
            if ms > cfg.deadline {
                return;
            }
            let cost = candidate.cost(&cfg.library);
            if cost < current_cost - 1e-12
                && best_move.as_ref().is_none_or(|(_, c, _)| cost < *c - 1e-12)
            {
                best_move = Some((candidate, cost, ms));
            }
        };
        let instances = alloc.instance_types.len();
        // Merges: move everything from instance b onto instance a.
        for a in 0..instances {
            for b in 0..instances {
                if a == b {
                    continue;
                }
                let mut cand = alloc.clone();
                for slot in cand.assignment.iter_mut() {
                    if *slot == b {
                        *slot = a;
                    }
                }
                // Remove instance b, compacting indices.
                cand.instance_types.remove(b);
                for slot in cand.assignment.iter_mut() {
                    if *slot > b {
                        *slot -= 1;
                    }
                }
                consider(cand, &mut explored);
            }
        }
        // Downgrades: replace an instance's type with any cheaper one.
        for inst in 0..instances {
            let current_ty = alloc.instance_types[inst];
            for (ty, p) in cfg.library.iter().enumerate() {
                if p.cost() < cfg.library[current_ty].cost() {
                    let mut cand = alloc.clone();
                    cand.instance_types[inst] = ty;
                    consider(cand, &mut explored);
                }
            }
        }
        match best_move {
            Some((next, cost, ms)) => {
                alloc = next;
                if alloc.instance_types.is_empty() {
                    unreachable!("merges keep at least one instance");
                }
                let _ = (cost, ms);
            }
            None => {
                let ms = makespan(graph, &alloc, cfg);
                return Ok(MultiprocOutcome {
                    cost: alloc.cost(&cfg.library),
                    makespan: ms,
                    allocation: alloc,
                    optimal: false,
                    explored,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_ir::workload::tgff::{random_task_graph, TgffConfig};

    fn graph(tasks: usize, seed: u64) -> TaskGraph {
        random_task_graph(&TgffConfig {
            tasks,
            seed,
            sw_cycles: (1_000, 8_000),
            ..TgffConfig::default()
        })
    }

    fn mid_deadline(g: &TaskGraph, cfg: &MultiprocConfig) -> u64 {
        // Between serial-on-cheapest and fully-parallel-on-fastest.
        let serial = g.total_sw_cycles() * 2;
        let fastest = cfg
            .library
            .iter()
            .map(|p| p.speed())
            .fold(f64::MIN, f64::max);
        let parallel = (g.critical_path(|_, t| t.sw_cycles()).unwrap() as f64 / fastest) as u64;
        parallel + (serial - parallel) / 6
    }

    #[test]
    fn exact_never_loses_to_heuristics() {
        for seed in [1, 2, 3] {
            let g = graph(7, seed);
            let mut cfg = MultiprocConfig::new(0);
            cfg.deadline = mid_deadline(&g, &cfg);
            cfg.max_instances = 2;
            let exact = branch_and_bound(&g, &cfg).unwrap();
            assert!(exact.optimal);
            assert!(exact.makespan <= cfg.deadline);
            for (name, outcome) in [
                ("bin", bin_packing(&g, &cfg).unwrap()),
                ("sens", sensitivity_driven(&g, &cfg).unwrap()),
            ] {
                assert!(outcome.makespan <= cfg.deadline, "{name} seed {seed}");
                assert!(
                    exact.cost <= outcome.cost + 1e-9,
                    "{name} seed {seed}: exact {} vs {}",
                    exact.cost,
                    outcome.cost
                );
            }
        }
    }

    #[test]
    fn search_grows_superlinearly_with_tasks() {
        let mut cfg = MultiprocConfig::new(0);
        cfg.max_instances = 2;
        let small = {
            let g = graph(4, 9);
            cfg.deadline = mid_deadline(&g, &cfg);
            branch_and_bound(&g, &cfg).unwrap().explored
        };
        let large = {
            let g = graph(8, 9);
            cfg.deadline = mid_deadline(&g, &cfg);
            branch_and_bound(&g, &cfg).unwrap().explored
        };
        assert!(
            large > 4 * small,
            "exponential growth expected: {small} -> {large}"
        );
    }

    #[test]
    fn loose_deadline_buys_one_cheap_processor() {
        let g = graph(6, 4);
        let mut cfg = MultiprocConfig::new(g.total_sw_cycles() * 100);
        cfg.max_instances = 2;
        let exact = branch_and_bound(&g, &cfg).unwrap();
        assert_eq!(exact.allocation.instance_count(), 1);
        let cheapest = cfg
            .library
            .iter()
            .map(|p| p.cost())
            .fold(f64::MAX, f64::min);
        assert!((exact.cost - cheapest).abs() < 1e-9);
    }

    #[test]
    fn tight_deadline_buys_parallel_hardware() {
        let g = graph(6, 4);
        let mut cfg = MultiprocConfig::new(0);
        cfg.deadline = mid_deadline(&g, &cfg);
        let tight = branch_and_bound(&g, &cfg).unwrap();
        let mut loose_cfg = cfg.clone();
        loose_cfg.deadline = g.total_sw_cycles() * 100;
        let loose = branch_and_bound(&g, &loose_cfg).unwrap();
        assert!(
            tight.cost > loose.cost,
            "tight {} vs loose {}",
            tight.cost,
            loose.cost
        );
    }

    #[test]
    fn impossible_deadline_is_infeasible() {
        let g = graph(6, 5);
        let mut cfg = MultiprocConfig::new(1);
        cfg.max_instances = 2;
        assert!(matches!(
            branch_and_bound(&g, &cfg),
            Err(SynthError::Infeasible { .. })
        ));
        assert!(matches!(
            sensitivity_driven(&g, &cfg),
            Err(SynthError::Infeasible { .. })
        ));
        assert!(matches!(
            bin_packing(&g, &cfg),
            Err(SynthError::Infeasible { .. })
        ));
    }

    #[test]
    fn heuristics_scale_to_larger_graphs() {
        let g = graph(30, 6);
        let mut cfg = MultiprocConfig::new(0);
        cfg.deadline = mid_deadline(&g, &cfg);
        let bin = bin_packing(&g, &cfg).unwrap();
        let sens = sensitivity_driven(&g, &cfg).unwrap();
        assert!(bin.makespan <= cfg.deadline);
        assert!(sens.makespan <= cfg.deadline);
        assert!(!bin.optimal && !sens.optimal);
    }

    #[test]
    fn sensitivity_reduces_cost_from_overprovisioned_start() {
        let g = graph(10, 7);
        let mut cfg = MultiprocConfig::new(0);
        cfg.deadline = mid_deadline(&g, &cfg);
        let outcome = sensitivity_driven(&g, &cfg).unwrap();
        let fastest_cost = cfg
            .library
            .iter()
            .map(|p| p.cost())
            .fold(f64::MIN, f64::max);
        let start_cost = fastest_cost * g.len() as f64;
        assert!(
            outcome.cost < start_cost / 2.0,
            "cost {} from start {start_cost}",
            outcome.cost
        );
    }

    #[test]
    fn makespan_accounts_for_interconnect_traffic() {
        use codesign_ir::task::Task;
        let mut g = TaskGraph::new("two");
        let a = g.add_task(Task::new("a", 1_000));
        let b = g.add_task(Task::new("b", 1_000));
        g.add_edge(a, b, 4_000).unwrap();
        let cfg = MultiprocConfig::new(1_000_000);
        let same = Allocation {
            instance_types: vec![1],
            assignment: vec![0, 0],
        };
        let split = Allocation {
            instance_types: vec![1, 1],
            assignment: vec![0, 1],
        };
        let ms_same = makespan(&g, &same, &cfg);
        let ms_split = makespan(&g, &split, &cfg);
        assert!(
            ms_split > ms_same,
            "serial chain gains nothing from parallelism but pays comm: {ms_split} vs {ms_same}"
        );
    }
}
