//! Chinook-style interface synthesis (paper Section 4.1, Figure 4).
//!
//! The Chinook system \[11\] "performs HW/SW co-synthesis of the I/O
//! drivers and interface logic … but does no HW/SW partitioning". Given a
//! list of device specifications, this module:
//!
//! 1. **allocates the address map** — one aligned MMIO region per device;
//! 2. **generates the glue logic** — a gate-level address decoder plus
//!    the interrupt-combining OR tree, as a `codesign-rtl` netlist whose
//!    gate count is the implementation cost E4 reports;
//! 3. **generates the I/O drivers** — CR32 assembly routines for each
//!    device's operations, following a fixed calling convention
//!    (arguments in `r1`/`r2`, result in `r1`, return address in `r15`,
//!    scratch `r10`–`r13`).
//!
//! [`SynthesizedInterface::build_system`] assembles the drivers together
//! with application code and mounts the devices on a bus, so the
//! generated interface is *executed*, not just emitted.

use codesign_isa::asm::{assemble, Program};
use codesign_isa::cpu::{Cpu, MMIO_BASE};
use codesign_rtl::bus::{
    coproc_regs, gpio_regs, timer_regs, uart_regs, BusTiming, CoprocessorPort, DrainFifo, Gpio,
    SystemBus, Timer, Uart,
};
use codesign_rtl::fsmd::{Fsmd, FsmdSim};
use codesign_rtl::netlist::{GateKind, Netlist};

use crate::error::SynthError;

/// Bytes reserved per device region (and region alignment).
pub const REGION_SIZE: u32 = 0x1000;

/// The kinds of devices interface synthesis knows how to wire up.
#[derive(Debug, Clone)]
pub enum DeviceKind {
    /// Serial port (putc/getc drivers).
    Uart,
    /// Countdown timer (start/ack drivers).
    Timer,
    /// General-purpose I/O (read/write drivers).
    Gpio,
    /// A self-draining FIFO (push driver with flow control).
    Fifo {
        /// Capacity in words.
        capacity: usize,
        /// Drain rate in cycles per word.
        drain_period: u64,
    },
    /// A synthesized co-processor (call driver: operands, start, poll,
    /// result).
    Coprocessor(Fsmd),
}

/// One device to integrate.
#[derive(Debug, Clone)]
pub struct DeviceSpec {
    /// Instance name; must be a valid assembly label fragment.
    pub name: String,
    /// What it is.
    pub kind: DeviceKind,
}

impl DeviceSpec {
    /// Creates a spec.
    #[must_use]
    pub fn new(name: impl Into<String>, kind: DeviceKind) -> Self {
        DeviceSpec {
            name: name.into(),
            kind,
        }
    }
}

/// The product of interface synthesis.
#[derive(Debug)]
pub struct SynthesizedInterface {
    devices: Vec<DeviceSpec>,
    /// `(name, base offset from MMIO_BASE, size)` per device.
    map: Vec<(String, u32, u32)>,
    glue: Netlist,
    driver_source: String,
}

impl SynthesizedInterface {
    /// The allocated address map (offsets relative to
    /// [`codesign_isa::cpu::MMIO_BASE`]).
    #[must_use]
    pub fn address_map(&self) -> &[(String, u32, u32)] {
        &self.map
    }

    /// The glue-logic netlist (decoder + interrupt tree).
    #[must_use]
    pub fn glue(&self) -> &Netlist {
        &self.glue
    }

    /// Gate count of the glue logic — the E4 implementation-cost number.
    #[must_use]
    pub fn glue_gates(&self) -> usize {
        self.glue.gate_count()
    }

    /// The generated driver library source.
    #[must_use]
    pub fn driver_source(&self) -> &str {
        &self.driver_source
    }

    /// Base address (absolute) of a device by name.
    #[must_use]
    pub fn base_of(&self, name: &str) -> Option<u64> {
        self.map
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|&(_, base, _)| MMIO_BASE + u64::from(base))
    }

    /// Builds the bus with every device mounted at its allocated base.
    ///
    /// # Errors
    ///
    /// Propagates bus-mapping and FSMD-construction errors.
    pub fn build_bus(&self) -> Result<SystemBus, SynthError> {
        let mut bus = SystemBus::new(BusTiming::default());
        for (spec, (_, base, size)) in self.devices.iter().zip(&self.map) {
            let slave: Box<dyn codesign_rtl::bus::BusSlave> = match &spec.kind {
                DeviceKind::Uart => Box::new(Uart::new()),
                DeviceKind::Timer => Box::new(Timer::new()),
                DeviceKind::Gpio => Box::new(Gpio::new()),
                DeviceKind::Fifo {
                    capacity,
                    drain_period,
                } => Box::new(DrainFifo::new(*capacity, *drain_period)),
                DeviceKind::Coprocessor(fsmd) => {
                    Box::new(CoprocessorPort::new(FsmdSim::new(fsmd.clone())?))
                }
            };
            bus.map(*base, *size, slave)?;
        }
        Ok(bus)
    }

    /// Assembles `application` (which may `jal` into the driver routines)
    /// together with the driver library, and returns a CPU with the bus
    /// attached and the program loaded.
    ///
    /// # Errors
    ///
    /// Propagates assembly and bus-construction errors.
    pub fn build_system(&self, application: &str) -> Result<(Cpu, Program), SynthError> {
        let source = format!("{application}\n{}", self.driver_source);
        let program = assemble(&source)?;
        let mut cpu = Cpu::new(0x10000);
        cpu.attach_bus(self.build_bus()?);
        cpu.load_program(&program);
        Ok((cpu, program))
    }
}

/// Runs interface synthesis over a set of device specifications.
///
/// # Errors
///
/// Returns [`SynthError::BadSpec`] for duplicate or empty device names
/// and propagates glue-netlist construction errors.
pub fn synthesize_interface(devices: Vec<DeviceSpec>) -> Result<SynthesizedInterface, SynthError> {
    for (i, d) in devices.iter().enumerate() {
        if d.name.is_empty()
            || !d
                .name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            return Err(SynthError::BadSpec {
                reason: format!("device name `{}` is not a label fragment", d.name),
            });
        }
        if devices[..i].iter().any(|e| e.name == d.name) {
            return Err(SynthError::BadSpec {
                reason: format!("duplicate device name `{}`", d.name),
            });
        }
    }

    // 1. Address allocation: consecutive aligned regions.
    let map: Vec<(String, u32, u32)> = devices
        .iter()
        .enumerate()
        .map(|(i, d)| (d.name.clone(), i as u32 * REGION_SIZE, REGION_SIZE))
        .collect();

    // 2. Glue logic: address decoder over the region-index bits plus an
    //    interrupt-combining OR tree.
    let glue = build_glue(&map)?;

    // 3. Driver generation.
    let mut src = String::from("\n; ---- generated I/O drivers ----\n");
    for (spec, (_, base, _)) in devices.iter().zip(&map) {
        let base = MMIO_BASE + u64::from(*base);
        emit_drivers(&mut src, spec, base);
    }

    Ok(SynthesizedInterface {
        devices,
        map,
        glue,
        driver_source: src,
    })
}

fn build_glue(map: &[(String, u32, u32)]) -> Result<Netlist, SynthError> {
    let mut n = Netlist::new("glue");
    let region_bits = REGION_SIZE.trailing_zeros() as usize;
    let addr: Vec<_> = (0..region_bits + 4)
        .map(|i| n.add_input(format!("a{i}")))
        .collect();
    let high: Vec<_> = addr[region_bits..].to_vec();
    let mut irq_ins = Vec::new();
    for (i, (name, base, _)) in map.iter().enumerate() {
        let tag = u64::from(base >> region_bits);
        let hit = n.equals_const(&high, tag)?;
        let sel = n.add_net(format!("sel_{name}"));
        n.add_gate(GateKind::Buf, &[hit], sel, 1)?;
        let irq = n.add_input(format!("irq_{i}"));
        irq_ins.push(irq);
    }
    let cpu_irq = n.add_net("cpu_irq");
    match irq_ins.len() {
        0 => {}
        1 => {
            n.add_gate(GateKind::Buf, &[irq_ins[0]], cpu_irq, 1)?;
        }
        _ => {
            n.add_gate(GateKind::Or, &irq_ins, cpu_irq, 1)?;
        }
    }
    Ok(n)
}

fn emit_drivers(src: &mut String, spec: &DeviceSpec, base: u64) {
    use std::fmt::Write as _;
    let name = &spec.name;
    match &spec.kind {
        DeviceKind::Uart => {
            let _ = write!(
                src,
                "drv_{name}_putc:\n\
                 \x20   li r10, {base}\n\
                 \x20   sw r1, r10, {tx}\n\
                 \x20   jalr r0, r15\n\
                 drv_{name}_getc:\n\
                 \x20   li r10, {base}\n\
                 drv_{name}_getc_poll:\n\
                 \x20   lw r11, r10, {status}\n\
                 \x20   li r12, 2\n\
                 \x20   and r11, r11, r12\n\
                 \x20   beq r11, r0, drv_{name}_getc_poll\n\
                 \x20   lw r1, r10, {rx}\n\
                 \x20   jalr r0, r15\n",
                tx = uart_regs::TX,
                status = uart_regs::STATUS,
                rx = uart_regs::RX,
            );
        }
        DeviceKind::Timer => {
            let _ = write!(
                src,
                "drv_{name}_start:\n\
                 \x20   li r10, {base}\n\
                 \x20   sw r1, r10, {load}\n\
                 \x20   sw r2, r10, {ctrl}\n\
                 \x20   jalr r0, r15\n\
                 drv_{name}_ack:\n\
                 \x20   li r10, {base}\n\
                 \x20   sw r0, r10, {ack}\n\
                 \x20   jalr r0, r15\n",
                load = timer_regs::LOAD,
                ctrl = timer_regs::CTRL,
                ack = timer_regs::ACK,
            );
        }
        DeviceKind::Gpio => {
            let _ = write!(
                src,
                "drv_{name}_write:\n\
                 \x20   li r10, {base}\n\
                 \x20   sw r1, r10, {out}\n\
                 \x20   jalr r0, r15\n\
                 drv_{name}_read:\n\
                 \x20   li r10, {base}\n\
                 \x20   lw r1, r10, {input}\n\
                 \x20   jalr r0, r15\n",
                out = gpio_regs::OUT,
                input = gpio_regs::IN,
            );
        }
        DeviceKind::Fifo { capacity, .. } => {
            let _ = write!(
                src,
                "drv_{name}_push:\n\
                 \x20   li r10, {base}\n\
                 \x20   li r12, {capacity}\n\
                 drv_{name}_push_poll:\n\
                 \x20   lw r11, r10, {count}\n\
                 \x20   bge r11, r12, drv_{name}_push_poll\n\
                 \x20   sw r1, r10, {data}\n\
                 \x20   jalr r0, r15\n",
                count = codesign_rtl::bus::fifo_regs::COUNT,
                data = codesign_rtl::bus::fifo_regs::DATA,
            );
        }
        DeviceKind::Coprocessor(fsmd) => {
            // Synchronous call: operands, start, poll, result.
            let _ = write!(src, "drv_{name}_call:\n    li r10, {base}\n");
            // Operands from r1, r2, r3 (up to three register arguments).
            for (i, reg) in (0..fsmd.input_count().min(3)).zip(["r1", "r2", "r3"]) {
                let _ = writeln!(
                    src,
                    "    sw {reg}, r10, {}",
                    coproc_regs::INPUT_BASE + 4 * u32::from(i)
                );
            }
            let _ = write!(
                src,
                "    sw r10, r10, {start}\n\
                 drv_{name}_call_poll:\n\
                 \x20   lw r11, r10, {status}\n\
                 \x20   beq r11, r0, drv_{name}_call_poll\n\
                 \x20   lw r1, r10, {out}\n\
                 \x20   jalr r0, r15\n",
                start = coproc_regs::START,
                status = coproc_regs::STATUS,
                out = coproc_regs::OUTPUT_BASE,
            );
            // Asynchronous pair: `start` returns immediately so software
            // can overlap with the running co-processor (the Section 3.3
            // *concurrency* consideration); `wait` blocks and fetches.
            let _ = write!(src, "drv_{name}_start:\n    li r10, {base}\n");
            for (i, reg) in (0..fsmd.input_count().min(3)).zip(["r1", "r2", "r3"]) {
                let _ = writeln!(
                    src,
                    "    sw {reg}, r10, {}",
                    coproc_regs::INPUT_BASE + 4 * u32::from(i)
                );
            }
            let _ = write!(
                src,
                "    sw r10, r10, {start}\n\
                 \x20   jalr r0, r15\n\
                 drv_{name}_wait:\n\
                 \x20   li r10, {base}\n\
                 drv_{name}_wait_poll:\n\
                 \x20   lw r11, r10, {status}\n\
                 \x20   beq r11, r0, drv_{name}_wait_poll\n\
                 \x20   lw r1, r10, {out}\n\
                 \x20   jalr r0, r15\n",
                start = coproc_regs::START,
                status = coproc_regs::STATUS,
                out = coproc_regs::OUTPUT_BASE,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_hls::{synthesize, Constraints};
    use codesign_ir::workload::kernels;

    fn full_set() -> Vec<DeviceSpec> {
        let adder = {
            let mut g = codesign_ir::cdfg::Cdfg::new("adder");
            let a = g.input();
            let b = g.input();
            let s = g.op(codesign_ir::cdfg::OpKind::Add, &[a, b]).unwrap();
            g.output(s).unwrap();
            synthesize(&g, &Constraints::default()).unwrap().fsmd
        };
        vec![
            DeviceSpec::new("console", DeviceKind::Uart),
            DeviceSpec::new("tick", DeviceKind::Timer),
            DeviceSpec::new("leds", DeviceKind::Gpio),
            DeviceSpec::new(
                "stream",
                DeviceKind::Fifo {
                    capacity: 8,
                    drain_period: 4,
                },
            ),
            DeviceSpec::new("accel", DeviceKind::Coprocessor(adder)),
        ]
    }

    #[test]
    fn address_map_is_disjoint_and_aligned() {
        let iface = synthesize_interface(full_set()).unwrap();
        let map = iface.address_map();
        assert_eq!(map.len(), 5);
        for (i, (_, base, size)) in map.iter().enumerate() {
            assert_eq!(base % REGION_SIZE, 0);
            assert_eq!(*size, REGION_SIZE);
            for (_, other, _) in &map[i + 1..] {
                assert_ne!(base, other);
            }
        }
    }

    #[test]
    fn glue_logic_has_real_gates() {
        let iface = synthesize_interface(full_set()).unwrap();
        assert!(iface.glue_gates() > 10, "{} gates", iface.glue_gates());
        assert!(iface.glue().gate_equivalents() > 20);
    }

    #[test]
    fn glue_grows_with_device_count() {
        let small = synthesize_interface(vec![DeviceSpec::new("u", DeviceKind::Uart)]).unwrap();
        let large = synthesize_interface(full_set()).unwrap();
        assert!(large.glue_gates() > small.glue_gates());
    }

    #[test]
    fn duplicate_names_rejected() {
        let specs = vec![
            DeviceSpec::new("x", DeviceKind::Uart),
            DeviceSpec::new("x", DeviceKind::Gpio),
        ];
        assert!(matches!(
            synthesize_interface(specs),
            Err(SynthError::BadSpec { .. })
        ));
    }

    #[test]
    fn bad_label_names_rejected() {
        let specs = vec![DeviceSpec::new("bad name!", DeviceKind::Uart)];
        assert!(matches!(
            synthesize_interface(specs),
            Err(SynthError::BadSpec { .. })
        ));
    }

    #[test]
    fn generated_uart_driver_transmits() {
        let iface = synthesize_interface(full_set()).unwrap();
        let app = "\
            li r1, 72\n\
            jal r15, drv_console_putc\n\
            li r1, 73\n\
            jal r15, drv_console_putc\n\
            halt\n";
        let (mut cpu, _) = iface.build_system(app).unwrap();
        cpu.run(100_000).unwrap();
        let uart: &Uart = cpu.bus().unwrap().device().unwrap();
        assert_eq!(uart.transmitted(), b"HI");
    }

    #[test]
    fn generated_gpio_and_fifo_drivers_work() {
        let iface = synthesize_interface(full_set()).unwrap();
        let app = "\
            li r1, 0xA5\n\
            jal r15, drv_leds_write\n\
            li r1, 1234\n\
            jal r15, drv_stream_push\n\
            halt\n";
        let (mut cpu, _) = iface.build_system(app).unwrap();
        cpu.run(100_000).unwrap();
        let gpio: &Gpio = cpu.bus().unwrap().device().unwrap();
        assert_eq!(gpio.out_pins(), 0xA5);
        let fifo: &DrainFifo = cpu.bus().unwrap().device().unwrap();
        assert_eq!(fifo.drained() + fifo.occupancy() as u64, 1);
    }

    #[test]
    fn generated_coprocessor_driver_round_trips() {
        let iface = synthesize_interface(full_set()).unwrap();
        let app = "\
            li r1, 40\n\
            li r2, 2\n\
            jal r15, drv_accel_call\n\
            sd r1, r0, 64\n\
            halt\n";
        let (mut cpu, _) = iface.build_system(app).unwrap();
        cpu.run(100_000).unwrap();
        assert_eq!(cpu.load_word(64).unwrap(), 42);
    }

    #[test]
    fn synthesized_quantizer_coprocessor_integrates() {
        // A real kernel through the whole flow: HLS -> bus -> driver.
        let quant = synthesize(&kernels::quantize(), &Constraints::default())
            .unwrap()
            .fsmd;
        let iface =
            synthesize_interface(vec![DeviceSpec::new("q", DeviceKind::Coprocessor(quant))])
                .unwrap();
        let app = "\
            li r1, 100\n\
            jal r15, drv_q_call\n\
            sd r1, r0, 64\n\
            halt\n";
        let (mut cpu, _) = iface.build_system(app).unwrap();
        cpu.run(100_000).unwrap();
        let expected = kernels::quantize().evaluate(&[100]).unwrap()[0];
        assert_eq!(cpu.load_word(64).unwrap(), expected);
    }

    #[test]
    fn base_lookup_matches_map() {
        let iface = synthesize_interface(full_set()).unwrap();
        assert_eq!(iface.base_of("console"), Some(MMIO_BASE));
        assert_eq!(
            iface.base_of("tick"),
            Some(MMIO_BASE + u64::from(REGION_SIZE))
        );
        assert_eq!(iface.base_of("nope"), None);
    }

    #[test]
    fn async_driver_overlaps_software_with_hardware() {
        // A slow co-processor: a long countdown before producing a+b.
        let slow_adder = {
            use codesign_ir::cdfg::OpKind;
            use codesign_rtl::fsmd::{MicroOp, Next, Operand, RegId, State, StateId};
            let mut f = Fsmd::new("slow_adder", 2, 2, vec![RegId(1)]);
            f.add_state(State {
                ops: vec![MicroOp {
                    dst: RegId(0),
                    op: OpKind::Add,
                    args: vec![Operand::Const(60), Operand::Const(0)],
                }],
                next: Next::Step,
            })
            .unwrap();
            f.add_state(State {
                ops: vec![MicroOp {
                    dst: RegId(0),
                    op: OpKind::Sub,
                    args: vec![Operand::Reg(RegId(0)), Operand::Const(1)],
                }],
                next: Next::BranchZero {
                    reg: RegId(0),
                    then_state: StateId(2),
                    else_state: StateId(1),
                },
            })
            .unwrap();
            f.add_state(State {
                ops: vec![MicroOp {
                    dst: RegId(1),
                    op: OpKind::Add,
                    args: vec![Operand::Input(0), Operand::Input(1)],
                }],
                next: Next::Done,
            })
            .unwrap();
            f
        };
        let iface = synthesize_interface(vec![DeviceSpec::new(
            "acc",
            DeviceKind::Coprocessor(slow_adder),
        )])
        .unwrap();

        // Overlapped: start, do local work, then wait.
        let overlapped = "\
            li r1, 20\n\
            li r2, 22\n\
            jal r15, drv_acc_start\n\
            li r5, 15\n\
            work: addi r5, r5, -1\n\
            bne r5, r0, work\n\
            jal r15, drv_acc_wait\n\
            sd r1, r0, 64\n\
            halt\n";
        let (mut cpu, _) = iface.build_system(overlapped).unwrap();
        let overlapped_stats = cpu.run(1_000_000).unwrap();
        assert_eq!(cpu.load_word(64).unwrap(), 42);

        // Serial: blocking call first, then the same local work.
        let serial = "\
            li r1, 20\n\
            li r2, 22\n\
            jal r15, drv_acc_call\n\
            sd r1, r0, 64\n\
            li r5, 15\n\
            work: addi r5, r5, -1\n\
            bne r5, r0, work\n\
            halt\n";
        let (mut cpu, _) = iface.build_system(serial).unwrap();
        let serial_stats = cpu.run(1_000_000).unwrap();
        assert_eq!(cpu.load_word(64).unwrap(), 42);

        assert!(
            overlapped_stats.cycles < serial_stats.cycles,
            "overlap hides hardware latency: {} vs {}",
            overlapped_stats.cycles,
            serial_stats.cycles
        );
    }
}
