//! # codesign-synth
//!
//! Hardware/software co-synthesis flows for the mixed HW/SW co-design
//! framework (Adams & Thomas, DAC 1996, Sections 3.2 and 4).
//!
//! The paper defines co-synthesis as "integrated synthesis of hardware
//! and software components" in which tools "understand the relationship
//! between the hardware and software organizations and how design
//! decisions in one domain affect the options available in the other".
//! This crate implements one flow per surveyed system class:
//!
//! * [`multiproc`] — heterogeneous distributed multiprocessors
//!   (Section 4.2, Figure 5): processor allocation and task mapping by
//!   an **exact branch-and-bound** solver in the style of SOS's integer
//!   linear program \[12\], a **vector bin-packing** heuristic after Beck
//!   \[13\], and a **sensitivity-driven** iterative improver after
//!   Yen & Wolf \[9\]. Co-synthesis *without* HW/SW partitioning, as the
//!   paper classifies it.
//! * [`interface`] — embedded microprocessor systems (Section 4.1,
//!   Figure 4): Chinook-style \[11\] interface synthesis that allocates
//!   the address map, generates the glue-logic decoder netlist, and
//!   emits I/O driver code — "co-simulation and interface synthesis"
//!   with no partitioning.
//! * [`coproc`] — application-specific co-processors (Section 4.5,
//!   Figure 8): the full Type II flow — partition kernels, synthesize
//!   the hardware side to FSMDs with `codesign-hls`, mount them on the
//!   bus, generate the calling software, and execute the mixed system
//!   end-to-end on the instruction-set simulator.
//! * [`mthread`] — multi-threaded co-processors (Section 4.5.1,
//!   Figure 9): partition a process network onto the CPU and multiple
//!   controller/datapath pairs, weighing communication and concurrency
//!   as \[10\] does, and evaluate by message-level co-simulation \[3\].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coproc;
pub mod error;
pub mod interface;
pub mod mthread;
pub mod multiproc;

pub use error::SynthError;
