//! Error types for co-synthesis.

use std::error::Error;
use std::fmt;

use codesign_hls::HlsError;
use codesign_ir::IrError;
use codesign_isa::IsaError;
use codesign_partition::PartitionError;
use codesign_rtl::RtlError;
use codesign_sim::SimError;

/// Errors produced by the co-synthesis flows.
#[derive(Debug)]
#[non_exhaustive]
pub enum SynthError {
    /// No allocation satisfies the constraints (e.g. the deadline is
    /// below the critical path on the fastest processor).
    Infeasible {
        /// Human-readable reason.
        reason: String,
    },
    /// A device or task specification is malformed.
    BadSpec {
        /// Human-readable reason.
        reason: String,
    },
    /// Propagated IR error.
    Ir(IrError),
    /// Propagated behavioral-synthesis error.
    Hls(HlsError),
    /// Propagated software-toolchain error.
    Isa(IsaError),
    /// Propagated hardware-simulation error.
    Rtl(RtlError),
    /// Propagated co-simulation error.
    Sim(SimError),
    /// Propagated partitioning error.
    Partition(PartitionError),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::Infeasible { reason } => write!(f, "infeasible: {reason}"),
            SynthError::BadSpec { reason } => write!(f, "bad specification: {reason}"),
            SynthError::Ir(e) => write!(f, "ir: {e}"),
            SynthError::Hls(e) => write!(f, "hls: {e}"),
            SynthError::Isa(e) => write!(f, "isa: {e}"),
            SynthError::Rtl(e) => write!(f, "rtl: {e}"),
            SynthError::Sim(e) => write!(f, "sim: {e}"),
            SynthError::Partition(e) => write!(f, "partition: {e}"),
        }
    }
}

impl Error for SynthError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SynthError::Ir(e) => Some(e),
            SynthError::Hls(e) => Some(e),
            SynthError::Isa(e) => Some(e),
            SynthError::Rtl(e) => Some(e),
            SynthError::Sim(e) => Some(e),
            SynthError::Partition(e) => Some(e),
            _ => None,
        }
    }
}

macro_rules! impl_from {
    ($($variant:ident($ty:ty)),* $(,)?) => {
        $(
            #[doc(hidden)]
            impl From<$ty> for SynthError {
                fn from(e: $ty) -> Self {
                    SynthError::$variant(e)
                }
            }
        )*
    };
}

impl_from!(
    Ir(IrError),
    Hls(HlsError),
    Isa(IsaError),
    Rtl(RtlError),
    Sim(SimError),
    Partition(PartitionError),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_sources() {
        let e = SynthError::from(IsaError::Timeout { cycles: 1 });
        assert!(Error::source(&e).is_some());
        assert!(e.to_string().starts_with("isa:"));
    }
}
