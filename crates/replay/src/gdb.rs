//! A GDB Remote Serial Protocol server over the CR32 ISS, with reverse
//! execution backed by the checkpoint store.
//!
//! [`DebugSession`] drives a co-simulation in debugger control: the
//! coordinator's watchdog is disabled (a parked CPU would otherwise read
//! as wedged), the [`CpuEngine`] runs in debug mode, and a breakpoint or
//! watchpoint hit parks the CPU mid-horizon while the other engines
//! hold at the round boundary. Forward execution records checkpoints at
//! the session cadence; `reverse-step` / `reverse-continue` restore the
//! nearest checkpoint and re-execute forward — deterministic, so the
//! state reached backwards is bit-identical to the state that was there
//! the first time.
//!
//! [`serve`] speaks the RSP subset documented in DESIGN.md §16:
//! `qSupported` (advertising `ReverseStep+;ReverseContinue+`), `?`,
//! `g`/`G`, `p`/`P`, `m`/`M`, `c`, `s`, `Z0`/`z0` (software
//! breakpoints on instruction indices), `Z2`/`z2` (write watchpoints on
//! bus/memory addresses), `bs`/`bc`, `vCont`, `D`, and `k`. Granularity
//! note: forward/reverse stepping is per *instruction*; after a reverse
//! step the other engines hold at the anchor checkpoint's round until
//! the next `continue` re-synchronizes them.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};

use codesign_fault::SharedInjector;
use codesign_isa::cpu::{Cpu, DebugStop};
use codesign_isa::instr::{Reg, NUM_REGS};
use codesign_sim::adapters::CpuEngine;
use codesign_sim::engine::Coordinator;
use codesign_sim::error::SimError;

use crate::session::ReplaySession;

/// Why execution handed control back to the debugger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A software breakpoint (the CPU is parked *at* the breakpointed
    /// instruction, not past it).
    Breakpoint {
        /// The breakpointed instruction index.
        pc: usize,
    },
    /// A watchpoint fired (the access has executed).
    Watchpoint {
        /// The watched address.
        addr: u64,
        /// Whether the access was a write.
        write: bool,
    },
    /// The program halted.
    Halted,
    /// One instruction retired.
    Step,
    /// The round budget ran out without a debug event.
    Horizon,
    /// Reverse execution reached the beginning of the recorded history.
    ReplayEdge,
}

/// A debugger-controlled co-simulation over a [`ReplaySession`].
#[derive(Debug)]
pub struct DebugSession {
    session: ReplaySession,
    cpu_idx: usize,
    /// Rounds one `continue` may execute before reporting [`StopReason::Horizon`].
    max_rounds: u64,
    /// Mirror of the CPU's breakpoint set (the debugger needs to test
    /// membership; the CPU only exposes add/remove).
    breakpoints: BTreeSet<usize>,
    /// Instruction counts at recorded checkpoints, for reverse anchors.
    instrs_at: BTreeMap<u64, u64>,
}

impl DebugSession {
    /// Builds a debug session over a freshly built coordinator whose
    /// engines include exactly one [`CpuEngine`] (possibly behind a
    /// fault wrapper). Disables the watchdog and switches the CPU into
    /// debug mode.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Hardware`] if no engine downcasts to a
    /// [`CpuEngine`] or snapshots are unsupported.
    pub fn new(
        mut coord: Coordinator,
        injector: Option<SharedInjector>,
        cadence: u64,
    ) -> Result<Self, SimError> {
        coord.set_watchdog(None);
        let cpu_idx = coord
            .engines()
            .iter()
            .position(|e| e.as_any().is::<CpuEngine>())
            .ok_or_else(|| {
                SimError::Hardware(codesign_rtl::RtlError::State {
                    reason: "debug session needs a CpuEngine".into(),
                })
            })?;
        let mut session = ReplaySession::new(coord, injector, cadence)?;
        session.coordinator_mut().engines_mut()[cpu_idx]
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<CpuEngine>())
            .expect("position checked above")
            .set_debug_mode(true);
        let mut dbg = DebugSession {
            session,
            cpu_idx,
            max_rounds: 1_000_000,
            breakpoints: BTreeSet::new(),
            instrs_at: BTreeMap::new(),
        };
        dbg.instrs_at.insert(0, dbg.cpu().stats().instructions);
        Ok(dbg)
    }

    /// Caps how many rounds one `continue` may run.
    pub fn set_max_rounds(&mut self, rounds: u64) {
        self.max_rounds = rounds.max(1);
    }

    /// The debugged CPU.
    #[must_use]
    pub fn cpu(&self) -> &Cpu {
        self.session.coordinator().engines()[self.cpu_idx]
            .as_any()
            .downcast_ref::<CpuEngine>()
            .expect("index pinned at construction")
            .cpu()
    }

    fn engine_mut(&mut self) -> &mut CpuEngine {
        self.session.coordinator_mut().engines_mut()[self.cpu_idx]
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<CpuEngine>())
            .expect("index pinned at construction")
    }

    /// Mutable access to the debugged CPU (register/memory writes).
    pub fn cpu_mut(&mut self) -> &mut Cpu {
        self.engine_mut().cpu_mut()
    }

    /// The underlying replay session (checkpoint store, fingerprints).
    #[must_use]
    pub fn session(&self) -> &ReplaySession {
        &self.session
    }

    /// Sets a software breakpoint on an instruction index.
    pub fn add_breakpoint(&mut self, pc: usize) {
        self.breakpoints.insert(pc);
        self.cpu_mut().add_breakpoint(pc);
    }

    /// Clears a software breakpoint.
    pub fn remove_breakpoint(&mut self, pc: usize) {
        self.breakpoints.remove(&pc);
        self.cpu_mut().remove_breakpoint(pc);
    }

    /// Sets a write watchpoint on a bus/memory address.
    pub fn add_watchpoint(&mut self, addr: u64) {
        self.cpu_mut().add_watchpoint(addr);
    }

    /// Clears a write watchpoint.
    pub fn remove_watchpoint(&mut self, addr: u64) {
        self.cpu_mut().remove_watchpoint(addr);
    }

    fn map_stop(stop: DebugStop) -> StopReason {
        match stop {
            DebugStop::Halted => StopReason::Halted,
            DebugStop::Breakpoint { pc } => StopReason::Breakpoint { pc },
            DebugStop::Watchpoint { addr, write } => StopReason::Watchpoint { addr, write },
            DebugStop::Step => StopReason::Step,
            DebugStop::Horizon => StopReason::Horizon,
        }
    }

    fn note_checkpoint(&mut self) {
        let step = self.session.current_step();
        if self.session.store().digest(step).is_some() {
            let instrs = self.cpu().stats().instructions;
            self.instrs_at.insert(step, instrs);
        }
    }

    /// Retires one instruction (stepping *into* a breakpointed
    /// instruction is allowed, as GDB expects).
    ///
    /// # Errors
    ///
    /// Propagates CPU faults.
    pub fn step(&mut self) -> Result<StopReason, SimError> {
        let stop = self.cpu_mut().step_debug()?;
        Ok(Self::map_stop(stop))
    }

    /// Resumes execution until a breakpoint/watchpoint fires, the
    /// program halts, or the round budget runs out. Checkpoints are
    /// recorded at the session cadence as rounds complete.
    ///
    /// # Errors
    ///
    /// Propagates engine and coordinator errors.
    pub fn cont(&mut self) -> Result<StopReason, SimError> {
        // Resume-past-breakpoint protocol: if the CPU is parked at a
        // breakpointed pc, retire that one instruction first — otherwise
        // the next round would immediately re-report the same stop.
        if !self.cpu().halted() && self.breakpoints.contains(&self.cpu().pc()) {
            match self.step()? {
                StopReason::Step | StopReason::Breakpoint { .. } => {}
                stop => return Ok(stop),
            }
        }
        for _ in 0..self.max_rounds {
            if !self.session.step_round()? {
                return Ok(StopReason::Halted);
            }
            self.note_checkpoint();
            if let Some(stop) = self.engine_mut().take_stop() {
                return Ok(Self::map_stop(stop));
            }
        }
        Ok(StopReason::Horizon)
    }

    /// Replays deterministically until the CPU has retired exactly
    /// `target` instructions, starting from the best checkpoint anchor.
    fn replay_to_instr(&mut self, target: u64) -> Result<(), SimError> {
        let anchor = self
            .instrs_at
            .iter()
            .rev()
            .find(|&(_, &n)| n <= target)
            .map_or(0, |(&s, _)| s);
        self.session.restore_checkpoint(anchor)?;
        while self.cpu().stats().instructions < target && !self.cpu().halted() {
            // Stops are ignored during replay: the debugger is *moving*,
            // not running.
            let _ = self.cpu_mut().step_debug()?;
        }
        Ok(())
    }

    /// Steps one instruction backwards (restore nearest checkpoint +
    /// forward replay). At instruction 0 this reports
    /// [`StopReason::ReplayEdge`].
    ///
    /// # Errors
    ///
    /// Propagates restore and replay errors.
    pub fn reverse_step(&mut self) -> Result<StopReason, SimError> {
        let cur = self.cpu().stats().instructions;
        if cur == 0 {
            return Ok(StopReason::ReplayEdge);
        }
        self.replay_to_instr(cur - 1)?;
        Ok(StopReason::Step)
    }

    /// Runs backwards to the most recent earlier state whose pc sits at
    /// a breakpoint; without one, to the beginning of recorded history.
    ///
    /// # Errors
    ///
    /// Propagates restore and replay errors.
    pub fn reverse_cont(&mut self) -> Result<StopReason, SimError> {
        let cur = self.cpu().stats().instructions;
        if cur == 0 {
            return Ok(StopReason::ReplayEdge);
        }
        // Pass 1: scan [0, cur) from the beginning, remembering the last
        // state whose pc is breakpointed.
        self.session.restore_checkpoint(0)?;
        let mut hit = None;
        loop {
            let n = self.cpu().stats().instructions;
            if self.breakpoints.contains(&self.cpu().pc()) && n < cur {
                hit = Some(n);
            }
            if n + 1 >= cur || self.cpu().halted() {
                break;
            }
            let _ = self.cpu_mut().step_debug()?;
        }
        // Pass 2: position exactly there (or at the replay edge).
        match hit {
            Some(n) => {
                self.replay_to_instr(n)?;
                let pc = self.cpu().pc();
                Ok(StopReason::Breakpoint { pc })
            }
            None => {
                self.replay_to_instr(0)?;
                Ok(StopReason::ReplayEdge)
            }
        }
    }

    /// All GDB-visible registers: the 16 general registers then the pc.
    #[must_use]
    pub fn reg_block(&self) -> Vec<u64> {
        let cpu = self.cpu();
        let mut out: Vec<u64> = cpu.regs().iter().map(|&r| r as u64).collect();
        out.push(cpu.pc() as u64);
        out
    }

    /// Writes one GDB-visible register (`NUM_REGS` is the pc).
    pub fn write_reg(&mut self, idx: usize, value: u64) {
        if idx < NUM_REGS {
            self.cpu_mut().set_reg(Reg::new(idx as u8), value as i64);
        } else if idx == NUM_REGS {
            self.cpu_mut().set_pc(value as usize);
        }
    }
}

/// Number of GDB-visible registers: 16 general + pc.
pub const GDB_REGS: usize = NUM_REGS + 1;

fn checksum(payload: &[u8]) -> u8 {
    payload.iter().fold(0u8, |a, &b| a.wrapping_add(b))
}

fn write_packet(stream: &mut TcpStream, payload: &str) -> std::io::Result<()> {
    let frame = format!("${payload}#{:02x}", checksum(payload.as_bytes()));
    stream.write_all(frame.as_bytes())?;
    stream.flush()
}

/// Reads one `$...#xx` packet (acks and interrupts are skipped).
/// Returns `None` on EOF.
fn read_packet(reader: &mut BufReader<TcpStream>) -> std::io::Result<Option<String>> {
    let mut byte = [0u8; 1];
    loop {
        if reader.read(&mut byte)? == 0 {
            return Ok(None);
        }
        match byte[0] {
            b'$' => break,
            // Acks, nacks, and ^C interrupts carry no payload we act on.
            b'+' | b'-' | 0x03 => {}
            _ => {}
        }
    }
    let mut payload = Vec::new();
    loop {
        if reader.read(&mut byte)? == 0 {
            return Ok(None);
        }
        if byte[0] == b'#' {
            break;
        }
        payload.push(byte[0]);
    }
    let mut ck = [0u8; 2];
    reader.read_exact(&mut ck)?;
    Ok(Some(String::from_utf8_lossy(&payload).into_owned()))
}

fn stop_reply(reason: StopReason) -> String {
    match reason {
        StopReason::Halted => "W00".to_string(),
        StopReason::Watchpoint { addr, .. } => format!("T05watch:{addr:x};"),
        StopReason::ReplayEdge => "T05replaylog:begin;".to_string(),
        StopReason::Breakpoint { .. } | StopReason::Step | StopReason::Horizon => "S05".to_string(),
    }
}

fn hex_u64_le(v: u64) -> String {
    v.to_le_bytes().iter().map(|b| format!("{b:02x}")).collect()
}

fn parse_hex_u64_le(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    let mut bytes = [0u8; 8];
    for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
        bytes[i] = u8::from_str_radix(std::str::from_utf8(chunk).ok()?, 16).ok()?;
    }
    Some(u64::from_le_bytes(bytes))
}

fn handle(dbg: &mut DebugSession, cmd: &str) -> Result<Option<String>, SimError> {
    let reply = if cmd.starts_with("qSupported") {
        "PacketSize=4000;ReverseStep+;ReverseContinue+;swbreak+".to_string()
    } else if cmd == "?" {
        "S05".to_string()
    } else if cmd == "g" {
        dbg.reg_block().iter().map(|&v| hex_u64_le(v)).collect()
    } else if let Some(rest) = cmd.strip_prefix('G') {
        for (i, chunk) in rest.as_bytes().chunks(16).enumerate().take(GDB_REGS) {
            if let Some(v) = parse_hex_u64_le(std::str::from_utf8(chunk).unwrap_or("")) {
                dbg.write_reg(i, v);
            }
        }
        "OK".to_string()
    } else if let Some(rest) = cmd.strip_prefix('p') {
        match usize::from_str_radix(rest, 16) {
            Ok(i) if i < GDB_REGS => hex_u64_le(dbg.reg_block()[i]),
            _ => "E01".to_string(),
        }
    } else if let Some(rest) = cmd.strip_prefix('P') {
        let parsed = rest.split_once('=').and_then(|(idx, val)| {
            Some((usize::from_str_radix(idx, 16).ok()?, parse_hex_u64_le(val)?))
        });
        match parsed {
            Some((i, v)) if i < GDB_REGS => {
                dbg.write_reg(i, v);
                "OK".to_string()
            }
            _ => "E01".to_string(),
        }
    } else if let Some(rest) = cmd.strip_prefix('m') {
        let parsed = rest.split_once(',').and_then(|(a, l)| {
            Some((
                u64::from_str_radix(a, 16).ok()?,
                usize::from_str_radix(l, 16).ok()?,
            ))
        });
        match parsed {
            Some((addr, len)) => match dbg.cpu().read_mem_bytes(addr, len) {
                Ok(bytes) => bytes.iter().map(|b| format!("{b:02x}")).collect(),
                Err(_) => "E01".to_string(),
            },
            None => "E01".to_string(),
        }
    } else if let Some(rest) = cmd.strip_prefix('M') {
        let parsed = rest.split_once(':').and_then(|(spec, data)| {
            let (a, l) = spec.split_once(',')?;
            let addr = u64::from_str_radix(a, 16).ok()?;
            let len = usize::from_str_radix(l, 16).ok()?;
            if data.len() != len * 2 {
                return None;
            }
            let bytes: Option<Vec<u8>> = data
                .as_bytes()
                .chunks(2)
                .map(|c| u8::from_str_radix(std::str::from_utf8(c).ok()?, 16).ok())
                .collect();
            Some((addr, bytes?))
        });
        match parsed {
            Some((addr, bytes)) if dbg.cpu_mut().write_mem_bytes(addr, &bytes).is_ok() => {
                "OK".to_string()
            }
            _ => "E01".to_string(),
        }
    } else if cmd == "c" || cmd == "vCont;c" {
        stop_reply(dbg.cont()?)
    } else if cmd == "s" || cmd == "vCont;s" {
        stop_reply(dbg.step()?)
    } else if cmd == "bs" {
        stop_reply(dbg.reverse_step()?)
    } else if cmd == "bc" {
        stop_reply(dbg.reverse_cont()?)
    } else if cmd == "vCont?" {
        "vCont;c;s".to_string()
    } else if let Some(rest) = cmd.strip_prefix("Z0,") {
        match rest
            .split(',')
            .next()
            .and_then(|a| usize::from_str_radix(a, 16).ok())
        {
            Some(pc) => {
                dbg.add_breakpoint(pc);
                "OK".to_string()
            }
            None => "E01".to_string(),
        }
    } else if let Some(rest) = cmd.strip_prefix("z0,") {
        match rest
            .split(',')
            .next()
            .and_then(|a| usize::from_str_radix(a, 16).ok())
        {
            Some(pc) => {
                dbg.remove_breakpoint(pc);
                "OK".to_string()
            }
            None => "E01".to_string(),
        }
    } else if let Some(rest) = cmd.strip_prefix("Z2,") {
        match rest
            .split(',')
            .next()
            .and_then(|a| u64::from_str_radix(a, 16).ok())
        {
            Some(addr) => {
                dbg.add_watchpoint(addr);
                "OK".to_string()
            }
            None => "E01".to_string(),
        }
    } else if let Some(rest) = cmd.strip_prefix("z2,") {
        match rest
            .split(',')
            .next()
            .and_then(|a| u64::from_str_radix(a, 16).ok())
        {
            Some(addr) => {
                dbg.remove_watchpoint(addr);
                "OK".to_string()
            }
            None => "E01".to_string(),
        }
    } else if cmd == "D" {
        return Ok(None); // detach: ack handled by the caller
    } else if cmd == "k" {
        return Ok(None);
    } else {
        // Unsupported packet: the empty reply, per the protocol.
        String::new()
    };
    Ok(Some(reply))
}

/// Serves one GDB client connection on `listener`, then returns. Replies
/// `E01`-style errors for malformed packets and closes on `D`/`k`.
///
/// # Errors
///
/// Propagates socket I/O errors; simulation errors are reported to the
/// client as `E02` and end the session.
pub fn serve(listener: &TcpListener, mut dbg: DebugSession) -> std::io::Result<()> {
    let (stream, _) = listener.accept()?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    while let Some(cmd) = read_packet(&mut reader)? {
        // Ack receipt, then reply.
        writer.write_all(b"+")?;
        match handle(&mut dbg, &cmd) {
            Ok(Some(reply)) => write_packet(&mut writer, &reply)?,
            Ok(None) => {
                if cmd == "D" {
                    write_packet(&mut writer, "OK")?;
                }
                break;
            }
            Err(e) => {
                let _ = e;
                write_packet(&mut writer, "E02")?;
                break;
            }
        }
    }
    Ok(())
}
