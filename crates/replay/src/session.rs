//! Checkpoint/restore of whole co-simulations, and the replay session
//! that turns checkpoints into time travel.
//!
//! A checkpoint blob is `[coordinator bytes][injector bytes]`, each
//! length-prefixed: the coordinator part is the complete dynamic state
//! of every engine (ISS architectural state, bus and device state,
//! message queues, clocks and stats), the optional injector part is the
//! fault injector's substream positions and fault log. Restoring a blob
//! into a structurally identical coordinator resumes the run such that
//! it is *bit-identical* to one that never stopped — the property the
//! crate's proptests pin across all four abstraction-ladder levels.
//!
//! [`ReplaySession`] records checkpoints at a fixed round cadence while
//! stepping a coordinator, and implements reverse execution as
//! nearest-checkpoint restore plus deterministic forward re-execution.

use codesign_fault::SharedInjector;
use codesign_rtl::state::{StateReader, StateWriter};
use codesign_rtl::RtlError;
use codesign_sim::engine::Coordinator;
use codesign_sim::error::SimError;
use codesign_sim::fingerprint::coordinator_fingerprint;

use crate::store::{StateStore, DEFAULT_PAGE_SIZE};

/// Serializes a coordinator (and optionally the run's fault injector)
/// into one checkpoint blob.
#[must_use]
pub fn snapshot(coord: &Coordinator, injector: Option<&SharedInjector>) -> Vec<u8> {
    let mut cw = StateWriter::new();
    coord.save_state(&mut cw);
    let mut w = StateWriter::new();
    w.bytes(&cw.into_bytes());
    match injector {
        Some(inj) => {
            w.bool(true);
            let mut iw = StateWriter::new();
            inj.borrow().save_state(&mut iw);
            w.bytes(&iw.into_bytes());
        }
        None => w.bool(false),
    }
    w.into_bytes()
}

/// Restores a checkpoint blob taken by [`snapshot`] into a structurally
/// identical coordinator (same engines, same order, same programs).
///
/// # Errors
///
/// Returns [`SimError::Hardware`] on truncated or shape-mismatched
/// bytes, including an injector section restored into a run whose
/// injector has a different seed.
pub fn restore(
    coord: &mut Coordinator,
    injector: Option<&SharedInjector>,
    blob: &[u8],
) -> Result<(), SimError> {
    let mut r = StateReader::new(blob);
    let coord_bytes = r.bytes()?;
    let mut cr = StateReader::new(coord_bytes);
    coord.restore_state(&mut cr)?;
    cr.finish()?;
    if r.bool()? {
        let inj_bytes = r.bytes()?;
        let Some(inj) = injector else {
            return Err(SimError::Hardware(RtlError::State {
                reason: "checkpoint carries injector state but the run has no injector".into(),
            }));
        };
        let mut ir = StateReader::new(inj_bytes);
        inj.borrow_mut().restore_state(&mut ir)?;
        ir.finish()?;
    }
    r.finish()?;
    Ok(())
}

/// The coordinator section of a checkpoint blob — the part divergence
/// bisection compares (the injector log legitimately differs between a
/// golden and a faulty run).
///
/// # Errors
///
/// Returns [`SimError::Hardware`] on truncated bytes.
pub fn coordinator_bytes(blob: &[u8]) -> Result<&[u8], SimError> {
    let mut r = StateReader::new(blob);
    Ok(r.bytes()?)
}

/// A coordinator stepped round by round under checkpoint recording,
/// with reverse execution by restore-and-replay.
#[derive(Debug)]
pub struct ReplaySession {
    coord: Coordinator,
    injector: Option<SharedInjector>,
    store: StateStore,
    cadence: u64,
    step: u64,
    budget: u64,
}

impl ReplaySession {
    /// Wraps a freshly built coordinator (step 0 — not yet run) and
    /// records the step-0 checkpoint. `cadence` is the number of rounds
    /// between checkpoints.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Hardware`] if any engine does not support
    /// snapshots.
    pub fn new(
        coord: Coordinator,
        injector: Option<SharedInjector>,
        cadence: u64,
    ) -> Result<Self, SimError> {
        if !coord.supports_snapshot() {
            return Err(SimError::Hardware(RtlError::State {
                reason: "an engine does not support snapshots".into(),
            }));
        }
        let mut session = ReplaySession {
            coord,
            injector,
            store: StateStore::new(DEFAULT_PAGE_SIZE),
            cadence: cadence.max(1),
            step: 0,
            budget: u64::MAX,
        };
        session.record();
        Ok(session)
    }

    /// Caps the simulated-time budget passed to each round (defaults to
    /// unlimited; fault scenarios use it to convert spins into
    /// [`SimError::Budget`]).
    pub fn set_budget(&mut self, budget: u64) {
        self.budget = budget;
    }

    /// The wrapped coordinator.
    #[must_use]
    pub fn coordinator(&self) -> &Coordinator {
        &self.coord
    }

    /// Mutable access to the wrapped coordinator (debugger frontends).
    #[must_use]
    pub fn coordinator_mut(&mut self) -> &mut Coordinator {
        &mut self.coord
    }

    /// The checkpoint store.
    #[must_use]
    pub fn store(&self) -> &StateStore {
        &self.store
    }

    /// Rounds executed since the session began.
    #[must_use]
    pub fn current_step(&self) -> u64 {
        self.step
    }

    /// The checkpoint cadence in rounds.
    #[must_use]
    pub fn cadence(&self) -> u64 {
        self.cadence
    }

    /// Serializes the *current* state (not a stored checkpoint).
    #[must_use]
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        snapshot(&self.coord, self.injector.as_ref())
    }

    /// The shared golden fingerprint of the current state.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        coordinator_fingerprint(&self.coord, self.coord.stats().time)
    }

    fn record(&mut self) {
        let blob = self.snapshot_bytes();
        self.store.insert(self.step, &blob);
    }

    /// Executes one coordination round and records a checkpoint when the
    /// step lands on the cadence. Returns `false` (without stepping) if
    /// the coordination is already done.
    ///
    /// # Errors
    ///
    /// Propagates engine and coordinator errors.
    pub fn step_round(&mut self) -> Result<bool, SimError> {
        if self.coord.is_done() {
            return Ok(false);
        }
        self.coord.run_one_round(self.budget)?;
        self.step += 1;
        if self.step.is_multiple_of(self.cadence) || self.coord.is_done() {
            self.record();
        }
        Ok(true)
    }

    /// Runs to completion (or `max_rounds`), recording checkpoints.
    /// Returns the number of rounds executed by this call.
    ///
    /// # Errors
    ///
    /// Propagates engine and coordinator errors.
    pub fn run_to_end(&mut self, max_rounds: u64) -> Result<u64, SimError> {
        let mut executed = 0;
        while executed < max_rounds && self.step_round()? {
            executed += 1;
        }
        Ok(executed)
    }

    /// Restores the *exact* checkpoint at `step` (no forward replay).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Hardware`] if no checkpoint exists at `step`
    /// or the blob fails to restore.
    pub fn restore_checkpoint(&mut self, step: u64) -> Result<(), SimError> {
        let blob = self.store.get(step).ok_or_else(|| {
            SimError::Hardware(RtlError::State {
                reason: format!("no checkpoint at step {step}"),
            })
        })?;
        restore(&mut self.coord, self.injector.as_ref(), &blob)?;
        self.step = step;
        Ok(())
    }

    /// Travels to `step`: restores the nearest checkpoint at or before
    /// it, then deterministically re-executes forward to exactly `step`
    /// rounds.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Hardware`] if `step` precedes every
    /// checkpoint (cannot happen while step 0 is retained), and
    /// propagates replay errors.
    pub fn restore_to(&mut self, step: u64) -> Result<(), SimError> {
        let anchor = self.store.nearest_at_or_before(step).ok_or_else(|| {
            SimError::Hardware(RtlError::State {
                reason: format!("no checkpoint at or before step {step}"),
            })
        })?;
        self.restore_checkpoint(anchor)?;
        while self.step < step && self.step_round()? {}
        Ok(())
    }

    /// Steps `n` rounds backwards (saturating at step 0) by restoring
    /// the nearest checkpoint and replaying forward.
    ///
    /// # Errors
    ///
    /// As [`ReplaySession::restore_to`].
    pub fn reverse_step(&mut self, n: u64) -> Result<(), SimError> {
        let target = self.step.saturating_sub(n);
        self.restore_to(target)
    }
}
