//! # codesign-replay
//!
//! Time-travel debugging for the mixed HW/SW co-simulation stack
//! (Adams & Thomas, DAC 1996): the paper's co-simulation environment
//! answers "what does the system do?"; this crate answers "*when* did
//! it start doing the wrong thing?".
//!
//! * [`store`] — the versioned state store: page-based,
//!   content-deduplicated checkpoints indexed by coordination step.
//! * [`session`] — checkpoint/restore of a whole
//!   [`Coordinator`](codesign_sim::engine::Coordinator) (ISS
//!   architectural state, RTL bus/FIFO/peripheral state, message-engine
//!   queues, clocks and stats, plus the fault injector's RNG
//!   substreams), and [`session::ReplaySession`]: record at a cadence,
//!   restore to any step, reverse-step by deterministic re-execution. A
//!   restored run is bit-identical to an uninterrupted one.
//! * [`gdb`] — a GDB Remote Serial Protocol server over the CR32 ISS
//!   with breakpoints, bus-address watchpoints, and
//!   `ReverseStep`/`ReverseContinue`, usable mid-co-simulation.
//! * [`bisect`] — divergence bisection: binary-search the checkpoint
//!   history of a faulty run against its golden twin to report the
//!   exact first round their states differ, in `O(log C + K)` probes
//!   instead of a linear scan.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bisect;
pub mod gdb;
pub mod session;
pub mod store;

pub use bisect::{bisect_divergence, linear_first_divergence, BisectReport};
pub use gdb::{serve, DebugSession, StopReason};
pub use session::{restore, snapshot, ReplaySession};
pub use store::{StateStore, StoreStats};
