//! Divergence bisection: find the exact first round a faulty run
//! departs its golden twin, in `O(log C + K)` state comparisons instead
//! of a linear scan.
//!
//! Both runs execute in **lockstep** mode (fixed quantum grid) so round
//! `i` means the same simulated horizon in both; lookahead leaping would
//! let the two runs take differently sized rounds and misalign the
//! indices. Checkpoints are recorded at the session cadence, compared by
//! whole-blob digest during the binary search, and the exact round is
//! then pinned by restoring both runs to the last agreeing checkpoint
//! and replaying round by round. Only the **coordinator** section of
//! each blob is compared — the injector's fault log legitimately differs
//! between a quiet and a faulted run and must not read as state
//! divergence.
//!
//! A run that *errors* (a detected fault, a budget timeout, the
//! watchdog) is treated as ending at that round: its state freezes
//! there, the error is reported in the [`BisectReport`], and — since
//! replaying is deterministic — the error recurs at the same round
//! during refinement.
//!
//! Like `git bisect`, this assumes the divergence is **monotone**: once
//! the states differ they stay different. A purely transient difference
//! (say, a corrupted word pushed into a FIFO that later drains away, the
//! *masked* class of the fault campaign) re-converges and is reported as
//! no divergence; [`linear_first_divergence`] — which compares after
//! every round — is the tool for those.

use codesign_fault::SharedInjector;
use codesign_rtl::state::fnv1a_bytes;
use codesign_sim::engine::Coordinator;
use codesign_sim::error::SimError;

use crate::session::{coordinator_bytes, ReplaySession};

/// How a bisection (or linear scan) concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BisectReport {
    /// The first round index after which the two runs' coordinator
    /// states differ (1-based: divergence introduced *during* this
    /// round). `None` when the runs never diverge within the horizon.
    pub first_divergent_round: Option<u64>,
    /// State comparisons the bisection performed (checkpoint digest
    /// probes plus refinement rounds).
    pub probes: u64,
    /// State comparisons a linear scan needs to find the same round
    /// (one per round up to and including the divergent one, or the
    /// full horizon when there is none).
    pub linear_probes: u64,
    /// Rounds both runs executed.
    pub rounds: u64,
    /// Checkpoints on the shared bisection grid.
    pub checkpoints: u64,
    /// The golden run's final fingerprint.
    pub golden_fingerprint: String,
    /// The faulty run's final fingerprint.
    pub faulty_fingerprint: String,
    /// The error (if any) that ended the golden run.
    pub golden_error: Option<String>,
    /// The error (if any) that ended the faulty run — a detected fault,
    /// a budget timeout, or the watchdog.
    pub faulty_error: Option<String>,
}

/// One run under bisection: a replay session plus an error latch — an
/// erroring run "ends" at the error round and its first error is kept
/// for the report.
struct Run {
    s: ReplaySession,
    /// Set while the current execution has hit a terminal error;
    /// cleared by restores (deterministic replay re-encounters it).
    dead: bool,
    error: Option<String>,
}

impl Run {
    fn new(
        factory: impl Fn() -> Result<(Coordinator, Option<SharedInjector>), SimError>,
        cadence: u64,
        budget: u64,
    ) -> Result<Run, SimError> {
        let (coord, inj) = factory()?;
        let mut s = ReplaySession::new(coord, inj, cadence)?;
        s.set_budget(budget);
        Ok(Run {
            s,
            dead: false,
            error: None,
        })
    }

    /// Steps one round; an engine/coordinator error ends the run
    /// (`Ok(false)`) instead of propagating.
    fn step(&mut self) -> bool {
        if self.dead {
            return false;
        }
        match self.s.step_round() {
            Ok(advanced) => advanced,
            Err(e) => {
                self.dead = true;
                if self.error.is_none() {
                    self.error = Some(e.to_string());
                }
                false
            }
        }
    }

    fn restore(&mut self, step: u64) -> Result<(), SimError> {
        self.s.restore_checkpoint(step)?;
        self.dead = false;
        Ok(())
    }

    /// The state observable compared between runs: an FNV digest of the
    /// coordinator section of the current snapshot.
    fn key(&self) -> Result<u64, SimError> {
        let blob = self.s.snapshot_bytes();
        Ok(fnv1a_bytes(coordinator_bytes(&blob)?))
    }

    fn checkpoint_key(&self, step: u64) -> Result<Option<u64>, SimError> {
        match self.s.store().get(step) {
            Some(blob) => Ok(Some(fnv1a_bytes(coordinator_bytes(&blob)?))),
            None => Ok(None),
        }
    }
}

/// Bisects the first divergent round between two runs built by the
/// given factories. Each factory must produce a *freshly built*,
/// deterministic run (coordinator plus its optional injector); the two
/// must be structurally identical and use lockstep coordination.
/// `budget` caps simulated time per run (use `u64::MAX` for none) so
/// fault-induced spins end in a budget error instead of running to
/// `max_rounds`.
///
/// # Errors
///
/// Propagates build and checkpoint-restore errors; *run* errors end the
/// affected run and are reported in the [`BisectReport`] instead.
pub fn bisect_divergence(
    golden: impl Fn() -> Result<(Coordinator, Option<SharedInjector>), SimError>,
    faulty: impl Fn() -> Result<(Coordinator, Option<SharedInjector>), SimError>,
    cadence: u64,
    max_rounds: u64,
    budget: u64,
) -> Result<BisectReport, SimError> {
    let mut g = Run::new(golden, cadence, budget)?;
    let mut f = Run::new(faulty, cadence, budget)?;

    // Phase 1: run both to completion (or error, or the horizon),
    // recording checkpoints. The runs may end after different round
    // counts; the shared grid is the rounds both executed.
    while g.s.current_step() < max_rounds && g.step() {}
    while f.s.current_step() < max_rounds && f.step() {}
    let rounds = g.s.current_step().min(f.s.current_step());
    // Fingerprints are taken at each run's own end state.
    let golden_fingerprint = g.s.fingerprint();
    let faulty_fingerprint = f.s.fingerprint();

    let mut probes = 0u64;

    // Phase 2: binary search the checkpoint grid for the first step
    // whose stored states differ. Steps checkpointed in both runs form
    // the grid; step 0 is always on it.
    let grid: Vec<u64> =
        g.s.store()
            .steps()
            .into_iter()
            .filter(|&s| s <= rounds && f.s.store().digest(s).is_some())
            .collect();
    let mut first_bad_idx = None;
    let (mut lo, mut hi) = (0usize, grid.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        probes += 1;
        let differs = match (g.checkpoint_key(grid[mid])?, f.checkpoint_key(grid[mid])?) {
            (Some(a), Some(b)) => a != b,
            _ => false,
        };
        if differs {
            first_bad_idx = Some(mid);
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }

    // Phase 3: replay round by round from the last agreeing checkpoint
    // (or the last grid point, when divergence only shows after it) and
    // compare live state each round.
    let replay_from = match first_bad_idx {
        Some(0) => Some(grid[0]),
        Some(i) => Some(grid[i - 1]),
        // No checkpoint differs: divergence, if any, happened after the
        // last shared checkpoint (e.g. inside the final partial cadence
        // window). Only worth replaying when the end states differ.
        None => {
            probes += 1;
            if g.key()? != f.key()? || golden_fingerprint != faulty_fingerprint {
                grid.last().copied()
            } else {
                None
            }
        }
    };

    let mut first_divergent_round = None;
    if let Some(anchor) = replay_from {
        g.restore(anchor)?;
        f.restore(anchor)?;
        probes += 1;
        if g.key()? != f.key()? {
            // The anchor itself differs — only possible when the very
            // first checkpoint (step 0) already diverged.
            first_divergent_round = Some(anchor);
        } else {
            let mut step = anchor;
            while step < max_rounds {
                let ga = g.step();
                let fa = f.step();
                if !ga && !fa {
                    break;
                }
                step += 1;
                probes += 1;
                if g.key()? != f.key()? {
                    first_divergent_round = Some(step);
                    break;
                }
            }
        }
    }

    let linear_probes = first_divergent_round.unwrap_or(rounds);
    Ok(BisectReport {
        first_divergent_round,
        probes,
        linear_probes,
        rounds,
        checkpoints: grid.len() as u64,
        golden_fingerprint,
        faulty_fingerprint,
        golden_error: g.error,
        faulty_error: f.error,
    })
}

/// The reference oracle: steps both runs together and compares state
/// after every round. `O(rounds)` comparisons; the tests pin
/// [`bisect_divergence`] against this.
///
/// # Errors
///
/// Propagates build errors; run errors end the affected run, as in
/// [`bisect_divergence`].
pub fn linear_first_divergence(
    golden: impl Fn() -> Result<(Coordinator, Option<SharedInjector>), SimError>,
    faulty: impl Fn() -> Result<(Coordinator, Option<SharedInjector>), SimError>,
    max_rounds: u64,
    budget: u64,
) -> Result<Option<u64>, SimError> {
    let mut g = Run::new(golden, u64::MAX, budget)?;
    let mut f = Run::new(faulty, u64::MAX, budget)?;
    let mut step = 0;
    while step < max_rounds {
        let ga = g.step();
        let fa = f.step();
        if !ga && !fa {
            return Ok(None);
        }
        step += 1;
        if g.key()? != f.key()? {
            return Ok(Some(step));
        }
    }
    Ok(None)
}
