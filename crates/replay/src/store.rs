//! The versioned state store: page-based, content-deduplicated
//! checkpoints indexed by step.
//!
//! A checkpoint is a serialized coordinator blob split into fixed-size
//! pages. Pages are content-addressed (FNV-1a, with bucket chaining so a
//! hash collision can never corrupt a restore): consecutive checkpoints
//! of a mostly-idle system share almost every page, so the store's
//! footprint grows with the *rate of change* of simulation state, not
//! with the number of checkpoints. This is what makes a dense checkpoint
//! cadence — and therefore cheap reverse execution — affordable.

use std::collections::{BTreeMap, HashMap};

use codesign_rtl::state::fnv1a_bytes;

/// Default page size in bytes. Small enough that a few dirty bytes do
/// not invalidate a large page, large enough that per-page bookkeeping
/// stays negligible.
pub const DEFAULT_PAGE_SIZE: usize = 256;

/// A reference to one stored page: its content hash plus the index into
/// that hash's bucket (almost always 0; nonzero only on a collision).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PageRef {
    hash: u64,
    bucket: u32,
}

/// One checkpoint's metadata: the page list and the blob's total length.
#[derive(Debug, Clone)]
struct Checkpoint {
    pages: Vec<PageRef>,
    len: usize,
    /// FNV-1a over the whole blob, for cheap divergence probes.
    digest: u64,
}

/// Aggregate store statistics (for `BENCH_replay.json` and diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Checkpoints currently stored.
    pub checkpoints: usize,
    /// Sum of all checkpoint blob lengths (what a naive store would hold).
    pub logical_bytes: u64,
    /// Bytes actually held in unique pages.
    pub stored_bytes: u64,
    /// Unique pages held.
    pub unique_pages: usize,
    /// Total page references across all checkpoints.
    pub total_pages: u64,
}

impl StoreStats {
    /// Deduplication ratio: logical bytes per stored byte (≥ 1.0 once
    /// anything is stored; higher is better).
    #[must_use]
    pub fn dedup_ratio(&self) -> f64 {
        if self.stored_bytes == 0 {
            1.0
        } else {
            self.logical_bytes as f64 / self.stored_bytes as f64
        }
    }
}

/// The page-deduplicating checkpoint store.
#[derive(Debug)]
pub struct StateStore {
    page_size: usize,
    /// Content-addressed pages: hash → bucket of distinct page bodies
    /// that share the hash.
    pages: HashMap<u64, Vec<Box<[u8]>>>,
    /// Step-indexed checkpoint history.
    checkpoints: BTreeMap<u64, Checkpoint>,
}

impl StateStore {
    /// Creates a store with the given page size (clamped to at least 1).
    #[must_use]
    pub fn new(page_size: usize) -> Self {
        StateStore {
            page_size: page_size.max(1),
            pages: HashMap::new(),
            checkpoints: BTreeMap::new(),
        }
    }

    /// The configured page size.
    #[must_use]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Stores `blob` as the checkpoint for `step`, deduplicating pages
    /// against everything already stored. Re-inserting the same step
    /// replaces its checkpoint (identical bytes are a no-op in space).
    pub fn insert(&mut self, step: u64, blob: &[u8]) {
        let digest = fnv1a_bytes(blob);
        let mut pages = Vec::with_capacity(blob.len().div_ceil(self.page_size));
        for chunk in blob.chunks(self.page_size) {
            let hash = fnv1a_bytes(chunk);
            let bucket = self.pages.entry(hash).or_default();
            let idx = match bucket.iter().position(|p| &**p == chunk) {
                Some(i) => i,
                None => {
                    bucket.push(chunk.to_vec().into_boxed_slice());
                    bucket.len() - 1
                }
            };
            pages.push(PageRef {
                hash,
                bucket: u32::try_from(idx).expect("bucket chains stay tiny"),
            });
        }
        self.checkpoints.insert(
            step,
            Checkpoint {
                pages,
                len: blob.len(),
                digest,
            },
        );
    }

    /// Reassembles the checkpoint stored for exactly `step`.
    #[must_use]
    pub fn get(&self, step: u64) -> Option<Vec<u8>> {
        let cp = self.checkpoints.get(&step)?;
        let mut blob = Vec::with_capacity(cp.len);
        for r in &cp.pages {
            blob.extend_from_slice(&self.pages[&r.hash][r.bucket as usize]);
        }
        debug_assert_eq!(blob.len(), cp.len);
        Some(blob)
    }

    /// The whole-blob digest of the checkpoint at `step` (a divergence
    /// probe without reassembly).
    #[must_use]
    pub fn digest(&self, step: u64) -> Option<u64> {
        self.checkpoints.get(&step).map(|c| c.digest)
    }

    /// The latest checkpointed step at or before `step`.
    #[must_use]
    pub fn nearest_at_or_before(&self, step: u64) -> Option<u64> {
        self.checkpoints.range(..=step).next_back().map(|(&s, _)| s)
    }

    /// The latest checkpointed step.
    #[must_use]
    pub fn latest(&self) -> Option<u64> {
        self.checkpoints.keys().next_back().copied()
    }

    /// All checkpointed steps, ascending.
    #[must_use]
    pub fn steps(&self) -> Vec<u64> {
        self.checkpoints.keys().copied().collect()
    }

    /// Aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        let stored_bytes: u64 = self
            .pages
            .values()
            .flat_map(|bucket| bucket.iter().map(|p| p.len() as u64))
            .sum();
        StoreStats {
            checkpoints: self.checkpoints.len(),
            logical_bytes: self.checkpoints.values().map(|c| c.len as u64).sum(),
            stored_bytes,
            unique_pages: self.pages.values().map(Vec::len).sum(),
            total_pages: self
                .checkpoints
                .values()
                .map(|c| c.pages.len() as u64)
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_blobs_of_awkward_sizes() {
        let mut store = StateStore::new(16);
        for (step, len) in [(0u64, 0usize), (1, 1), (2, 15), (3, 16), (4, 17), (5, 1000)] {
            let blob: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(31)).collect();
            store.insert(step, &blob);
            assert_eq!(store.get(step).unwrap(), blob, "len {len}");
        }
    }

    #[test]
    fn identical_checkpoints_share_all_pages() {
        let mut store = StateStore::new(32);
        let blob = vec![0xA5u8; 1024];
        store.insert(0, &blob);
        let once = store.stats();
        for step in 1..64 {
            store.insert(step, &blob);
        }
        let many = store.stats();
        assert_eq!(many.stored_bytes, once.stored_bytes, "no new pages");
        assert_eq!(many.logical_bytes, 64 * 1024);
        assert!(many.dedup_ratio() > 60.0);
    }

    #[test]
    fn small_deltas_cost_one_page() {
        let mut store = StateStore::new(64);
        let mut blob = vec![0u8; 640];
        store.insert(0, &blob);
        let before = store.stats().stored_bytes;
        blob[5] ^= 0xFF; // dirty exactly one page
        store.insert(1, &blob);
        assert_eq!(store.stats().stored_bytes, before + 64);
    }

    #[test]
    fn nearest_and_latest_navigate_the_history() {
        let mut store = StateStore::new(16);
        for step in [0u64, 8, 16, 24] {
            store.insert(step, &step.to_le_bytes());
        }
        assert_eq!(store.nearest_at_or_before(0), Some(0));
        assert_eq!(store.nearest_at_or_before(7), Some(0));
        assert_eq!(store.nearest_at_or_before(8), Some(8));
        assert_eq!(store.nearest_at_or_before(100), Some(24));
        assert_eq!(store.latest(), Some(24));
        assert_eq!(store.steps(), vec![0, 8, 16, 24]);
    }

    #[test]
    fn digests_differ_when_content_differs() {
        let mut store = StateStore::new(16);
        store.insert(0, b"aaaa");
        store.insert(1, b"aaab");
        store.insert(2, b"aaaa");
        assert_ne!(store.digest(0), store.digest(1));
        assert_eq!(store.digest(0), store.digest(2));
        assert_eq!(store.digest(3), None);
    }

    #[test]
    fn colliding_hashes_would_chain_not_corrupt() {
        // Force the degenerate page size so every byte is its own page;
        // distinct one-byte pages have distinct FNV hashes, but the
        // bucket machinery is still exercised end to end.
        let mut store = StateStore::new(1);
        let blob: Vec<u8> = (0..=255u8).collect();
        store.insert(0, &blob);
        assert_eq!(store.get(0).unwrap(), blob);
        assert_eq!(store.stats().unique_pages, 256);
    }
}
