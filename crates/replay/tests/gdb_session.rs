//! Scripted GDB Remote Serial Protocol session: a raw-packet TCP client
//! (no gdb binary) drives the server through breakpoints, stepping,
//! reverse-stepping, watchpoints, memory and register access, and
//! detach.

mod common;

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

use codesign_replay::{serve, DebugSession};
use common::build_level;

fn checksum(payload: &str) -> u8 {
    payload.bytes().fold(0u8, |a, b| a.wrapping_add(b))
}

struct Client {
    stream: TcpStream,
}

impl Client {
    /// Sends one packet and returns the server's reply payload (acks
    /// skipped).
    fn exchange(&mut self, payload: &str) -> String {
        let frame = format!("${payload}#{:02x}", checksum(payload));
        self.stream.write_all(frame.as_bytes()).unwrap();
        let mut byte = [0u8; 1];
        // Skip acks until the reply's '$'.
        loop {
            self.stream.read_exact(&mut byte).unwrap();
            if byte[0] == b'$' {
                break;
            }
            assert_eq!(byte[0], b'+', "unexpected byte before reply");
        }
        let mut reply = String::new();
        loop {
            self.stream.read_exact(&mut byte).unwrap();
            if byte[0] == b'#' {
                break;
            }
            reply.push(byte[0] as char);
        }
        let mut ck = [0u8; 2];
        self.stream.read_exact(&mut ck).unwrap();
        let sent = u8::from_str_radix(std::str::from_utf8(&ck).unwrap(), 16).unwrap();
        assert_eq!(sent, checksum(&reply), "reply checksum mismatch");
        reply
    }
}

fn hex_u64_le(v: u64) -> String {
    v.to_le_bytes().iter().map(|b| format!("{b:02x}")).collect()
}

/// In `producer_program`, instruction 3 is the `outer:` loop head and
/// instruction 10 is the `sw` that pushes into the FIFO's DATA register
/// at bus address `MMIO_BASE + 0x0 = 0x8000_0000`.
const OUTER_PC: u64 = 3;
const WATCH_ADDR: u64 = 0x8000_0000;

/// Spawns the server thread; the debug session is *built inside it*
/// (engines are not `Send` — the whole co-simulation lives and dies on
/// the serving thread).
fn spawn_server() -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let (coord, inj) = build_level(1);
        let dbg = DebugSession::new(coord, inj, 4).unwrap();
        serve(&listener, dbg)
    });
    (addr, handle)
}

#[test]
fn scripted_rsp_session() {
    let (addr, server) = spawn_server();

    let mut c = Client {
        stream: TcpStream::connect(addr).unwrap(),
    };

    // Handshake.
    let features = c.exchange("qSupported:swbreak+");
    assert!(features.contains("ReverseStep+"), "got {features}");
    assert!(features.contains("ReverseContinue+"), "got {features}");
    assert_eq!(c.exchange("?"), "S05");
    assert_eq!(c.exchange("vCont?"), "vCont;c;s");
    assert_eq!(
        c.exchange("qUnknownThing"),
        "",
        "unsupported packets get the empty reply"
    );

    // Memory write/read in internal data memory (clear of the program).
    assert_eq!(c.exchange("M100,8:1122334455667788"), "OK");
    assert_eq!(c.exchange("m100,8"), "1122334455667788");
    assert_eq!(c.exchange("m100,zz"), "E01");

    // Scratch register write/read (r8 is unused by the program).
    assert_eq!(c.exchange("P8=2a00000000000000"), "OK");
    assert_eq!(c.exchange("p8"), hex_u64_le(0x2a));
    assert_eq!(c.exchange("p40"), "E01", "register index out of range");

    // Breakpoint on the outer loop head, continue to it.
    assert_eq!(c.exchange(&format!("Z0,{OUTER_PC:x},1")), "OK");
    assert_eq!(c.exchange("c"), "S05");
    assert_eq!(
        c.exchange("p10"),
        hex_u64_le(OUTER_PC),
        "pc parked at the breakpoint"
    );

    // The g block is 17 little-endian u64s, pc last.
    let g = c.exchange("g");
    assert_eq!(g.len(), 17 * 16);
    assert_eq!(&g[16 * 16..], hex_u64_le(OUTER_PC));

    // Step into the breakpointed instruction, then reverse-step back.
    assert_eq!(c.exchange("s"), "S05");
    assert_eq!(c.exchange("p10"), hex_u64_le(OUTER_PC + 1));
    assert_eq!(c.exchange("bs"), "S05");
    assert_eq!(c.exchange("p10"), hex_u64_le(OUTER_PC));

    // Watchpoint on the FIFO DATA register: the producer's `sw` fires it
    // before the loop comes back around to the breakpoint.
    assert_eq!(c.exchange(&format!("Z2,{WATCH_ADDR:x},8")), "OK");
    assert_eq!(c.exchange("c"), format!("T05watch:{WATCH_ADDR:x};"));

    // Reverse-continue lands on the most recent earlier breakpoint state.
    assert_eq!(c.exchange("bc"), "S05");
    assert_eq!(c.exchange("p10"), hex_u64_le(OUTER_PC));

    // Clear both, run to completion, detach.
    assert_eq!(c.exchange(&format!("z2,{WATCH_ADDR:x},8")), "OK");
    assert_eq!(c.exchange(&format!("z0,{OUTER_PC:x},1")), "OK");
    assert_eq!(c.exchange("c"), "W00");
    assert_eq!(c.exchange("D"), "OK");

    server.join().unwrap().unwrap();
}

#[test]
fn kill_packet_closes_the_session() {
    let (addr, server) = spawn_server();

    let mut c = Client {
        stream: TcpStream::connect(addr).unwrap(),
    };
    assert_eq!(c.exchange("?"), "S05");
    let frame = format!("$k#{:02x}", checksum("k"));
    c.stream.write_all(frame.as_bytes()).unwrap();
    server.join().unwrap().unwrap();
    let mut rest = Vec::new();
    // The server acks the k packet and closes without a reply.
    c.stream.read_to_end(&mut rest).unwrap();
    assert_eq!(rest, b"+");
}
