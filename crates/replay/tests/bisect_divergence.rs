//! Bisection correctness: the exact first divergent round reported by
//! `bisect_divergence` must match a linear forward scan, with fewer
//! probes once the divergence sits deep enough in the run.

mod common;

use codesign_fault::{shared, BusRates, FaultPlan, FaultyEngine, FaultyPhy, SharedInjector};
use codesign_isa::asm::assemble;
use codesign_isa::cpu::Cpu;
use codesign_replay::{bisect_divergence, linear_first_divergence};
use codesign_rtl::bus::{BusTiming, DrainFifo, SystemBus};
use codesign_sim::adapters::CpuEngine;
use codesign_sim::engine::Coordinator;
use codesign_sim::error::SimError;
use codesign_sim::ladder::{producer_program, DriverCosts, DriverEngine};
use common::{ladder_cfg, QUANTUM};

const CADENCE: u64 = 8;

/// Driver-level run wrapped in a `FaultyEngine`; `stall_at` wedges it at
/// a deterministic horizon (`None` = golden). Watchdog off: the faulty
/// twin never finishes and bisection bounds it by `max_rounds` instead.
fn driver_run(stall_at: Option<u64>) -> Result<(Coordinator, Option<SharedInjector>), SimError> {
    let injector = shared(11);
    let driver = DriverEngine::new("driver", ladder_cfg(), DriverCosts::default());
    let mut eng = FaultyEngine::new(Box::new(driver), injector.clone(), 0.0, 0.0);
    if let Some(t) = stall_at {
        eng = eng.with_stall_at(t);
    }
    let mut coord = Coordinator::lockstep(QUANTUM);
    coord.set_watchdog(None);
    coord.add_engine(Box::new(eng));
    Ok((coord, Some(injector)))
}

#[test]
fn deterministic_stall_is_bisected_to_the_exact_round() {
    let stall_t = 30 * QUANTUM;
    let golden = || driver_run(None);
    let faulty = || driver_run(Some(stall_t));

    let report = bisect_divergence(golden, faulty, CADENCE, 2_000, u64::MAX).unwrap();
    let linear = linear_first_divergence(golden, faulty, 2_000, u64::MAX).unwrap();

    // The wedge trips during the round whose horizon reaches `stall_t`.
    assert_eq!(report.first_divergent_round, Some(30));
    assert_eq!(report.first_divergent_round, linear);
    assert_ne!(report.golden_fingerprint, report.faulty_fingerprint);
    assert!(
        report.probes < report.linear_probes,
        "bisection used {} probes, linear scan {}",
        report.probes,
        report.linear_probes
    );
}

/// Bus-level run: producer CPU against a `DrainFifo`, with a
/// `FaultyPhy` underneath injecting stuck transactions. The golden twin
/// carries a quiet plan with the same seed, so the structures (and
/// serialized shapes) are identical.
fn register_run(plan: FaultPlan) -> Result<(Coordinator, Option<SharedInjector>), SimError> {
    let cfg = ladder_cfg();
    let injector = shared(5);
    let fifo = DrainFifo::new(cfg.fifo_capacity, cfg.drain_period);
    let mut bus = SystemBus::new(BusTiming::default());
    bus.map(0x0, 0x100, Box::new(fifo))
        .map_err(SimError::Hardware)?;
    bus.set_phy(Box::new(FaultyPhy::new(
        BusTiming::default(),
        plan,
        injector.clone(),
    )));
    let program = assemble(&producer_program(&cfg)).unwrap();
    let mut cpu = Cpu::new(4096);
    cpu.attach_bus(bus);
    cpu.load_program(&program);
    let mut coord = Coordinator::lockstep(QUANTUM);
    coord.set_watchdog(None);
    coord.add_engine(Box::new(CpuEngine::new("cpu", cpu)));
    Ok((coord, Some(injector)))
}

#[test]
fn seeded_stuck_transactions_match_the_linear_oracle() {
    // Stuck transactions delay the CPU by extra bus cycles: its cycle
    // counter shifts permanently, giving the monotone divergence
    // bisection requires. (A corrupted data *write* would push a forged
    // word that simply drains away: states re-converge and there is
    // nothing for checkpoint bisection to find.)
    let golden = || register_run(FaultPlan::quiet());
    let faulty = || {
        register_run(FaultPlan {
            bus: BusRates {
                bit_flip: 0.0,
                stuck: 0.05,
                stuck_cycles: 40,
            },
            ..FaultPlan::quiet()
        })
    };

    let report = bisect_divergence(golden, faulty, CADENCE, 200_000, u64::MAX).unwrap();
    let linear = linear_first_divergence(golden, faulty, 200_000, u64::MAX).unwrap();

    assert_eq!(report.first_divergent_round, linear);
    assert!(
        report.first_divergent_round.is_some(),
        "the seeded plan should corrupt at least one write"
    );
    assert_ne!(report.golden_fingerprint, report.faulty_fingerprint);
}

#[test]
fn identical_runs_never_diverge() {
    let golden = || register_run(FaultPlan::quiet());

    let report = bisect_divergence(golden, golden, CADENCE, 200_000, u64::MAX).unwrap();
    let linear = linear_first_divergence(golden, golden, 200_000, u64::MAX).unwrap();

    assert_eq!(report.first_divergent_round, None);
    assert_eq!(linear, None);
    assert_eq!(report.golden_fingerprint, report.faulty_fingerprint);
    assert!(report.rounds > 0);
}
