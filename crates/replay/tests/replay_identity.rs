//! Bit-identity properties: a run restored from any checkpoint finishes
//! byte-for-byte identical to one that never stopped, and reverse-step
//! `n` lands on exactly the state a fresh run reaches in `step - n`
//! rounds — across all four abstraction-ladder levels.

mod common;

use codesign_replay::ReplaySession;
use common::build_level;
use proptest::prelude::*;

const CADENCE: u64 = 4;
const MAX_ROUNDS: u64 = 200_000;

/// Runs the level straight through; returns (total rounds, final
/// fingerprint, final snapshot bytes).
fn straight_run(level: usize) -> (u64, String, Vec<u8>) {
    let (coord, inj) = build_level(level);
    let mut s = ReplaySession::new(coord, inj, CADENCE).unwrap();
    s.run_to_end(MAX_ROUNDS).unwrap();
    assert!(s.coordinator().is_done(), "level {level} did not finish");
    (s.current_step(), s.fingerprint(), s.snapshot_bytes())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Restore at a random step, run to the end: fingerprint and full
    /// state bytes equal the uninterrupted run's.
    #[test]
    fn restored_run_is_bit_identical(level in 0usize..4, pick in 0u64..1_000_000) {
        let (total, want_fp, want_bytes) = straight_run(level);

        let (coord, inj) = build_level(level);
        let mut s = ReplaySession::new(coord, inj, CADENCE).unwrap();
        s.run_to_end(MAX_ROUNDS).unwrap();
        let target = pick % (total + 1);
        s.restore_to(target).unwrap();
        prop_assert_eq!(s.current_step(), target);
        s.run_to_end(MAX_ROUNDS).unwrap();

        prop_assert_eq!(s.current_step(), total);
        prop_assert_eq!(s.fingerprint(), want_fp);
        prop_assert_eq!(s.snapshot_bytes(), want_bytes);
    }

    /// Reverse-stepping `n` rounds is the same state as a fresh run
    /// forwarded `step - n` rounds.
    #[test]
    fn reverse_step_equals_forward_replay(level in 0usize..4, pick in 0u64..1_000_000) {
        let (total, _, _) = straight_run(level);

        let (coord, inj) = build_level(level);
        let mut s = ReplaySession::new(coord, inj, CADENCE).unwrap();
        s.run_to_end(MAX_ROUNDS).unwrap();
        let n = pick % (total + 1);
        s.reverse_step(n).unwrap();
        prop_assert_eq!(s.current_step(), total - n);

        let (coord2, inj2) = build_level(level);
        let mut fresh = ReplaySession::new(coord2, inj2, CADENCE).unwrap();
        for _ in 0..(total - n) {
            prop_assert!(fresh.step_round().unwrap());
        }
        prop_assert_eq!(s.snapshot_bytes(), fresh.snapshot_bytes());
        prop_assert_eq!(s.fingerprint(), fresh.fingerprint());
    }
}

/// Restoring the exact final checkpoint reproduces the end state, and
/// the store's dedup actually shares pages across checkpoints.
#[test]
fn store_dedups_and_restores_end_state() {
    let (coord, inj) = build_level(1);
    let mut s = ReplaySession::new(coord, inj, CADENCE).unwrap();
    s.run_to_end(MAX_ROUNDS).unwrap();
    let end = s.snapshot_bytes();
    let last = s.store().latest().unwrap();
    s.restore_checkpoint(last).unwrap();
    assert_eq!(s.snapshot_bytes(), end);

    let stats = s.store().stats();
    assert!(stats.checkpoints > 2);
    assert!(
        stats.stored_bytes < stats.logical_bytes,
        "no dedup: stored {} >= logical {}",
        stats.stored_bytes,
        stats.logical_bytes
    );
}

/// A mid-run snapshot restored into a *freshly built* coordinator (the
/// cross-process story: save to disk, load elsewhere) continues to the
/// same end state.
#[test]
fn snapshot_restores_into_fresh_coordinator() {
    for level in 0..4 {
        let (total, want_fp, _) = straight_run(level);

        let (coord, inj) = build_level(level);
        let mut s = ReplaySession::new(coord, inj, CADENCE).unwrap();
        for _ in 0..total / 2 {
            s.step_round().unwrap();
        }
        let blob = s.snapshot_bytes();

        let (mut coord2, inj2) = build_level(level);
        codesign_replay::restore(&mut coord2, inj2.as_ref(), &blob).unwrap();
        let mut resumed = ReplaySession::new(coord2, inj2, CADENCE).unwrap();
        resumed.run_to_end(MAX_ROUNDS).unwrap();
        assert_eq!(resumed.fingerprint(), want_fp, "level {level}");
    }
}
