//! Shared scenario builders: one coordinator per abstraction-ladder
//! level, all deterministic and snapshot-capable.
//!
//! Compiled into several test binaries; not every binary uses every
//! helper, so the module allows dead code as a whole.
#![allow(dead_code)]

use codesign_fault::SharedInjector;
use codesign_isa::asm::assemble;
use codesign_isa::cpu::Cpu;
use codesign_rtl::bus::{BusTiming, DrainFifo, SystemBus};
use codesign_sim::adapters::CpuEngine;
use codesign_sim::engine::Coordinator;
use codesign_sim::ladder::{
    message_scenario, producer_program, DriverCosts, DriverEngine, LadderConfig,
};
use codesign_sim::message::MessageEngine;
use codesign_sim::pinproto::PinPhy;

pub const QUANTUM: u64 = 16;

pub fn ladder_cfg() -> LadderConfig {
    LadderConfig {
        iterations: 3,
        ..LadderConfig::default()
    }
}

fn iss_level(pin: bool) -> (Coordinator, Option<SharedInjector>) {
    let cfg = ladder_cfg();
    let mut bus = SystemBus::new(BusTiming::default());
    bus.map(
        0x0,
        0x100,
        Box::new(DrainFifo::new(cfg.fifo_capacity, cfg.drain_period)),
    )
    .unwrap();
    if pin {
        bus.set_phy(Box::new(PinPhy::new(&[(0x0, 0x100)]).unwrap()));
    }
    let program = assemble(&producer_program(&cfg)).unwrap();
    let mut cpu = Cpu::new(4096);
    cpu.attach_bus(bus);
    cpu.load_program(&program);
    let mut coord = Coordinator::lockstep(QUANTUM);
    coord.add_engine(Box::new(CpuEngine::new("cpu", cpu)));
    (coord, None)
}

/// Builds the level-`idx` scenario: 0 = pin, 1 = register, 2 = driver,
/// 3 = message.
pub fn build_level(idx: usize) -> (Coordinator, Option<SharedInjector>) {
    match idx {
        0 => iss_level(true),
        1 => iss_level(false),
        2 => {
            let mut coord = Coordinator::lockstep(QUANTUM);
            coord.add_engine(Box::new(DriverEngine::new(
                "driver",
                ladder_cfg(),
                DriverCosts::default(),
            )));
            (coord, None)
        }
        3 => {
            let (net, placement, config) = message_scenario(&ladder_cfg());
            let engine = MessageEngine::new("ladder", net, placement, config).unwrap();
            let mut coord = Coordinator::lockstep(QUANTUM);
            coord.add_engine(Box::new(engine));
            (coord, None)
        }
        other => panic!("no ladder level {other}"),
    }
}
