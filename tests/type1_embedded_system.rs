//! Integration: a Type I embedded microprocessor system (paper Figure 4).
//!
//! Interface synthesis generates the address map, glue logic, and
//! drivers; the application runs on the CR32 with a timer interrupt in
//! the background; the paper's "logical boundary" claim is checked by
//! observing that the whole system is one processor executing software
//! against memory-mapped hardware.

use codesign::rtl::bus::{DrainFifo, Uart};
use codesign::synth::interface::{synthesize_interface, DeviceKind, DeviceSpec};

fn controller() -> codesign::synth::interface::SynthesizedInterface {
    synthesize_interface(vec![
        DeviceSpec::new("console", DeviceKind::Uart),
        DeviceSpec::new("tick", DeviceKind::Timer),
        DeviceSpec::new(
            "dma",
            DeviceKind::Fifo {
                capacity: 4,
                drain_period: 8,
            },
        ),
    ])
    .expect("interface synthesis succeeds")
}

#[test]
fn drivers_glue_and_interrupts_work_together() {
    let iface = controller();

    // Application: start the timer, push three words through the FIFO
    // (with generated flow control), transmit a status byte per word,
    // and count ticks in the ISR.
    let app = "\
        .vector isr\n\
        start:\n\
            li r1, 40\n\
            li r2, 7\n\
            jal r15, drv_tick_start\n\
            ei\n\
            li r5, 3\n\
        loop:\n\
            add r1, r5, r0\n\
            jal r15, drv_dma_push\n\
            addi r1, r5, 64\n\
            jal r15, drv_console_putc\n\
            addi r5, r5, -1\n\
            bne r5, r0, loop\n\
            di\n\
            halt\n\
        isr:\n\
            ld r13, r0, 40\n\
            addi r13, r13, 1\n\
            sd r13, r0, 40\n\
            jal r14, drv_tick_ack\n\
            rti\n";

    let (mut cpu, program) = iface.build_system(app).expect("system builds");
    assert!(program.ivec.is_some(), "vector installed");
    let stats = cpu.run(1_000_000).expect("application halts");

    let uart: &Uart = cpu.bus().unwrap().device().expect("uart mounted");
    assert_eq!(uart.transmitted(), &[67, 66, 65], "status bytes in order");
    let fifo: &DrainFifo = cpu.bus().unwrap().device().expect("fifo mounted");
    assert_eq!(
        fifo.drained() + fifo.occupancy() as u64,
        3,
        "all pushed words accounted for"
    );
    let ticks = cpu.load_word(40).expect("tick counter readable");
    assert!(ticks >= 1, "timer interrupted at least once");
    assert_eq!(stats.irqs_taken, ticks as u64);
    assert!(stats.bus_cycles > 0, "MMIO traffic is real");
}

#[test]
fn glue_cost_scales_with_integration() {
    let one = synthesize_interface(vec![DeviceSpec::new("u", DeviceKind::Uart)]).unwrap();
    let three = controller();
    assert!(three.glue_gates() > one.glue_gates());
    assert!(three.glue().gate_equivalents() > one.glue().gate_equivalents());
}

#[test]
fn drivers_are_reusable_library_code() {
    // The same driver library links against a different application.
    let iface = controller();
    let app = "\
        li r1, 33\n\
        jal r15, drv_console_putc\n\
        halt\n";
    let (mut cpu, _) = iface.build_system(app).unwrap();
    cpu.run(100_000).unwrap();
    let uart: &Uart = cpu.bus().unwrap().device().unwrap();
    assert_eq!(uart.transmitted(), b"!");
}
