//! Integration: the interface-abstraction ladder (paper Figure 3,
//! experiment E3).
//!
//! One producer/consumer system simulated at pin, register, driver, and
//! message level. The paper's predicted shape: accuracy decreases and
//! simulation efficiency increases as you climb.

use codesign::sim::ladder::{run_ladder, run_level, timing_errors, AbstractionLevel, LadderConfig};

#[test]
fn the_four_levels_reproduce_figure_3() {
    let cfg = LadderConfig::default();
    let reports = run_ladder(&cfg).expect("every level simulates");
    assert_eq!(reports.len(), 4);

    // Throughput: kernel events per level, bottom to top.
    let pin = &reports[0];
    let register = &reports[1];
    let driver = &reports[2];
    let message = &reports[3];
    assert!(pin.kernel_events > register.kernel_events);
    assert!(register.kernel_events > driver.kernel_events);
    assert!(register.kernel_events > message.kernel_events);

    // Accuracy: pin is the reference; register is within a tight band;
    // the upper levels may drift further.
    let errors = timing_errors(&reports);
    assert_eq!(errors[0].1, 0.0);
    assert!(
        errors[1].1 < 0.25,
        "register-level error {} should be modest",
        errors[1].1
    );
}

#[test]
fn congestion_widens_the_accuracy_gap() {
    // A slow consumer causes back-pressure that only the lower levels
    // see; the driver-level error grows with congestion.
    let relaxed = run_ladder(&LadderConfig {
        drain_period: 2,
        ..LadderConfig::default()
    })
    .unwrap();
    let congested = run_ladder(&LadderConfig {
        drain_period: 48,
        ..LadderConfig::default()
    })
    .unwrap();
    let err_relaxed = timing_errors(&relaxed)[2].1;
    let err_congested = timing_errors(&congested)[2].1;
    assert!(
        err_congested > err_relaxed,
        "driver error: relaxed {err_relaxed} vs congested {err_congested}"
    );
}

#[test]
fn message_level_is_cheapest_to_simulate() {
    let cfg = LadderConfig {
        iterations: 32,
        ..LadderConfig::default()
    };
    let pin = run_level(AbstractionLevel::Pin, &cfg).unwrap();
    let message = run_level(AbstractionLevel::Message, &cfg).unwrap();
    assert!(
        message.kernel_events * 10 < pin.kernel_events,
        "message {} vs pin {}",
        message.kernel_events,
        pin.kernel_events
    );
}

#[test]
fn results_scale_with_workload_size() {
    let small = run_level(
        AbstractionLevel::Register,
        &LadderConfig {
            iterations: 4,
            ..LadderConfig::default()
        },
    )
    .unwrap();
    let large = run_level(
        AbstractionLevel::Register,
        &LadderConfig {
            iterations: 32,
            ..LadderConfig::default()
        },
    )
    .unwrap();
    assert!(large.simulated_cycles > 4 * small.simulated_cycles);
}
