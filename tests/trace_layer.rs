//! Integration: the unified tracing layer, end to end through the CLI.
//!
//! Runs the `codesign` front end with `--trace`, checks the emitted file
//! is valid Chrome trace-event JSON, and checks tracing is observational
//! only (the human-readable output is unchanged by it).

use std::io::Write as _;
use std::process::Command;

use codesign::trace::validate_chrome_trace;

fn codesign(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_codesign"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn spec_file() -> tempfile::TempPath {
    let mut f = tempfile::NamedTempFile::new("cds").expect("temp file");
    f.write_all(
        b"system traced\n\
          task a sw=2000 hw=200 area=20 par=0.8\n\
          task b sw=8000 hw=500 area=60 par=0.9\n\
          edge a -> b bytes=64\n\
          deadline 6000\n\
          channel x cap=2\n\
          process src iter=4\n\
            compute 500\n\
            send x 32\n\
          end\n\
          process dst iter=4\n\
            recv x\n\
            compute 4000\n\
          end\n",
    )
    .expect("writes");
    f.into_temp_path()
}

/// A minimal tempfile substitute so the test has no extra dependency.
mod tempfile {
    use std::path::{Path, PathBuf};

    pub struct NamedTempFile(std::fs::File, PathBuf);
    pub struct TempPath(PathBuf);

    impl NamedTempFile {
        pub fn new(ext: &str) -> std::io::Result<Self> {
            let path = std::env::temp_dir().join(format!(
                "codesign_trace_{}_{}.{ext}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .expect("clock")
                    .as_nanos()
            ));
            Ok(NamedTempFile(std::fs::File::create(&path)?, path))
        }

        pub fn into_temp_path(self) -> TempPath {
            TempPath(self.1)
        }
    }

    impl std::io::Write for NamedTempFile {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            std::io::Write::write(&mut self.0, buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            std::io::Write::flush(&mut self.0)
        }
    }

    impl std::ops::Deref for TempPath {
        type Target = Path;
        fn deref(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }
}

#[test]
fn ladder_trace_is_valid_chrome_json_and_inert() {
    let trace = tempfile::NamedTempFile::new("json")
        .expect("temp file")
        .into_temp_path();
    let args = ["ladder", "--bytes", "32", "--iterations", "4"];
    let (plain, _, ok) = codesign(&args);
    assert!(ok);

    let mut traced_args = args.to_vec();
    traced_args.extend(["--trace", trace.to_str().unwrap()]);
    let (traced, err, ok) = codesign(&traced_args);
    assert!(ok, "stderr: {err}");

    // Observational only: the simulated results are unchanged; the wall
    // -clock column is the one legitimately nondeterministic field.
    let strip_wall = |s: &str| -> Vec<String> {
        s.lines()
            .take_while(|l| !l.starts_with("trace:"))
            .filter(|l| !l.trim().is_empty())
            .map(|l| {
                let cols: Vec<&str> = l.split('|').collect();
                cols.iter()
                    .enumerate()
                    .filter(|&(i, _)| i != 3)
                    .map(|(_, c)| *c)
                    .collect::<Vec<_>>()
                    .join("|")
            })
            .collect()
    };
    assert_eq!(
        strip_wall(&plain),
        strip_wall(&traced),
        "tracing changed the ladder results"
    );
    assert!(traced.contains("trace:"), "{traced}");

    let text = std::fs::read_to_string(&*trace).expect("trace file written");
    let events = validate_chrome_trace(&text).expect("valid Chrome trace JSON");
    assert!(events > 0, "trace has no events");
    // Track names for every ladder level appear as thread metadata.
    for track in ["ladder", "message-sim", "pin:bus", "reg:bus"] {
        assert!(text.contains(track), "{track} missing from trace");
    }
}

#[test]
fn cosim_trace_is_valid_chrome_json() {
    let spec = spec_file();
    let trace = tempfile::NamedTempFile::new("json")
        .expect("temp file")
        .into_temp_path();
    let (out, err, ok) = codesign(&[
        "cosim",
        spec.to_str().unwrap(),
        "--budget",
        "1",
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {err}");
    assert!(out.contains("finish time"));
    assert!(out.contains("trace:"), "{out}");

    let text = std::fs::read_to_string(&*trace).expect("trace file written");
    let events = validate_chrome_trace(&text).expect("valid Chrome trace JSON");
    assert!(events > 0, "trace has no events");
    // The winning placement's message-level activity is recorded.
    for track in ["mthread-search", "chan:x", "proc:src", "proc:dst"] {
        assert!(text.contains(track), "{track} missing from trace");
    }
}

#[test]
fn tracer_api_roundtrips_through_validator() {
    use codesign::trace::Tracer;

    let t = Tracer::on();
    let track = t.track("api");
    t.span(track, "work", 0, 10, &[("k", "v".into())]);
    t.instant(track, "mark", 5, &[]);
    t.counter(track, "level", 10, 3);
    let json = t.to_chrome_json();
    // 3 events + 1 thread_name metadata record.
    assert_eq!(validate_chrome_trace(&json).expect("valid"), 4);

    // A disabled tracer records nothing and serializes to an empty trace.
    let off = codesign::trace::Tracer::off();
    let track = off.track("ignored");
    off.span(track, "work", 0, 10, &[]);
    assert_eq!(off.event_count(), 0);
    assert_eq!(
        validate_chrome_trace(&off.to_chrome_json()).expect("valid"),
        0
    );
}
