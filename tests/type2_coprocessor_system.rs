//! Integration: a Type II co-processor system (paper Figure 8).
//!
//! The complete flow — characterize (measured SW + synthesized HW),
//! partition, realize, execute, verify — across objectives and the
//! sharing-aware estimation ablation.

use codesign::partition::cost::Objective;
use codesign::partition::Partition;
use codesign::synth::coproc::{
    characterize, partition_app, realize, Algorithm, Application, CharacterizedApp,
};

fn app() -> CharacterizedApp {
    let mut a = Application::dsp_suite();
    a.tasks.truncate(6);
    characterize(&a).expect("characterization succeeds")
}

#[test]
fn partitioned_realization_is_faster_than_software_and_correct() {
    let app = app();
    let g = app.graph();
    let all_hw_time: u64 = g.iter().map(|(_, t)| t.hw_cycles()).sum();
    let deadline = all_hw_time + (g.total_sw_cycles() - all_hw_time) / 3;

    let (partition, eval) = partition_app(
        &app,
        Objective::performance_driven(deadline),
        Algorithm::KernighanLin,
        true,
    )
    .expect("partitioning succeeds");
    assert!(
        eval.meets_deadline,
        "makespan {} > {deadline}",
        eval.makespan
    );
    assert!(partition.hw_count() > 0, "some hardware was worth it");

    let mixed = realize(&app, &partition).expect("mixed system runs");
    let all_sw = realize(&app, &Partition::all_sw(g.len())).expect("sw baseline runs");
    assert!(mixed.verified, "all outputs match the CDFG interpreter");
    assert!(
        mixed.total_cycles < all_sw.total_cycles,
        "mixed {} vs all-sw {}",
        mixed.total_cycles,
        all_sw.total_cycles
    );
}

#[test]
fn objectives_trade_cost_against_speed() {
    let app = app();
    let g = app.graph();
    let all_hw_time: u64 = g.iter().map(|(_, t)| t.hw_cycles()).sum();
    let deadline = all_hw_time * 3;

    let (_, perf) = partition_app(
        &app,
        Objective::performance_driven(deadline),
        Algorithm::KernighanLin,
        false,
    )
    .unwrap();
    let (_, cost) = partition_app(
        &app,
        Objective::cost_driven(deadline),
        Algorithm::KernighanLin,
        false,
    )
    .unwrap();
    // The Vulcan-style objective buys less hardware than the
    // COSYMA-style one, at the price of a longer (still feasible)
    // schedule.
    assert!(cost.hw_area <= perf.hw_area);
    assert!(cost.makespan >= perf.makespan);
    assert!(cost.meets_deadline && perf.meets_deadline);
}

#[test]
fn hw_first_and_sw_first_converge_to_feasible_partitions() {
    let app = app();
    let g = app.graph();
    let all_hw_time: u64 = g.iter().map(|(_, t)| t.hw_cycles()).sum();
    let deadline = all_hw_time + (g.total_sw_cycles() - all_hw_time) / 4;
    for algo in [Algorithm::SwFirst, Algorithm::HwFirst, Algorithm::Gclp] {
        let (p, e) =
            partition_app(&app, Objective::performance_driven(deadline), algo, false).unwrap();
        assert!(e.meets_deadline, "{algo:?}");
        let report = realize(&app, &p).unwrap();
        assert!(report.verified, "{algo:?}");
    }
}

#[test]
fn communication_overhead_is_measured_not_assumed() {
    let app = app();
    let g = app.graph();
    let all_hw = realize(&app, &Partition::all_hw(g.len())).unwrap();
    let all_sw = realize(&app, &Partition::all_sw(g.len())).unwrap();
    assert!(all_hw.bus_cycles > 0, "hw pays MMIO per operand and result");
    assert_eq!(all_sw.bus_cycles, 0, "sw never touches the bus");
}
