//! Integration: the `codesign` command-line front end.

use std::io::Write as _;
use std::process::Command;

fn codesign(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_codesign"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn spec_file() -> tempfile::TempPath {
    let mut f = tempfile::NamedTempFile::new().expect("temp file");
    f.write_all(
        b"system demo\n\
          task a sw=2000 hw=200 area=20 par=0.8\n\
          task b sw=8000 hw=500 area=60 par=0.9\n\
          task c sw=1000 hw=400 area=15 mod=0.9\n\
          edge a -> b bytes=64\n\
          edge b -> c bytes=64\n\
          deadline 6000\n\
          channel x cap=0\n\
          process src iter=4\n\
            compute 500\n\
            send x 32\n\
          end\n\
          process dst iter=4\n\
            recv x\n\
            compute 4000\n\
          end\n",
    )
    .expect("writes");
    f.into_temp_path()
}

/// A minimal tempfile substitute so the test has no extra dependency.
mod tempfile {
    use std::path::{Path, PathBuf};

    pub struct NamedTempFile(std::fs::File, PathBuf);
    pub struct TempPath(PathBuf);

    impl NamedTempFile {
        pub fn new() -> std::io::Result<Self> {
            let path = std::env::temp_dir().join(format!(
                "codesign_cli_{}_{}.cds",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .expect("clock")
                    .as_nanos()
            ));
            Ok(NamedTempFile(std::fs::File::create(&path)?, path))
        }

        pub fn into_temp_path(self) -> TempPath {
            TempPath(self.1)
        }
    }

    impl std::io::Write for NamedTempFile {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            std::io::Write::write(&mut self.0, buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            std::io::Write::flush(&mut self.0)
        }
    }

    impl std::ops::Deref for TempPath {
        type Target = Path;
        fn deref(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }
}

#[test]
fn help_lists_subcommands() {
    let (out, _, ok) = codesign(&["help"]);
    assert!(ok);
    for cmd in [
        "classify",
        "partition",
        "explore",
        "cosim",
        "multiproc",
        "ladder",
        "faults",
    ] {
        assert!(out.contains(cmd), "{cmd} missing from help");
    }
}

#[test]
fn classify_prints_the_survey() {
    let (out, _, ok) = codesign(&["classify"]);
    assert!(ok);
    assert!(out.contains("Chinook"));
    assert!(out.contains("co-processor flow"));
}

#[test]
fn partition_runs_on_a_spec_file() {
    let path = spec_file();
    let (out, err, ok) = codesign(&[
        "partition",
        path.to_str().unwrap(),
        "--algorithm",
        "kl",
        "--objective",
        "perf",
    ]);
    assert!(ok, "stderr: {err}");
    assert!(out.contains("makespan"));
    assert!(out.contains("deadline 6000: met"), "{out}");
}

#[test]
fn partition_portfolio_is_deterministic_and_never_worse() {
    let path = spec_file();
    let run = |algorithm: &str| {
        let (out, err, ok) = codesign(&[
            "partition",
            path.to_str().unwrap(),
            "--algorithm",
            algorithm,
        ]);
        assert!(ok, "{algorithm} stderr: {err}");
        let cost: f64 = out
            .split("cost ")
            .nth(1)
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or_else(|| panic!("no cost in output: {out}"));
        (out, cost)
    };
    let (out1, port_cost) = run("portfolio");
    let (out2, _) = run("portfolio");
    assert_eq!(out1, out2, "portfolio output must be reproducible");
    assert!(out1.contains("deadline 6000: met"), "{out1}");
    for algorithm in ["kl", "sw", "hw", "gclp", "sa"] {
        let (_, cost) = run(algorithm);
        assert!(
            port_cost <= cost + 1e-9,
            "portfolio cost {port_cost} lost to {algorithm} at {cost}"
        );
    }
}

#[test]
fn cosim_searches_a_hardware_budget() {
    let path = spec_file();
    let (out, err, ok) = codesign(&["cosim", path.to_str().unwrap(), "--budget", "1"]);
    assert!(ok, "stderr: {err}");
    assert!(out.contains("finish time"));
    assert!(
        out.contains("dst"),
        "the heavy process moves to hardware: {out}"
    );
}

#[test]
fn multiproc_allocates_processors() {
    let path = spec_file();
    let (out, err, ok) = codesign(&[
        "multiproc",
        path.to_str().unwrap(),
        "--deadline",
        "4000",
        "--solver",
        "exact",
    ]);
    assert!(ok, "stderr: {err}");
    assert!(out.contains("optimal: true"));
    assert!(out.contains("PE0:"));
}

#[test]
fn bad_input_fails_cleanly() {
    let (_, err, ok) = codesign(&["partition", "/nonexistent/file.cds"]);
    assert!(!ok);
    assert!(err.contains("cannot read"));
    let (_, err, ok) = codesign(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"));
}

#[test]
fn invalid_flag_values_name_the_flag() {
    let (_, err, ok) = codesign(&["ladder", "--iterations", "lots"]);
    assert!(!ok);
    assert!(err.contains("--iterations"), "{err}");
    assert!(err.contains("lots"), "{err}");
    let (_, err, ok) = codesign(&["faults", "--seeds", "-3"]);
    assert!(!ok);
    assert!(err.contains("--seeds"), "{err}");
    let (_, err, ok) = codesign(&["faults", "--scenario", "nope", "--seeds", "1"]);
    assert!(!ok);
    assert!(err.contains("unknown scenario"), "{err}");
    assert!(err.contains("ladder_message"), "lists the options: {err}");
}

#[test]
fn invalid_explore_flags_name_the_flag() {
    let path = spec_file();
    for (flag, value) in [
        ("--budget", "many"),
        ("--threads", "fast"),
        ("--seed", "1.5"),
        ("--workers", "-2"),
    ] {
        let (_, err, ok) = codesign(&["explore", path.to_str().unwrap(), flag, value]);
        assert!(!ok, "{flag} {value} must be rejected");
        assert!(err.contains(flag), "error must name {flag}: {err}");
        assert!(err.contains(value), "error must quote `{value}`: {err}");
    }
    let (_, err, ok) = codesign(&["explore", "/nonexistent/file.cds"]);
    assert!(!ok);
    assert!(err.contains("cannot read"), "{err}");
}

/// Drops the wall-clock lines (`wall_ns`, `points_per_sec`) from an
/// `explore --json` report, leaving the deterministic remainder that
/// must be byte-identical across thread counts and warm starts.
fn strip_timing(report: &str) -> String {
    report
        .lines()
        .filter(|l| {
            let l = l.trim_start();
            !l.starts_with("\"wall_ns\"") && !l.starts_with("\"points_per_sec\"")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn explore_reports_are_identical_across_thread_counts() {
    let path = spec_file();
    let run = |threads: &str| {
        let (out, err, ok) = codesign(&[
            "explore",
            path.to_str().unwrap(),
            "--budget",
            "48",
            "--seed",
            "7",
            "--threads",
            threads,
            "--json",
        ]);
        assert!(ok, "threads={threads} stderr: {err}");
        out
    };
    let solo = run("1");
    let pool = run("8");
    assert_eq!(
        strip_timing(&solo),
        strip_timing(&pool),
        "same seed, different --threads: reports must be byte-identical"
    );
    assert!(solo.contains("\"front\""), "{solo}");
    assert!(solo.contains("\"revisit_rate\""), "{solo}");
    // Wall-clock context rides along for cross-run comparability.
    assert!(solo.contains("\"points_per_sec\""), "{solo}");
    assert!(solo.contains("\"host_cores\""), "{solo}");
    assert!(solo.contains("\"dedup_skips\""), "{solo}");
    assert!(solo.contains("\"delta_hit_rate\""), "{solo}");
}

#[test]
fn explore_cache_file_warm_starts_byte_identically() {
    let path = spec_file();
    let cache_path =
        std::env::temp_dir().join(format!("codesign_cli_cache_{}.evc", std::process::id()));
    let _ = std::fs::remove_file(&cache_path);
    let run = || {
        codesign(&[
            "explore",
            path.to_str().unwrap(),
            "--budget",
            "48",
            "--seed",
            "7",
            "--cache-file",
            cache_path.to_str().unwrap(),
            "--json",
        ])
    };
    let (cold, cold_err, ok) = run();
    assert!(ok, "cold run failed: {cold_err}");
    assert!(
        cache_path.exists(),
        "the cold run must create the cache file"
    );
    let after_cold = std::fs::read(&cache_path).expect("cache file readable");
    let (warm, warm_err, ok) = run();
    assert!(ok, "warm run failed: {warm_err}");
    assert_eq!(
        strip_timing(&cold),
        strip_timing(&warm),
        "warm-started report must be byte-identical to the cold one"
    );
    assert!(
        warm_err.contains("warm start"),
        "the warm run announces its preload: {warm_err}"
    );
    let after_warm = std::fs::read(&cache_path).expect("cache file readable");
    assert_eq!(
        after_cold, after_warm,
        "re-running must not grow the cache file"
    );
    let _ = std::fs::remove_file(&cache_path);
}

#[test]
fn explore_rejects_a_corrupt_cache_file() {
    let path = spec_file();
    let cache_path =
        std::env::temp_dir().join(format!("codesign_cli_badcache_{}.evc", std::process::id()));
    std::fs::write(&cache_path, b"not a cache file at all").expect("writes");
    let (_, err, ok) = codesign(&[
        "explore",
        path.to_str().unwrap(),
        "--budget",
        "16",
        "--cache-file",
        cache_path.to_str().unwrap(),
    ]);
    assert!(!ok, "a corrupt cache file must abort the run");
    assert!(err.contains("cannot load cache file"), "{err}");
    let _ = std::fs::remove_file(&cache_path);
}

#[test]
fn explore_prints_a_front_and_writes_a_report() {
    let path = spec_file();
    let out_path =
        std::env::temp_dir().join(format!("codesign_cli_explore_{}.json", std::process::id()));
    let (out, err, ok) = codesign(&[
        "explore",
        path.to_str().unwrap(),
        "--budget",
        "32",
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {err}");
    assert!(out.contains("Pareto front"), "{out}");
    assert!(out.contains("best (latency-led weights)"), "{out}");
    let json = std::fs::read_to_string(&out_path).expect("report written");
    assert!(json.contains("\"report\": \"explore\""), "{json}");
    let _ = std::fs::remove_file(&out_path);
}

#[test]
fn partition_emits_machine_readable_json() {
    let path = spec_file();
    let (out, err, ok) = codesign(&["partition", path.to_str().unwrap(), "--json"]);
    assert!(ok, "stderr: {err}");
    assert!(out.contains("\"command\": \"partition\""), "{out}");
    assert!(out.contains("\"makespan\""), "{out}");
    assert!(out.contains("\"side\""), "{out}");
    assert!(
        !out.contains("makespan "),
        "human table must be suppressed under --json: {out}"
    );
}

#[test]
fn faults_runs_a_small_campaign() {
    let out_path =
        std::env::temp_dir().join(format!("codesign_cli_faults_{}.json", std::process::id()));
    let (out, err, ok) = codesign(&[
        "faults",
        "--seeds",
        "2",
        "--scenario",
        "ladder_message",
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {err}");
    assert!(out.contains("ladder_message"), "{out}");
    let json = std::fs::read_to_string(&out_path).expect("report written");
    assert!(json.contains("fault_campaign"), "{json}");
    let _ = std::fs::remove_file(&out_path);
}

#[test]
fn ladder_prints_all_levels() {
    let (out, err, ok) = codesign(&["ladder", "--bytes", "32", "--iterations", "4"]);
    assert!(ok, "stderr: {err}");
    for level in ["pin", "register", "driver", "message"] {
        assert!(out.contains(level), "{level} missing: {out}");
    }
}

#[test]
fn shipped_sample_specs_work_end_to_end() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/specs");
    for (file, args) in [
        ("radio_link.cds", vec!["partition"]),
        (
            "camera_node.cds",
            vec!["partition", "--objective", "cost", "--algorithm", "hw"],
        ),
        ("camera_node.cds", vec!["cosim", "--budget", "1"]),
        (
            "audio_codec.cds",
            vec!["partition", "--algorithm", "gclp", "--sharing"],
        ),
        (
            "radio_link.cds",
            vec!["multiproc", "--deadline", "20000", "--solver", "bin"],
        ),
    ] {
        let path = root.join(file);
        let mut full: Vec<&str> = vec![args[0], path.to_str().unwrap()];
        full.extend(&args[1..]);
        let (out, err, ok) = codesign(&full);
        assert!(ok, "{file} {args:?}: {err}");
        assert!(!out.is_empty(), "{file} {args:?} produced no output");
    }
}

/// Runs `codesign serve` (stdio transport) with `input` on stdin.
fn serve_stdio(input: &str) -> (String, String, bool) {
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_codesign"))
        .arg("serve")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve starts");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(input.as_bytes())
        .expect("writes requests");
    let out = child.wait_with_output().expect("serve exits");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

/// Unescapes the `"result"` string of an `ok` reply line.
fn served_result(reply: &str) -> String {
    let start = reply.find("\"result\":\"").expect("result field") + 10;
    let bytes = &reply.as_bytes()[start..];
    let mut out = String::new();
    let mut i = 0;
    loop {
        match bytes[i] {
            b'"' => return out,
            b'\\' => {
                i += 1;
                match bytes[i] {
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    other => out.push(other as char),
                }
            }
            other => out.push(other as char),
        }
        i += 1;
    }
}

#[test]
fn serve_names_every_malformed_request_code() {
    let path = spec_file();
    let spec = path.to_str().unwrap();
    let input = format!(
        "this is not json\n\
         {{\"id\":\"k\",\"kind\":\"frobnicate\"}}\n\
         {{\"id\":\"m\",\"kind\":\"partition\"}}\n\
         {{\"id\":\"r\",\"kind\":\"explore\",\"spec\":\"{spec}\",\"budget\":9999999}}\n\
         {{\"id\":\"p\",\"kind\":\"partition\",\"spec\":\"/nonexistent.cds\"}}\n\
         {{\"id\":\"q\",\"kind\":\"partition\",\"spec\":\"{spec}\",\"priority\":\"urgent\"}}\n\
         {{\"id\":\"w\",\"kind\":\"wait\"}}\n\
         {{\"id\":\"z\",\"kind\":\"shutdown\"}}\n"
    );
    let (out, err, ok) = serve_stdio(&input);
    assert!(ok, "serve must exit cleanly: {err}");
    // One named, machine-readable code per malformed shape — and the
    // server survives all of them to answer the shutdown.
    for code in [
        "\"code\":\"bad_json\"",      // unparseable line
        "\"code\":\"unknown_kind\"",  // no such job kind
        "\"code\":\"missing_field\"", // partition without a spec
        "\"code\":\"bad_field\"",     // budget out of range
        "\"code\":\"bad_spec\"",      // unreadable spec file
        "\"code\":\"bad_priority\"",  // priority not high|normal|low
    ] {
        assert!(out.contains(code), "{code} missing in: {out}");
    }
    assert!(
        out.contains("\"id\":\"z\",\"status\":\"stats\""),
        "shutdown must report final stats: {out}"
    );
}

#[test]
fn serve_results_are_byte_identical_to_the_cli() {
    let path = spec_file();
    let spec = path.to_str().unwrap();
    let (cli_partition, err, ok) = codesign(&["partition", spec, "--json"]);
    assert!(ok, "stderr: {err}");
    let (cli_cosim, err, ok) = codesign(&["cosim", spec, "--json"]);
    assert!(ok, "stderr: {err}");

    let input = format!(
        "{{\"id\":\"part\",\"kind\":\"partition\",\"spec\":\"{spec}\"}}\n\
         {{\"id\":\"cosim\",\"kind\":\"cosim\",\"spec\":\"{spec}\"}}\n\
         {{\"id\":\"w\",\"kind\":\"wait\"}}\n\
         {{\"id\":\"z\",\"kind\":\"shutdown\"}}\n"
    );
    let (out, err, ok) = serve_stdio(&input);
    assert!(ok, "serve must exit cleanly: {err}");
    for (id, cli_bytes) in [("part", &cli_partition), ("cosim", &cli_cosim)] {
        let reply = out
            .lines()
            .find(|l| l.starts_with(&format!("{{\"id\":\"{id}\",\"status\":\"ok\"")))
            .unwrap_or_else(|| panic!("no ok reply for {id}: {out}"));
        assert_eq!(
            &served_result(reply),
            cli_bytes,
            "served `{id}` bytes must equal the direct CLI run"
        );
    }
}

#[test]
fn serve_retries_transient_chaos_and_reports_attempts() {
    let path = spec_file();
    let spec = path.to_str().unwrap();
    let input = format!(
        "{{\"id\":\"flaky\",\"kind\":\"partition\",\"spec\":\"{spec}\",\"chaos\":\"transient:2\"}}\n\
         {{\"id\":\"w\",\"kind\":\"wait\"}}\n\
         {{\"id\":\"z\",\"kind\":\"shutdown\"}}\n"
    );
    let (out, err, ok) = serve_stdio(&input);
    assert!(ok, "serve must exit cleanly: {err}");
    let reply = out
        .lines()
        .find(|l| l.starts_with("{\"id\":\"flaky\",\"status\":\"ok\""))
        .unwrap_or_else(|| panic!("flaky job must heal: {out}"));
    assert!(
        reply.contains("\"attempts\":3"),
        "two injected faults then success = 3 attempts: {reply}"
    );
    assert!(
        out.contains("\"retried\":2"),
        "final stats must count both retries: {out}"
    );
}
