//! Integration: from one textual specification to analyzed systems in
//! both of the paper's views — the "common specification" thread
//! (Sections 3.2, 4.1) running through the whole stack.

use codesign::ir::spec::SystemSpec;
use codesign::partition::algorithms::sw_first;
use codesign::partition::area::NaiveArea;
use codesign::partition::cost::Objective;
use codesign::partition::eval::EvalConfig;
use codesign::sim::message::{simulate, MessageConfig, Placement};
use codesign::synth::mthread::{comm_aware, exhaustive, MthreadConfig};

const SPEC: &str = "\
system camera_node
task grab    sw=4000  hw=500  area=30 par=0.4 mod=0.7
task sobel   sw=30000 hw=1800 area=160 par=0.95 mod=0.2 kernel=sobel
task encode  sw=18000 hw=1500 area=120 par=0.8 mod=0.4
task ship    sw=6000  hw=1200 area=50 par=0.3 mod=0.8
edge grab  -> sobel  bytes=1024
edge sobel -> encode bytes=1024
edge encode -> ship  bytes=256
deadline 40000

channel pix cap=2
channel out cap=0
process sensor iter=24
  compute 4000
  send pix 1024
end
process vision iter=24
  recv pix
  compute 48000
  send out 256
end
process uplink iter=24
  recv out
  compute 6000
end
";

#[test]
fn one_spec_drives_both_views() {
    let spec = SystemSpec::parse(SPEC).expect("spec parses");
    assert_eq!(spec.name(), "camera_node");

    // Coarse view: partition the task graph against the deadline.
    let graph = spec.task_graph().expect("tasks declared");
    let naive = NaiveArea;
    let deadline = graph.deadline().expect("deadline declared");
    let cfg = EvalConfig::new(Objective::performance_driven(deadline), &naive);
    let (partition, eval) = sw_first(graph, &cfg).expect("partitioning runs");
    assert!(eval.meets_deadline, "{} > {deadline}", eval.makespan);
    // The parallel, heavy vision kernel is the natural hardware move.
    let sobel = graph.iter().find(|(_, t)| t.name() == "sobel").unwrap().0;
    assert_eq!(partition.side(sobel), codesign::partition::Side::Hw);

    // Concurrent view: multi-threaded co-processor partitioning.
    let net = spec.network().expect("processes declared");
    let all_sw = simulate(
        net,
        &Placement::all_software(net.len()),
        &MessageConfig::default(),
    )
    .expect("baseline simulates");
    let outcome = comm_aware(net, &MthreadConfig::default()).expect("flow runs");
    assert!(outcome.report.finish_time < all_sw.finish_time);
    // The greedy result matches the exhaustive optimum on this small net.
    let optimum = exhaustive(net, &MthreadConfig::default()).unwrap();
    assert_eq!(
        outcome.report.finish_time, optimum.report.finish_time,
        "greedy found the optimum here"
    );
}

#[test]
fn kernel_references_resolve_to_real_cdfgs() {
    let spec = SystemSpec::parse(SPEC).unwrap();
    let graph = spec.task_graph().unwrap();
    let sobel_task = graph.iter().find(|(_, t)| t.name() == "sobel").unwrap().1;
    let kernel = codesign::ir::workload::kernels::by_name(sobel_task.kernel().unwrap())
        .expect("kernel library has sobel");
    // The referenced kernel is executable and synthesizable.
    let out = kernel.evaluate(&vec![10; kernel.input_count()]).unwrap();
    assert_eq!(out.len(), 1);
    let hw = codesign::hls::synthesize(&kernel, &codesign::hls::Constraints::default()).unwrap();
    assert!(hw.latency > 0 && hw.area > 0.0);
}

#[test]
fn spec_round_trips_through_views_consistently() {
    let spec = SystemSpec::parse(SPEC).unwrap();
    let graph = spec.task_graph().unwrap();
    let net = spec.network().unwrap();
    // Both views describe the same pipeline shape: a source, a heavy
    // middle, a sink.
    assert_eq!(graph.len(), 4);
    assert_eq!(net.len(), 3);
    let heaviest_task = graph
        .iter()
        .max_by_key(|(_, t)| t.sw_cycles())
        .map(|(_, t)| t.name().to_string())
        .unwrap();
    assert_eq!(heaviest_task, "sobel");
    let heaviest_proc = net
        .iter()
        .max_by_key(|(_, p)| p.total_compute())
        .map(|(_, p)| p.name().to_string())
        .unwrap();
    assert_eq!(heaviest_proc, "vision");
}
