//! Integration: partitioning across the stack — algorithms from
//! `codesign-partition` over kernel-backed task graphs whose hardware
//! costs come from real `codesign-hls` synthesis (paper Section 3.3,
//! experiments E8/E10).

use codesign::ir::task::{Task, TaskGraph};
use codesign::partition::algorithms::{hw_first, kernighan_lin, sw_first};
use codesign::partition::area::{HwAreaModel, NaiveArea, SharedArea};
use codesign::partition::cost::Objective;
use codesign::partition::eval::{evaluate, EvalConfig};
use codesign::partition::Partition;

fn kernel_graph() -> TaskGraph {
    let mut g = TaskGraph::new("dsp_chain");
    let specs = [
        ("fir", 40_000u64, 0.9),
        ("dct8", 90_000, 0.95),
        ("crc32", 12_000, 0.4),
        ("sobel", 25_000, 0.8),
        ("quantize", 6_000, 0.3),
        ("matmul", 70_000, 0.9),
    ];
    let mut prev = None;
    for (name, sw, par) in specs {
        let id = g.add_task(
            Task::new(name, sw)
                .with_hw_cycles(sw / 12)
                .with_hw_area(sw as f64 / 80.0)
                .with_parallelism(par)
                .with_kernel(name),
        );
        if let Some(p) = prev {
            g.add_edge(p, id, 128).expect("chain edge");
        }
        prev = Some(id);
    }
    g
}

#[test]
fn sharing_aware_estimation_changes_the_partition() {
    let g = kernel_graph();
    let shared = SharedArea::from_graph(&g);
    let naive = NaiveArea;
    let deadline = g.total_sw_cycles() / 4;
    let objective = Objective::cost_driven(deadline);

    let (p_naive, e_naive) =
        kernighan_lin(&g, &EvalConfig::new(objective.clone(), &naive)).unwrap();
    let (p_shared, e_shared) = kernighan_lin(&g, &EvalConfig::new(objective, &shared)).unwrap();

    assert!(e_naive.meets_deadline && e_shared.meets_deadline);
    // Under sharing, hardware is cheaper at the margin, so at least as
    // much moves across the boundary.
    assert!(
        p_shared.hw_count() >= p_naive.hw_count(),
        "shared {} vs naive {}",
        p_shared.hw_count(),
        p_naive.hw_count()
    );
    // And pricing the *same* (naive) partition with both models shows
    // the sharing discount directly.
    let hw: Vec<_> = p_naive.hw_tasks().collect();
    if hw.len() >= 2 {
        assert!(shared.area_of(&g, &hw) < naive.area_of(&g, &hw));
    }
}

#[test]
fn hw_first_minimizes_cost_sw_first_moves_critical_regions() {
    let g = kernel_graph();
    let naive = NaiveArea;
    let deadline = g.total_sw_cycles() / 3;
    let cfg = EvalConfig::new(Objective::cost_driven(deadline), &naive);

    let (_, from_hw) = hw_first(&g, &cfg).unwrap();
    let (_, from_sw) = sw_first(&g, &cfg).unwrap();
    assert!(from_hw.meets_deadline && from_sw.meets_deadline);
    // The Vulcan direction tends to find the low-area corner under a
    // cost objective.
    assert!(from_hw.hw_area <= from_sw.hw_area + 1e-9);
}

#[test]
fn extremes_bracket_every_algorithm() {
    let g = kernel_graph();
    let naive = NaiveArea;
    let cfg = EvalConfig::new(
        Objective::performance_driven(g.total_sw_cycles() / 4),
        &naive,
    );
    let sw = evaluate(&g, &Partition::all_sw(g.len()), &cfg).unwrap();
    let hw = evaluate(&g, &Partition::all_hw(g.len()), &cfg).unwrap();
    let (_, best) = kernighan_lin(&g, &cfg).unwrap();
    assert!(best.cost <= sw.cost.min(hw.cost) + 1e-9);
    assert!(best.makespan <= sw.makespan);
    assert!(best.hw_area <= hw.hw_area);
}

#[test]
fn incremental_estimator_agrees_with_recompute_under_partitioning_churn() {
    use codesign::hls::estimate::{AreaModel, SharedAreaEstimator};
    let g = kernel_graph();
    let shared = SharedArea::from_graph(&g);
    let model = AreaModel::default();
    let mut inc = SharedAreaEstimator::new(model.clone());
    let mut live = Vec::new();
    // Simulate a partitioner's inner loop: add/remove tasks from the
    // hardware set and check the incremental estimate each step.
    let ids: Vec<_> = g.ids().collect();
    for (step, &id) in ids.iter().enumerate() {
        inc.add(shared.requirement(id));
        live.push(shared.requirement(id));
        if step % 2 == 1 {
            let r = live.remove(0);
            inc.remove(r);
        }
        let reference = SharedAreaEstimator::recompute(&model, live.iter().copied());
        assert!((inc.area() - reference).abs() < 1e-9, "step {step}");
    }
}
