#!/usr/bin/env bash
# Repository verification: build, tests, and lints.
#
# Tier-1 (ROADMAP.md): release build + full test suite. Clippy runs over
# every target (lib, bins, tests, benches) with warnings denied so lint
# debt cannot accumulate, and rustfmt is enforced so diffs stay clean.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q (hard 20-minute timeout) =="
# The timeout is a backstop against coordination hangs the in-process
# watchdog cannot see (e.g. a test that never calls the coordinator).
timeout --signal=KILL 1200 cargo test -q

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== bench-cosim smoke (1 iteration, gates round reduction) =="
cargo run --release -q -p codesign-bench --bin bench-cosim -- --smoke

echo "== bench-faults smoke (10 seeds, gates class accounting) =="
cargo run --release -q -p codesign-bench --bin bench-faults -- --smoke

# Gates report byte-identity across threads {1,2,4,8,16} and cold/warm
# persistent-cache runs, revisit absorption, and — on hosts with >= 4
# cores — a >= 1.2x speedup at 4 threads (skipped below that, where the
# pool has no cores to scale onto; the full run gates >= 1.5x).
echo "== bench-explore smoke (pipelined scaling + persistent cache) =="
cargo run --release -q -p codesign-bench --bin bench-explore -- --smoke

# Gates the lockstep self-test, zero divergences over 40 generated
# systems, and byte-identical reports across thread counts. The hard
# timeout backstops a hung co-simulation inside the sweep workers.
echo "== bench-conform smoke (40-system differential conformance) =="
timeout --signal=KILL 300 cargo run --release -q -p codesign-bench --bin bench-conform -- --smoke

# Chaos stays on even in the smoke: injected panics, wedged-engine
# watchdog stalls, transient faults, garbage lines, and an overload
# burst against a deliberately small queue. Gates the accounting
# invariant (accepted == ok + failed + drained), zero lost/duplicated
# results, and byte-identity of served replies vs the direct renderers;
# the load-dependent gates (shed > 0, deadline_expired > 0) self-skip
# on 1-core hosts where the pipelined clients cannot outrun the pool.
echo "== bench-serve smoke (chaos-on multi-tenant job server) =="
timeout --signal=KILL 300 cargo run --release -q -p codesign-bench --bin bench-serve -- --smoke

# Gates restored-run bit-identity (straight vs recorded vs mid-run
# restored end states), page-store dedup actually deduplicating, and
# divergence bisection agreeing with the linear-scan oracle on the
# first diverging seed.
echo "== bench-replay smoke (time-travel checkpoint/restore + bisection) =="
timeout --signal=KILL 300 cargo run --release -q -p codesign-bench --bin bench-replay -- --smoke

echo "verify: OK"
